package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materialises a map of path -> source under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, src := range files {
		full := filepath.Join(root, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestScanFlagsPackageLevelVars pins what the lint is for: a top-level
// var is a finding, consts/types/funcs and locals are not, and test
// files are skipped.
func TestScanFlagsPackageLevelVars(t *testing.T) {
	root := writeTree(t, map[string]string{
		"shardy/state.go": `package shardy

const fine = 1

var counter int

var a, b = 1, 2

func ok() { var local int; _ = local }
`,
		"shardy/state_test.go": `package shardy

var testOnly = map[string]bool{}
`,
	})
	findings, _, err := scan(root)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, f := range findings {
		names = append(names, f.name)
	}
	want := []string{"shardy.counter", "shardy.a", "shardy.b"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("scan found %v, want %v", names, want)
	}
}

// TestScanHonoursAllowlist checks both directions: an allowlisted var
// is not a finding, and an allowlist entry that matches nothing is
// reported stale by report().
func TestScanHonoursAllowlist(t *testing.T) {
	root := writeTree(t, map[string]string{
		"virtid/lut.go": `package virtid

var emptyLUT = 1
`,
	})
	findings, matched, err := scan(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("allowlisted var flagged: %v", findings)
	}
	if !matched["virtid.emptyLUT"] {
		t.Error("allowlist match not recorded")
	}
	// Only one of the three allowlist entries matched, so report must
	// call the tree dirty on staleness grounds.
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if clean := report(devnull, findings, matched); clean {
		t.Error("report ignored stale allowlist entries")
	}
}

// TestRepoInternalIsClean is the live gate: the repository's own
// internal/ tree must scan clean, with every allowlist entry in use.
func TestRepoInternalIsClean(t *testing.T) {
	findings, matched, err := scan(filepath.Join("..", "..", "internal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("package-level mutable state: %s at %s", f.name, f.pos)
	}
	if len(matched) != len(allowed) {
		for key := range allowed {
			if !matched[key] {
				t.Errorf("stale allowlist entry %q", key)
			}
		}
	}
}
