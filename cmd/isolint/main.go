// Command isolint enforces the fleet-mode isolation audit: no new
// package-level mutable state under internal/. Concurrent simulations
// in one process (internal/fleet) are only byte-identical to standalone
// runs because every run's state hangs off its own Coordinator — a
// package-level var is shared by all of them and would either race or,
// worse, deterministically couple runs. The lint makes that audit a CI
// gate instead of a code-review hope.
//
// Top-level `var` declarations are flagged; `const` and type/func
// declarations are not. The few pre-existing vars that are provably
// safe are allowlisted with their justification; an allowlist entry
// that no longer matches anything is itself an error, so the list
// cannot rot.
//
// Usage:
//
//	go run ./cmd/isolint [dir]   # dir defaults to ./internal
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// allowed maps "package.var" to the reason it is safe to share across
// concurrent runs. Nothing mutable belongs here — only vars that are
// written once before main starts and read-only forever after.
var allowed = map[string]string{
	"virtid.emptyLUT":                       "immutable empty lookup table, shared read-only sentinel",
	"scenario.libraryFS":                    "embed.FS of the spec library, read-only by construction",
	"memsim.kindNames":                      "region-kind name table, initialised once and only read",
	"coordinator.ErrRestartFault":           "errors.New sentinel, written once at init and only compared",
	"coordinator.ErrNoVerifiableGeneration": "errors.New sentinel, written once at init and only compared",
	"fleet.ErrRestartsExhausted":            "errors.New sentinel, written once at init and only compared",
	"storage.profiles":                      "built-in profile table, initialised once and only read (Profile deep-copies)",
	"storage.defaultRatios":                 "compressibility-default table, initialised once and only read",
}

// finding is one package-level var outside the allowlist.
type finding struct {
	pos  token.Position
	name string // "package.var"
}

// scan walks every non-test Go file under root and returns the
// package-level var declarations outside the allowlist, plus the set of
// allowlist keys that matched (so stale entries can be reported).
func scan(root string) (findings []finding, matched map[string]bool, err error) {
	fset := token.NewFileSet()
	matched = make(map[string]bool)
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, ident := range vs.Names {
					if ident.Name == "_" {
						continue
					}
					key := file.Name.Name + "." + ident.Name
					if _, ok := allowed[key]; ok {
						matched[key] = true
						continue
					}
					findings = append(findings, finding{pos: fset.Position(ident.Pos()), name: key})
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return findings, matched, nil
}

// report renders scan results as diagnostics and reports whether the
// tree is clean.
func report(w *os.File, findings []finding, matched map[string]bool) bool {
	clean := true
	for _, f := range findings {
		clean = false
		fmt.Fprintf(w, "isolint: %s: package-level var %s: "+
			"per-run state must hang off the Coordinator/Engine so concurrent fleet runs stay isolated "+
			"(if this is write-once read-only, allowlist it in cmd/isolint with a justification)\n",
			f.pos, f.name)
	}
	var stale []string
	for key := range allowed {
		if !matched[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	for _, key := range stale {
		clean = false
		fmt.Fprintf(w, "isolint: allowlist entry %q matches nothing — remove it from cmd/isolint\n", key)
	}
	return clean
}

func main() {
	root := "./internal"
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, matched, err := scan(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "isolint: %v\n", err)
		os.Exit(2)
	}
	if !report(os.Stderr, findings, matched) {
		os.Exit(1)
	}
	fmt.Printf("isolint: %s clean — no package-level mutable state outside the allowlist\n", root)
}
