package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"
	"time"
)

// TestBuildSweepValidation covers the sweep flag surface's error paths:
// single-run-only flags are rejected by name, and malformed dimension
// lists are refused.
func TestBuildSweepValidation(t *testing.T) {
	cases := []struct {
		name string
		want string // substring the error must carry (the offending flag)
		mut  func(*scenarioOpts)
	}{
		{"record with sweep", "-record", func(s *scenarioOpts) { s.Record = "out.trace" }},
		{"trace with sweep", "-trace", func(s *scenarioOpts) { s.Trace = "x.trace"; s.TraceSet = true }},
		{"group with sweep", "-group", func(s *scenarioOpts) { s.GroupSize = 4; s.GroupSet = true }},
		{"spec and workload", "-workload", func(s *scenarioOpts) {
			s.Spec = "overlap"
			s.SpecSet = true
			s.WorkloadSet = true
		}},
		{"bad ranks entry", "-sweep-ranks", func(s *scenarioOpts) { s.SweepRanks = "8,zero" }},
		{"zero ranks entry", "-sweep-ranks", func(s *scenarioOpts) { s.SweepRanks = "0" }},
		{"bad ckpt entry", "-sweep-ckpt", func(s *scenarioOpts) { s.SweepCkpt = "5ms,eventually" }},
		{"negative ckpt entry", "-sweep-ckpt", func(s *scenarioOpts) { s.SweepCkpt = "-1ms" }},
		{"bad virtid entry", "-sweep-virtid", func(s *scenarioOpts) { s.SweepVirtid = "sharded,bogolock" }},
		{"bad incremental entry", "-sweep-incremental", func(s *scenarioOpts) { s.SweepIncr = "true,maybe" }},
		{"zero sweep workers", "-sweep-workers", func(s *scenarioOpts) { s.SweepWorkers = 0; s.SweepWorkersSet = true }},
		{"unknown kernel", "-kernel", func(s *scenarioOpts) { s.Kernel = "plan9" }},
		{"unknown workload", "-workload", func(s *scenarioOpts) { s.Workload = "spiral" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := defaultScenario()
			s.Sweep = true
			tc.mut(&s)
			_, err := buildSweep(s)
			if err == nil {
				t.Fatalf("buildSweep accepted invalid options %+v", s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %s", err, tc.want)
			}
		})
	}
}

// TestBuildConfigRejectsSweepFlags pins the other direction: a sweep
// dimension flag without -sweep is rejected naming the flag instead of
// being silently ignored.
func TestBuildConfigRejectsSweepFlags(t *testing.T) {
	cases := []struct {
		flag string
		mut  func(*scenarioOpts)
	}{
		{"-sweep-specs", func(s *scenarioOpts) { s.SweepSpecs = "default,overlap" }},
		{"-sweep-ranks", func(s *scenarioOpts) { s.SweepRanks = "4,8" }},
		{"-sweep-ckpt", func(s *scenarioOpts) { s.SweepCkpt = "1ms" }},
		{"-sweep-virtid", func(s *scenarioOpts) { s.SweepVirtid = "mutex" }},
		{"-sweep-incremental", func(s *scenarioOpts) { s.SweepIncr = "true" }},
		{"-sweep-workers", func(s *scenarioOpts) { s.SweepWorkers = 4; s.SweepWorkersSet = true }},
	}
	for _, tc := range cases {
		t.Run(tc.flag, func(t *testing.T) {
			s := defaultScenario()
			tc.mut(&s)
			_, err := buildConfig(s)
			if err == nil {
				t.Fatalf("buildConfig accepted %s without -sweep", tc.flag)
			}
			if !strings.Contains(err.Error(), tc.flag) {
				t.Errorf("error %q does not name %s", err, tc.flag)
			}
		})
	}
}

// TestBuildSweepDefaultsToSingleRunFlags checks that `-sweep` alone is
// a 1-cell grid of exactly the single-run scenario.
func TestBuildSweepDefaultsToSingleRunFlags(t *testing.T) {
	s := defaultScenario()
	s.Sweep = true
	sw, err := buildSweep(s)
	if err != nil {
		t.Fatalf("buildSweep: %v", err)
	}
	if len(sw.Specs) != 1 || sw.Specs[0] != "default" {
		t.Errorf("Specs = %v, want [default]", sw.Specs)
	}
	if len(sw.Ranks) != 1 || sw.Ranks[0] != s.Ranks {
		t.Errorf("Ranks = %v, want [%d]", sw.Ranks, s.Ranks)
	}
	if len(sw.CkptAt) != 1 || sw.CkptAt[0] != s.CkptAt {
		t.Errorf("CkptAt = %v, want [%v]", sw.CkptAt, s.CkptAt)
	}
	if len(sw.Virtids) != 1 || sw.Virtids[0] != "sharded" {
		t.Errorf("Virtids = %v, want [sharded]", sw.Virtids)
	}
	if len(sw.Incremental) != 1 || sw.Incremental[0] {
		t.Errorf("Incremental = %v, want [false]", sw.Incremental)
	}
	if sw.Base.FailAfter != s.FailAfter {
		t.Errorf("Base.FailAfter = %d, want %d", sw.Base.FailAfter, s.FailAfter)
	}
}

// sweepDoc mirrors the JSON aggregate's shape for decoding in tests.
type sweepDoc struct {
	Cells []struct {
		Spec        string `json:"spec"`
		Ranks       int    `json:"ranks"`
		CkptAt      string `json:"ckpt_at"`
		Virtid      string `json:"virtid"`
		Incremental bool   `json:"incremental"`
		ReportFNV64 string `json:"report_fnv64"`
		ReportBytes int    `json:"report_bytes"`
	} `json:"cells"`
	Totals struct {
		Runs         int     `json:"runs"`
		RunsPerSec   float64 `json:"runs_per_sec"`
		SpecCompiles uint64  `json:"spec_compiles"`
	} `json:"totals"`
}

// TestSweepCellsMatchStandaloneRuns is the CLI-level byte-identity
// statement for fleet mode: every cell hash in the -sweep aggregate
// must equal the FNV-64a of the bytes the equivalent standalone manasim
// invocation prints.
func TestSweepCellsMatchStandaloneRuns(t *testing.T) {
	s := defaultScenario()
	s.Sweep = true
	s.Steps = 10
	s.SweepSpecs = "default,overlap"
	s.SweepRanks = "4,8"
	s.SweepCkpt = "1ms"
	s.SweepVirtid = "sharded,mutex"
	s.SweepIncr = "false,true"
	s.SweepWorkers = 4
	s.SweepWorkersSet = true
	sw, err := buildSweep(s)
	if err != nil {
		t.Fatalf("buildSweep: %v", err)
	}
	var out bytes.Buffer
	if err := runSweep(sw, &out); err != nil {
		t.Fatalf("runSweep: %v", err)
	}
	var doc sweepDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("aggregate is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Totals.Runs != 16 || len(doc.Cells) != 16 {
		t.Fatalf("grid has %d cells / %d runs, want 16", len(doc.Cells), doc.Totals.Runs)
	}
	if doc.Totals.SpecCompiles != 4 {
		t.Errorf("SpecCompiles = %d, want 4 (2 specs x 2 rank counts)", doc.Totals.SpecCompiles)
	}
	for _, cell := range doc.Cells {
		ckptAt, err := time.ParseDuration(cell.CkptAt)
		if err != nil {
			t.Fatalf("cell ckpt_at %q: %v", cell.CkptAt, err)
		}
		single := defaultScenario()
		single.Spec = cell.Spec
		single.SpecSet = true
		single.Steps = s.Steps
		single.Ranks = cell.Ranks
		single.Virtid = cell.Virtid
		single.Incremental = cell.Incremental
		single.CkptAt = ckptAt
		cfg, err := buildConfig(single)
		if err != nil {
			t.Fatalf("buildConfig for cell %+v: %v", cell, err)
		}
		report, err := runScenarioString(cfg)
		if err != nil {
			t.Fatalf("standalone run for cell %+v: %v", cell, err)
		}
		h := fnv.New64a()
		h.Write([]byte(report))
		if want := fmt.Sprintf("%016x", h.Sum64()); cell.ReportFNV64 != want {
			t.Errorf("cell %s/ranks=%d/virtid=%s/incr=%v: aggregate hash %s, standalone bytes hash %s",
				cell.Spec, cell.Ranks, cell.Virtid, cell.Incremental, cell.ReportFNV64, want)
		}
		if cell.ReportBytes != len(report) {
			t.Errorf("cell %s/ranks=%d: aggregate says %d report bytes, standalone printed %d",
				cell.Spec, cell.Ranks, cell.ReportBytes, len(report))
		}
	}
}
