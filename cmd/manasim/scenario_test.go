package main

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"mana/internal/scenario"
)

// TestLibrarySpecReportGoldens pins a report golden for every library
// spec beyond the two classic ones, at the default 8-rank scenario with
// failure and restart. Regenerate deliberately with:
//
//	go test ./cmd/manasim -run TestLibrarySpecReportGoldens -update
func TestLibrarySpecReportGoldens(t *testing.T) {
	for _, name := range []string{"stencil", "master-worker", "bursty-alltoall", "pipeline"} {
		t.Run(name, func(t *testing.T) {
			s := defaultScenario()
			s.Spec = name
			s.SpecSet = true
			cfg, err := buildConfig(s)
			if err != nil {
				t.Fatalf("buildConfig: %v", err)
			}
			got, err := runScenarioString(cfg)
			if err != nil {
				t.Fatalf("runScenario: %v", err)
			}
			if !strings.Contains(got, "injected failure") {
				t.Errorf("%s scenario did not exercise failure/restart:\n%s", name, got)
			}
			golden := filepath.Join("testdata", name+"_report.golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s report deviates from golden file.\n--- got\n%s\n--- want\n%s", name, got, want)
			}
		})
	}
}

// TestWorkloadAliasMatchesSpec pins the alias contract: -workload
// default|overlap must be byte-for-byte the same job as -spec of the
// same name.
func TestWorkloadAliasMatchesSpec(t *testing.T) {
	for _, name := range []string{"default", "overlap"} {
		alias := defaultScenario()
		alias.Workload = name
		alias.WorkloadSet = true
		aliasCfg, err := buildConfig(alias)
		if err != nil {
			t.Fatalf("buildConfig(-workload %s): %v", name, err)
		}
		aliasReport, err := runScenarioString(aliasCfg)
		if err != nil {
			t.Fatalf("runScenario(-workload %s): %v", name, err)
		}

		spec := defaultScenario()
		spec.Spec = name
		spec.SpecSet = true
		specCfg, err := buildConfig(spec)
		if err != nil {
			t.Fatalf("buildConfig(-spec %s): %v", name, err)
		}
		specReport, err := runScenarioString(specCfg)
		if err != nil {
			t.Fatalf("runScenario(-spec %s): %v", name, err)
		}
		if aliasReport != specReport {
			t.Errorf("-workload %s and -spec %s render different reports:\n--- alias\n%s\n--- spec\n%s",
				name, name, aliasReport, specReport)
		}
	}
}

// TestSpecDeterminismAcrossGOMAXPROCS is the report half of the
// determinism property: the same spec and seed must render byte-
// identical reports whatever the parallelism of the host process.
func TestSpecDeterminismAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	s := defaultScenario()
	s.Spec = "bursty-alltoall"
	s.SpecSet = true
	s.Ranks = 12
	s.Steps = 16
	var reports []string
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		cfg, err := buildConfig(s)
		if err != nil {
			t.Fatalf("buildConfig: %v", err)
		}
		report, err := runScenarioString(cfg)
		if err != nil {
			t.Fatalf("runScenario (GOMAXPROCS=%d): %v", procs, err)
		}
		reports = append(reports, report)
	}
	if reports[0] != reports[1] {
		t.Errorf("report depends on GOMAXPROCS:\n--- 1\n%s\n--- 4\n%s", reports[0], reports[1])
	}
}

// TestRecordReplayRoundTrip pins the trace mode end to end: a job
// recorded with -record and replayed with -trace reproduces the
// original report byte for byte. The spec's checkpoint policy must be
// the default one, since a trace carries no policy.
func TestRecordReplayRoundTrip(t *testing.T) {
	s := defaultScenario()
	s.Spec = "stencil"
	s.SpecSet = true
	cfg, err := buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	recorded, err := runScenarioString(cfg)
	if err != nil {
		t.Fatalf("recorded run: %v", err)
	}

	trace := filepath.Join(t.TempDir(), "stencil.trace")
	if err := recordTrace(trace, cfg.Programs); err != nil {
		t.Fatalf("recordTrace: %v", err)
	}
	replay := defaultScenario()
	replay.Trace = trace
	replay.TraceSet = true
	replayCfg, err := buildConfig(replay)
	if err != nil {
		t.Fatalf("buildConfig(-trace): %v", err)
	}
	if replayCfg.Ranks != cfg.Ranks {
		t.Fatalf("replay rank count %d, want %d from the trace header", replayCfg.Ranks, cfg.Ranks)
	}
	replayed, err := runScenarioString(replayCfg)
	if err != nil {
		t.Fatalf("replayed run: %v", err)
	}
	if recorded != replayed {
		t.Errorf("record->replay altered the report:\n--- recorded\n%s\n--- replayed\n%s", recorded, replayed)
	}
}

// TestSpecFileEqualsLibrary: a spec loaded from a file on disk behaves
// exactly like its embedded library twin — the "add a workload without
// writing Go" path.
func TestSpecFileEqualsLibrary(t *testing.T) {
	src, err := scenario.Load("pipeline")
	if err != nil {
		t.Fatal(err)
	}
	_ = src
	data, err := os.ReadFile(filepath.Join("..", "..", "internal", "scenario", "specs", "pipeline.json"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "my-pipeline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	lib := defaultScenario()
	lib.Spec = "pipeline"
	lib.SpecSet = true
	libCfg, err := buildConfig(lib)
	if err != nil {
		t.Fatal(err)
	}
	file := defaultScenario()
	file.Spec = path
	file.SpecSet = true
	fileCfg, err := buildConfig(file)
	if err != nil {
		t.Fatal(err)
	}
	libReport, err := runScenarioString(libCfg)
	if err != nil {
		t.Fatal(err)
	}
	fileReport, err := runScenarioString(fileCfg)
	if err != nil {
		t.Fatal(err)
	}
	if libReport != fileReport {
		t.Error("a file copy of the pipeline spec renders a different report than the library spec")
	}
}
