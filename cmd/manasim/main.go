// Command manasim runs a simulated N-rank MPI job under MANA-style
// transparent checkpointing and prints a deterministic virtual-time
// report.
//
// The default scenario runs 8 ranks through a halo-exchange workload,
// takes one checkpoint at a fixed virtual time and one deliberately
// requested in the middle of a collective (exercising the protocol's
// deferral path), injects a failure shortly after the second checkpoint
// commits, restarts from the last image and runs to completion. Two
// consecutive invocations with the same flags print byte-identical
// reports.
//
// Usage:
//
//	go run ./cmd/manasim [-ranks 8] [-steps 30] [-seed 42] [-kernel unpatched|patched]
//	                     [-ckpt-at 5ms] [-fail-after 2] [-no-fail]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mana/internal/coordinator"
	"mana/internal/kernelsim"
	"mana/internal/rank"
	"mana/internal/vtime"
)

func main() {
	var (
		ranks     = flag.Int("ranks", 8, "number of simulated MPI ranks")
		steps     = flag.Int("steps", 30, "workload iterations per rank")
		seed      = flag.Uint64("seed", 42, "deterministic seed for workload jitter and ckpt stragglers")
		kernel    = flag.String("kernel", "unpatched", "kernel personality: unpatched or patched")
		ckptAt    = flag.Duration("ckpt-at", 5*time.Millisecond, "virtual time of the first checkpoint request")
		failAfter = flag.Int("fail-after", 2, "inject a failure after this checkpoint commits (0 = never)")
		noFail    = flag.Bool("no-fail", false, "disable the failure/restart scenario")
	)
	flag.Parse()

	if *ranks < 1 {
		fmt.Fprintf(os.Stderr, "manasim: -ranks must be at least 1 (got %d)\n", *ranks)
		os.Exit(2)
	}
	if *steps < 0 {
		fmt.Fprintf(os.Stderr, "manasim: -steps must be non-negative (got %d)\n", *steps)
		os.Exit(2)
	}
	personality := kernelsim.Unpatched
	switch *kernel {
	case "unpatched":
		personality = kernelsim.Unpatched
	case "patched":
		personality = kernelsim.Patched
	default:
		fmt.Fprintf(os.Stderr, "manasim: unknown -kernel %q (want unpatched or patched)\n", *kernel)
		os.Exit(2)
	}

	cfg := coordinator.DefaultConfig()
	cfg.Ranks = *ranks
	cfg.Personality = personality
	cfg.Seed = *seed
	cfg.Workload = rank.DefaultWorkload(*ranks, *steps, *seed)
	cfg.Triggers = []coordinator.Trigger{
		// First checkpoint: plain virtual-time trigger.
		{At: vtime.Time(*ckptAt)},
		// Second checkpoint: deliberately requested while point-to-point
		// messages are in flight, so the drain phase buffers real traffic.
		{At: vtime.Time(*ckptAt), InFlight: true},
		// Third checkpoint: deliberately requested while a collective is
		// partially arrived, so the protocol must defer it.
		{At: vtime.Time(*ckptAt), MidCollective: true},
	}
	if !*noFail {
		cfg.FailAtCheckpoint = *failAfter
		cfg.FailDelaySteps = 25
	}

	c := coordinator.New(cfg)
	outcome, err := c.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "manasim: run failed: %v\n", err)
		os.Exit(1)
	}
	for outcome == coordinator.Failed {
		fmt.Printf("injected failure after checkpoint #%d; restarting from last image\n",
			len(c.Records()))
		if err := c.Restart(); err != nil {
			fmt.Fprintf(os.Stderr, "manasim: restart failed: %v\n", err)
			os.Exit(1)
		}
		outcome, err = c.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "manasim: post-restart run failed: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Print(c.Report())
}
