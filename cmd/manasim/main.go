// Command manasim runs a simulated N-rank MPI job under MANA-style
// transparent checkpointing and prints a deterministic virtual-time
// report.
//
// The default scenario runs 8 ranks through a halo-exchange workload,
// takes one checkpoint at a fixed virtual time and one deliberately
// requested in the middle of a collective (exercising the protocol's
// deferral path), injects a failure shortly after the second checkpoint
// commits, restarts from the last image and runs to completion. Two
// consecutive invocations with the same flags print byte-identical
// reports.
//
// With -workload overlap the job instead splits MPI_COMM_WORLD into two
// staggered sub-communicator layouts and runs every step's collectives
// on them, so collectives on overlapping communicators are concurrently
// in flight; the second checkpoint is requested at the first moment at
// least two collectives are forming, exercising the dependency-ordered
// (topological-sort) drain planner.
//
// Usage:
//
//	go run ./cmd/manasim [-ranks 8] [-steps 30] [-seed 42] [-kernel unpatched|patched]
//	                     [-virtid sharded|mutex] [-workload default|overlap] [-group 4]
//	                     [-ckpt-at 5ms] [-fail-after 2] [-no-fail]
//	                     [-incremental] [-full-every 4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mana/internal/coordinator"
	"mana/internal/kernelsim"
	"mana/internal/rank"
	"mana/internal/virtid"
	"mana/internal/vtime"
)

// scenario holds the CLI-selectable parameters of one simulated job.
type scenario struct {
	Ranks       int
	Steps       int
	Seed        uint64
	Kernel      string
	Virtid      string
	Workload    string
	GroupSize   int
	CkptAt      time.Duration
	FailAfter   int
	NoFail      bool
	Incremental bool
	FullEvery   int
}

// defaultScenario mirrors the flag defaults; the golden test pins its
// report bytes.
func defaultScenario() scenario {
	return scenario{
		Ranks:     8,
		Steps:     30,
		Seed:      42,
		Kernel:    "unpatched",
		Virtid:    "sharded",
		Workload:  "default",
		GroupSize: 4,
		CkptAt:    5 * time.Millisecond,
		FailAfter: 2,
		FullEvery: 4,
	}
}

// buildConfig validates the scenario and translates it into a
// coordinator configuration.
func buildConfig(s scenario) (coordinator.Config, error) {
	var cfg coordinator.Config
	if s.Ranks < 1 {
		return cfg, fmt.Errorf("-ranks must be at least 1 (got %d)", s.Ranks)
	}
	if s.Steps < 0 {
		return cfg, fmt.Errorf("-steps must be non-negative (got %d)", s.Steps)
	}
	var personality kernelsim.Personality
	switch s.Kernel {
	case "unpatched":
		personality = kernelsim.Unpatched
	case "patched":
		personality = kernelsim.Patched
	default:
		return cfg, fmt.Errorf("unknown -kernel %q (want unpatched or patched)", s.Kernel)
	}
	impl, err := virtid.ParseImpl(s.Virtid)
	if err != nil {
		return cfg, fmt.Errorf("-virtid: %w", err)
	}
	if s.FullEvery < 0 {
		return cfg, fmt.Errorf("-full-every must be non-negative (got %d)", s.FullEvery)
	}

	cfg = coordinator.DefaultConfig()
	cfg.Ranks = s.Ranks
	cfg.Personality = personality
	cfg.Virtid = impl
	cfg.Seed = s.Seed
	cfg.Incremental = s.Incremental
	cfg.FullImageEvery = s.FullEvery
	switch s.Workload {
	case "default":
		cfg.Workload = rank.DefaultWorkload(s.Ranks, s.Steps, s.Seed)
		cfg.Triggers = []coordinator.Trigger{
			// First checkpoint: plain virtual-time trigger.
			{At: vtime.Time(s.CkptAt)},
			// Second checkpoint: deliberately requested while point-to-point
			// messages are in flight, so the drain phase buffers real traffic.
			{At: vtime.Time(s.CkptAt), InFlight: true},
			// Third checkpoint: deliberately requested while a collective is
			// partially arrived, so the protocol must defer it.
			{At: vtime.Time(s.CkptAt), MidCollective: true},
		}
	case "overlap":
		if s.GroupSize < 2 {
			return cfg, fmt.Errorf("-group must be at least 2 (got %d)", s.GroupSize)
		}
		cfg.Workload = rank.OverlapWorkload(s.Ranks, s.Steps, s.Seed)
		cfg.Workload.GroupSize = s.GroupSize
		cfg.Triggers = []coordinator.Trigger{
			// First checkpoint: plain virtual-time trigger.
			{At: vtime.Time(s.CkptAt)},
			// Second checkpoint: deliberately requested at the first moment
			// at least two collectives are simultaneously in flight, so the
			// topological-sort drain planner has a real graph to order.
			{At: vtime.Time(s.CkptAt), FormingColls: 2},
			// Third checkpoint: deliberately requested while a collective is
			// partially arrived, so the protocol must defer it.
			{At: vtime.Time(s.CkptAt), MidCollective: true},
		}
	default:
		return cfg, fmt.Errorf("unknown -workload %q (want default or overlap)", s.Workload)
	}
	if !s.NoFail {
		cfg.FailAtCheckpoint = s.FailAfter
	}
	return cfg, nil
}

// runScenario executes the job — including any injected failure and the
// restarts that recover from it — and returns the full deterministic
// output: restart notices followed by the coordinator's report.
func runScenario(cfg coordinator.Config) (string, error) {
	var out strings.Builder
	c := coordinator.New(cfg)
	outcome, err := c.Run()
	if err != nil {
		return "", fmt.Errorf("run failed: %w", err)
	}
	for outcome == coordinator.Failed {
		fmt.Fprintf(&out, "injected failure after checkpoint #%d; restarting from last image\n",
			len(c.Records()))
		if err := c.Restart(); err != nil {
			return "", fmt.Errorf("restart failed: %w", err)
		}
		outcome, err = c.Run()
		if err != nil {
			return "", fmt.Errorf("post-restart run failed: %w", err)
		}
	}
	out.WriteString(c.Report())
	return out.String(), nil
}

func main() {
	def := defaultScenario()
	var s scenario
	flag.IntVar(&s.Ranks, "ranks", def.Ranks, "number of simulated MPI ranks")
	flag.IntVar(&s.Steps, "steps", def.Steps, "workload iterations per rank")
	flag.Uint64Var(&s.Seed, "seed", def.Seed, "deterministic seed for workload jitter and ckpt stragglers")
	flag.StringVar(&s.Kernel, "kernel", def.Kernel, "kernel personality: unpatched or patched")
	flag.StringVar(&s.Virtid, "virtid", def.Virtid, "handle-virtualisation table: sharded (lock-free reads) or mutex (MANA baseline)")
	flag.StringVar(&s.Workload, "workload", def.Workload, "workload shape: default (halo exchange, world collectives) or overlap (staggered sub-communicator collectives)")
	flag.IntVar(&s.GroupSize, "group", def.GroupSize, "with -workload overlap, the sub-communicator group width")
	flag.DurationVar(&s.CkptAt, "ckpt-at", def.CkptAt, "virtual time of the first checkpoint request")
	flag.IntVar(&s.FailAfter, "fail-after", def.FailAfter, "inject a failure after this checkpoint commits (0 = never)")
	flag.BoolVar(&s.NoFail, "no-fail", def.NoFail, "disable the failure/restart scenario")
	flag.BoolVar(&s.Incremental, "incremental", def.Incremental, "write incremental (dirty-page delta) checkpoint images after the first full one")
	flag.IntVar(&s.FullEvery, "full-every", def.FullEvery, "with -incremental, write a full image every Nth checkpoint (0 = only the first)")
	flag.Parse()

	cfg, err := buildConfig(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "manasim: %v\n", err)
		os.Exit(2)
	}
	report, err := runScenario(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "manasim: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(report)
}
