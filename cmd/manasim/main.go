// Command manasim runs a simulated N-rank MPI job under MANA-style
// transparent checkpointing and prints a deterministic virtual-time
// report.
//
// The workload a job runs is a declarative scenario spec: named phases
// of compute and communication ops, compiled deterministically into one
// op stream per rank. A small library of specs ships in the binary
// (-spec stencil, -spec master-worker, ...); -spec also accepts a path
// to a JSON spec file, so new workloads need no Go. The historical
// -workload default|overlap flags remain as thin aliases for the
// library specs of the same names. Alternatively -trace replays a
// recorded per-rank op stream verbatim, and -record emits one for any
// job.
//
// The default scenario runs 8 ranks through the "default" halo-exchange
// spec, takes one checkpoint at a fixed virtual time, one while
// point-to-point traffic is in flight and one deliberately requested in
// the middle of a collective (exercising the protocol's deferral path),
// injects a failure after the second checkpoint commits, restarts from
// the last image and runs to completion. Two consecutive invocations
// with the same flags print byte-identical reports.
//
// Failure injection beyond that legacy single-crash knob is declarative:
// -faults names a JSON fault plan (see internal/faultplan) whose ordered
// injections anchor at checkpoint commits, drain starts, image writes,
// virtual times or restart attempts, and whose kinds cover rank crashes,
// torn image writes and silent page corruption. Restart verifies every
// retained image chain and falls back across checkpoint generations to
// the newest verifiable one; the report accounts the fallback depth,
// lost work and verify cost. A plan replaces -fail-after/-fail-delay/
// -no-fail and any plan the spec itself declares.
//
// Checkpoint I/O runs through a configurable storage pipeline (see
// internal/storage): a shared parallel filesystem whose aggregate
// bandwidth is contended across all concurrent writers (the default),
// optionally fronted by per-node burst buffers that stage image
// payloads and drain them asynchronously, and optionally per-page
// compression of incremental delta payloads. -storage selects a
// built-in profile or JSON document; -pfs-bandwidth, -bb-bandwidth,
// -bb-capacity, -compress and -compress-cost overlay individual knobs;
// -legacy-straggler reinstates the retired flat-bandwidth straggler
// model byte-for-byte.
//
// With -workload overlap (alias for -spec overlap) the job instead
// splits MPI_COMM_WORLD into two staggered sub-communicator layouts and
// runs every step's collectives on them, so collectives on overlapping
// communicators are concurrently in flight; the second checkpoint is
// requested at the first moment at least two collectives are forming,
// exercising the dependency-ordered (topological-sort) drain planner.
//
// Usage:
//
//	go run ./cmd/manasim [-ranks 8] [-steps 30] [-seed 42] [-kernel unpatched|patched]
//	                     [-virtid sharded|mutex] [-spec <name|file.json>] [-group 4]
//	                     [-trace job.trace] [-record job.trace]
//	                     [-workload default|overlap]
//	                     [-ckpt-at 5ms] [-fail-after 2] [-fail-delay 250us] [-no-fail]
//	                     [-faults plan.json]
//	                     [-incremental] [-full-every 4]
//	                     [-storage direct|staged|staged-compressed|file.json]
//	                     [-pfs-bandwidth 16e9] [-bb-bandwidth 8e9] [-bb-capacity 268435456]
//	                     [-compress] [-compress-cost 0.3] [-legacy-straggler]
//	                     [-islands 8] [-workers 4]
//	go run ./cmd/manasim -sweep [-sweep-specs default,overlap] [-sweep-ranks 4,8]
//	                     [-sweep-ckpt 1ms,5ms] [-sweep-virtid sharded,mutex]
//	                     [-sweep-incremental false,true] [-sweep-storage direct,staged]
//	                     [-sweep-workers 4]
//
// -islands and -workers select the sharded parallel scheduler: ranks
// are partitioned across island event lanes and drained by that many
// goroutines inside conservative lookahead windows. Both are pure
// performance knobs — the report is byte-identical for every setting,
// which the smoke matrix verifies.
//
// -sweep switches to fleet mode: the cross product of the -sweep-*
// dimension lists (each defaulting to the corresponding single-run
// flag's value) runs as a grid of complete simulations on a bounded
// worker pool inside one process, sharing compiled scenario programs
// and pooled scheduler scratch across runs. The output is a JSON
// aggregate with one cell per run — its parameters, headline metrics
// and the FNV-64a hash plus byte count of the report that run printed —
// and fleet totals (runs, wall time, runs/sec, spec compiles). Cell
// hashes are byte-identical to the equivalent standalone invocation at
// any -sweep-workers setting. Flags that only make sense for a single
// run (-record, -trace, -group) are rejected under -sweep, and
// -sweep-* dimension flags are rejected without -sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"mana/internal/coordinator"
	"mana/internal/faultplan"
	"mana/internal/fleet"
	"mana/internal/kernelsim"
	"mana/internal/scenario"
	"mana/internal/storage"
	"mana/internal/virtid"
	"mana/internal/vtime"
)

// scenarioOpts holds the CLI-selectable parameters of one simulated
// job. The *Set fields record whether the user passed the flag at all —
// several flags are only meaningful in combination with others, and a
// flag that would be silently ignored is rejected instead.
type scenarioOpts struct {
	Ranks     int
	Steps     int
	Seed      uint64
	Kernel    string
	Virtid    string
	Spec      string
	Trace     string
	Record    string
	Workload  string
	GroupSize int
	CkptAt    time.Duration
	FailAfter int
	FailDelay time.Duration
	NoFail    bool
	// Faults names a declarative fault-plan JSON file; it replaces the
	// legacy -fail-after/-fail-delay/-no-fail trio and any plan the spec
	// declares.
	Faults      string
	Incremental bool
	FullEvery   int
	Islands     int
	Workers     int

	// Storage names a built-in storage profile (direct, staged,
	// staged-compressed) or a JSON storage document; it overrides any
	// storage block the spec declares, and the individual storage flags
	// below overlay whichever base is in effect.
	Storage      string
	PFSBandwidth float64
	BBBandwidth  float64
	BBCapacity   uint64
	Compress     bool
	CompressCost float64
	// LegacyStraggler reinstates the retired flat-bandwidth write model
	// with RNG-drawn stragglers, byte-identical to pre-pipeline reports.
	LegacyStraggler bool

	Sweep        bool
	SweepSpecs   string
	SweepRanks   string
	SweepCkpt    string
	SweepVirtid  string
	SweepIncr    string
	SweepStorage string
	// SweepWorkers bounds how many sweep cells run concurrently
	// (0 = GOMAXPROCS); -workers still parallelises within each run.
	SweepWorkers int

	RanksSet           bool
	StepsSet           bool
	SpecSet            bool
	TraceSet           bool
	WorkloadSet        bool
	GroupSet           bool
	FailAfterSet       bool
	FailDelaySet       bool
	NoFailSet          bool
	IslandsSet         bool
	SweepWorkersSet    bool
	StorageSet         bool
	PFSBandwidthSet    bool
	BBBandwidthSet     bool
	BBCapacitySet      bool
	CompressSet        bool
	CompressCostSet    bool
	LegacyStragglerSet bool
}

// firstStorageFlag names the first individual storage flag the user
// passed, for rejection messages that must name the offender.
func firstStorageFlag(s scenarioOpts) string {
	switch {
	case s.PFSBandwidthSet:
		return "-pfs-bandwidth"
	case s.BBBandwidthSet:
		return "-bb-bandwidth"
	case s.BBCapacitySet:
		return "-bb-capacity"
	case s.CompressSet:
		return "-compress"
	case s.CompressCostSet:
		return "-compress-cost"
	}
	return ""
}

// defaultScenario mirrors the flag defaults; the golden test pins its
// report bytes.
func defaultScenario() scenarioOpts {
	return scenarioOpts{
		Ranks:     8,
		Steps:     30,
		Seed:      42,
		Kernel:    "unpatched",
		Virtid:    "sharded",
		Workload:  "default",
		GroupSize: 4,
		CkptAt:    5 * time.Millisecond,
		FailAfter: 2,
		FailDelay: 250 * time.Microsecond,
		FullEvery: 4,
		Workers:   1,
		// Storage flag defaults mirror the model constants: an individual
		// flag left unset contributes nothing, but a half-specified burst
		// buffer (say, -bb-capacity alone) completes from these.
		PFSBandwidth: storage.DefaultPFSBandwidth,
		BBBandwidth:  storage.DefaultBBBandwidth,
		BBCapacity:   storage.DefaultBBCapacity,
		CompressCost: storage.DefaultCompressCost,
	}
}

// resolveStorage turns the storage flag surface into the job's storage
// spec (nil spec, false legacy = the direct-to-PFS default model).
// Precedence: -legacy-straggler bypasses the pipeline outright and
// tolerates no other storage selection; -storage overrides a
// spec-declared block; individual flags overlay whichever base is in
// effect, except a spec-declared block, which they may not silently
// reshape — overriding that requires -storage. spec is nil when the job
// replays a trace (or when building a sweep base, where per-cell specs
// are resolved by the fleet engine).
func resolveStorage(s scenarioOpts, spec *scenario.Spec) (*storage.Spec, bool, error) {
	flagName := firstStorageFlag(s)
	var specBlock *storage.Spec
	if spec != nil {
		specBlock = spec.Storage
	}
	if s.LegacyStraggler {
		switch {
		case s.StorageSet:
			return nil, false, fmt.Errorf("-legacy-straggler cannot be combined with -storage (the legacy write model has no storage pipeline)")
		case flagName != "":
			return nil, false, fmt.Errorf("-legacy-straggler cannot be combined with %s (the legacy write model has no storage pipeline)", flagName)
		case specBlock != nil:
			return nil, false, fmt.Errorf("-legacy-straggler cannot be combined with spec %q's storage block (the legacy write model has no storage pipeline)", spec.Name)
		}
		return nil, true, nil
	}
	var base *storage.Spec
	switch {
	case s.StorageSet:
		b, err := storage.Load(s.Storage)
		if err != nil {
			return nil, false, fmt.Errorf("-storage: %w", err)
		}
		base = b
	case specBlock != nil:
		if flagName != "" {
			return nil, false, fmt.Errorf("%s has no effect on spec %q: it declares its own storage block (override with -storage)", flagName, spec.Name)
		}
		return specBlock, false, nil
	default:
		if flagName == "" {
			return nil, false, nil
		}
		base = &storage.Spec{}
	}
	if s.PFSBandwidthSet {
		if base.PFS == nil {
			base.PFS = &storage.PFSSpec{}
		}
		base.PFS.AggregateBandwidth = s.PFSBandwidth
	}
	if s.BBBandwidthSet || s.BBCapacitySet {
		if base.BurstBuffer == nil {
			base.BurstBuffer = &storage.BurstBufferSpec{Bandwidth: s.BBBandwidth, Capacity: s.BBCapacity}
		} else {
			if s.BBBandwidthSet {
				base.BurstBuffer.Bandwidth = s.BBBandwidth
			}
			if s.BBCapacitySet {
				base.BurstBuffer.Capacity = s.BBCapacity
			}
		}
	}
	if s.CompressSet {
		if s.Compress {
			if base.Compression == nil {
				base.Compression = &storage.CompressionSpec{}
			}
			base.Compression.Enabled = true
		} else {
			// -compress=false drops a profile's compression block whole;
			// a dangling cost would otherwise fail validation by name.
			base.Compression = nil
			base.Compressibility = nil
		}
	}
	if s.CompressCostSet {
		if base.Compression == nil || !base.Compression.Enabled {
			return nil, false, fmt.Errorf("-compress-cost has no effect without -compress (or a compression-enabled -storage profile)")
		}
		base.Compression.CostNsPerByte = s.CompressCost
	}
	if err := base.Validate(); err != nil {
		return nil, false, err
	}
	return base, false, nil
}

// applyStorage resolves and compiles the storage selection into the
// config, then rejects the combinations that would silently do nothing:
// compression without incremental images (only delta pages compress)
// and drain-hop fault anchors without a burst buffer to drain from.
func applyStorage(cfg *coordinator.Config, s scenarioOpts, spec *scenario.Spec) error {
	stSpec, legacy, err := resolveStorage(s, spec)
	if err != nil {
		return err
	}
	if legacy {
		cfg.Storage.LegacyStraggler = true
	} else {
		st, err := storage.Compile(stSpec)
		if err != nil {
			return err
		}
		cfg.Storage = st
	}
	if cfg.Storage.Compression && !s.Incremental {
		switch {
		case s.CompressSet:
			return fmt.Errorf("-compress has no effect without -incremental (only delta pages compress)")
		case s.StorageSet:
			return fmt.Errorf("-storage %q enables compression, which has no effect without -incremental (only delta pages compress)", s.Storage)
		default:
			return fmt.Errorf("spec %q enables compression, which has no effect without -incremental (only delta pages compress)", spec.Name)
		}
	}
	if faultplan.AnyDrainHop(cfg.Faults) && !cfg.Storage.Staging {
		return fmt.Errorf("fault plan anchors on \"image-write/drain\" but storage declares no burst buffer (drain faults need -storage staged or a burst_buffer block)")
	}
	return nil
}

// resolveSpec turns the flag surface into a scenario spec: -spec names
// a library spec or a JSON file on disk, and -workload is a thin alias
// for the two library specs the flag historically selected.
func resolveSpec(s scenarioOpts) (*scenario.Spec, error) {
	if s.SpecSet {
		if scenario.IsLibrary(s.Spec) {
			return scenario.Load(s.Spec)
		}
		return scenario.LoadFile(s.Spec)
	}
	switch s.Workload {
	case "default", "overlap":
		return scenario.Load(s.Workload)
	default:
		return nil, fmt.Errorf("unknown -workload %q (want default or overlap)", s.Workload)
	}
}

// validateFailFlags rejects the legacy failure-flag combinations that
// would otherwise be silently ignored, each by name.
func validateFailFlags(s scenarioOpts) error {
	if s.FailAfter < 0 {
		return fmt.Errorf("-fail-after must be non-negative (got %d)", s.FailAfter)
	}
	if s.FailDelaySet {
		switch {
		case s.NoFail:
			return fmt.Errorf("-fail-delay has no effect with -no-fail")
		case !s.FailAfterSet:
			return fmt.Errorf("-fail-delay has no effect without -fail-after")
		}
		if s.FailDelay <= 0 {
			return fmt.Errorf("-fail-delay must be positive (got %v)", s.FailDelay)
		}
	}
	if s.FailAfterSet && s.NoFail {
		return fmt.Errorf("-fail-after has no effect with -no-fail")
	}
	return nil
}

// loadFaultPlan reads and validates the -faults plan file, first
// rejecting the legacy failure flags the plan replaces: a flag the plan
// would silently override is an error, not a layered knob.
func loadFaultPlan(s scenarioOpts) (*faultplan.Plan, error) {
	if s.Faults == "" {
		return nil, nil
	}
	switch {
	case s.FailAfterSet:
		return nil, fmt.Errorf("-fail-after cannot be combined with -faults (the plan owns failure injection)")
	case s.FailDelaySet:
		return nil, fmt.Errorf("-fail-delay cannot be combined with -faults (the plan owns failure injection)")
	case s.NoFailSet:
		return nil, fmt.Errorf("-no-fail cannot be combined with -faults (run without a plan instead)")
	}
	data, err := os.ReadFile(s.Faults)
	if err != nil {
		return nil, fmt.Errorf("-faults: %w", err)
	}
	plan, err := faultplan.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("-faults %s: %w", s.Faults, err)
	}
	return plan, nil
}

// applyFaults wires the effective fault source into the config: a
// declarative plan (from -faults or the spec) compiled against the
// job's rank count, or the legacy -fail-after/-fail-delay pair.
func applyFaults(cfg *coordinator.Config, s scenarioOpts, plan *faultplan.Plan) error {
	if plan != nil {
		faults, err := plan.Compile(cfg.Ranks)
		if err != nil {
			return err
		}
		cfg.Faults = faults
		cfg.FailAtCheckpoint = 0
		if plan.MaxRestarts > 0 {
			cfg.MaxRestarts = plan.MaxRestarts
		}
		return nil
	}
	if !s.NoFail {
		cfg.FailAtCheckpoint = s.FailAfter
		cfg.FailDelay = vtime.Duration(s.FailDelay)
	}
	return nil
}

// buildConfig validates the scenario and translates it into a
// coordinator configuration.
func buildConfig(s scenarioOpts) (coordinator.Config, error) {
	var cfg coordinator.Config
	if !s.Sweep {
		// The sweep dimension flags only shape a -sweep grid; reject any
		// that would otherwise be silently ignored.
		switch {
		case s.SweepSpecs != "":
			return cfg, fmt.Errorf("-sweep-specs has no effect without -sweep")
		case s.SweepRanks != "":
			return cfg, fmt.Errorf("-sweep-ranks has no effect without -sweep")
		case s.SweepCkpt != "":
			return cfg, fmt.Errorf("-sweep-ckpt has no effect without -sweep")
		case s.SweepVirtid != "":
			return cfg, fmt.Errorf("-sweep-virtid has no effect without -sweep")
		case s.SweepIncr != "":
			return cfg, fmt.Errorf("-sweep-incremental has no effect without -sweep")
		case s.SweepStorage != "":
			return cfg, fmt.Errorf("-sweep-storage has no effect without -sweep")
		case s.SweepWorkersSet:
			return cfg, fmt.Errorf("-sweep-workers has no effect without -sweep")
		}
	}
	if s.Ranks < 1 {
		return cfg, fmt.Errorf("-ranks must be at least 1 (got %d)", s.Ranks)
	}
	if s.Steps < 0 {
		return cfg, fmt.Errorf("-steps must be non-negative (got %d)", s.Steps)
	}
	var personality kernelsim.Personality
	switch s.Kernel {
	case "unpatched":
		personality = kernelsim.Unpatched
	case "patched":
		personality = kernelsim.Patched
	default:
		return cfg, fmt.Errorf("unknown -kernel %q (want unpatched or patched)", s.Kernel)
	}
	impl, err := virtid.ParseImpl(s.Virtid)
	if err != nil {
		return cfg, fmt.Errorf("-virtid: %w", err)
	}
	if s.FullEvery < 0 {
		return cfg, fmt.Errorf("-full-every must be non-negative (got %d)", s.FullEvery)
	}
	if s.Islands < 0 {
		return cfg, fmt.Errorf("-islands must be non-negative (got %d)", s.Islands)
	}
	if s.Workers < 1 {
		return cfg, fmt.Errorf("-workers must be at least 1 (got %d)", s.Workers)
	}
	plan, err := loadFaultPlan(s)
	if err != nil {
		return cfg, err
	}
	if err := validateFailFlags(s); err != nil {
		return cfg, err
	}

	cfg = coordinator.DefaultConfig()
	cfg.Ranks = s.Ranks
	cfg.Personality = personality
	cfg.Virtid = impl
	cfg.Seed = s.Seed
	cfg.Incremental = s.Incremental
	cfg.FullImageEvery = s.FullEvery
	cfg.Islands = s.Islands
	cfg.Workers = s.Workers

	if s.TraceSet {
		// A trace fixes the job completely; flags that shape a compiled
		// spec would be silently ignored, so reject them.
		switch {
		case s.SpecSet:
			return cfg, fmt.Errorf("-trace and -spec are mutually exclusive: a trace replays exactly the ops it recorded")
		case s.WorkloadSet:
			return cfg, fmt.Errorf("-trace and -workload are mutually exclusive: a trace replays exactly the ops it recorded")
		case s.GroupSet:
			return cfg, fmt.Errorf("-group has no effect when replaying a trace")
		case s.RanksSet:
			return cfg, fmt.Errorf("-ranks has no effect when replaying a trace (the trace fixes the rank count)")
		case s.StepsSet:
			return cfg, fmt.Errorf("-steps has no effect when replaying a trace")
		}
		f, err := os.Open(s.Trace)
		if err != nil {
			return cfg, fmt.Errorf("-trace: %w", err)
		}
		defer f.Close()
		progs, err := scenario.ReadTrace(f)
		if err != nil {
			return cfg, fmt.Errorf("-trace %s: %w", s.Trace, err)
		}
		cfg.Ranks = len(progs)
		cfg.Programs = progs
		cfg.Triggers = fleet.Triggers(nil, vtime.Time(s.CkptAt))
		if err := applyFaults(&cfg, s, plan); err != nil {
			return cfg, err
		}
		if err := applyStorage(&cfg, s, nil); err != nil {
			return cfg, err
		}
		if s.Workers > 1 && cfg.Islands <= 1 {
			return cfg, fmt.Errorf("-workers %d has no effect without -islands of at least 2 (workers drain island lanes in parallel)", s.Workers)
		}
		return cfg, nil
	}

	if s.SpecSet && s.WorkloadSet {
		return cfg, fmt.Errorf("-spec and -workload are mutually exclusive (-workload is an alias for the library spec of the same name)")
	}
	spec, err := resolveSpec(s)
	if err != nil {
		return cfg, err
	}
	group := 0
	if s.GroupSet {
		if !spec.UsesGroup() {
			return cfg, fmt.Errorf("-group has no effect on spec %q: it declares no communicator splits", spec.Name)
		}
		if s.GroupSize < 2 {
			return cfg, fmt.Errorf("-group must be at least 2 (got %d)", s.GroupSize)
		}
		group = s.GroupSize
	}
	progs, err := spec.Compile(scenario.Params{Ranks: s.Ranks, Steps: s.Steps, Seed: s.Seed, Group: group})
	if err != nil {
		return cfg, err
	}
	cfg.Programs = progs
	cfg.Triggers = fleet.Triggers(spec.Checkpoints, vtime.Time(s.CkptAt))
	if plan == nil && spec.Faults != nil {
		// The spec's own plan takes over from the legacy flags; a legacy
		// flag passed explicitly would be silently ignored, so reject it
		// by name (-faults overrides the spec's plan outright).
		switch {
		case s.FailAfterSet:
			return cfg, fmt.Errorf("-fail-after has no effect on spec %q: it declares its own fault plan (override with -faults)", spec.Name)
		case s.FailDelaySet:
			return cfg, fmt.Errorf("-fail-delay has no effect on spec %q: it declares its own fault plan (override with -faults)", spec.Name)
		case s.NoFailSet:
			return cfg, fmt.Errorf("-no-fail has no effect on spec %q: it declares its own fault plan (override with -faults)", spec.Name)
		}
		plan = spec.Faults
	}
	if err := applyFaults(&cfg, s, plan); err != nil {
		return cfg, err
	}
	if err := applyStorage(&cfg, s, spec); err != nil {
		return cfg, err
	}
	if !s.IslandsSet && spec.Islands > 0 {
		// The spec's lane-count hint applies unless the CLI overrides it.
		// Like the flag, it is purely a performance knob: the partition
		// never changes the report.
		cfg.Islands = spec.Islands
	}
	if s.Workers > 1 && cfg.Islands <= 1 {
		return cfg, fmt.Errorf("-workers %d has no effect without -islands of at least 2 (workers drain island lanes in parallel)", s.Workers)
	}
	return cfg, nil
}

// runScenario executes the job — including any injected failure and the
// restarts that recover from it — streaming the full deterministic
// output (restart notices followed by the coordinator's report) into w.
// It is a single-run front door to the fleet engine; -sweep drives the
// same engine over a grid.
func runScenario(cfg coordinator.Config, w io.Writer) error {
	_, err := fleet.NewEngine().Run(cfg, w)
	return err
}

// splitList splits a comma-separated flag value, trimming spaces and
// dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// buildSweep validates the sweep flag surface and translates it into a
// fleet grid. Every dimension flag left unset collapses to the single
// value the equivalent single-run flag selects, so `-sweep` alone runs
// a 1-cell grid of the default scenario.
func buildSweep(s scenarioOpts) (fleet.Sweep, error) {
	var sw fleet.Sweep
	// These flags only make sense for exactly one run; a sweep would
	// silently ignore (-record: overwrite per cell) them, so reject.
	switch {
	case s.TraceSet:
		return sw, fmt.Errorf("-trace cannot be combined with -sweep (a sweep compiles its cells from specs)")
	case s.Record != "":
		return sw, fmt.Errorf("-record cannot be combined with -sweep (record a single run instead)")
	case s.GroupSet:
		return sw, fmt.Errorf("-group cannot be combined with -sweep (it applies to a single run)")
	}
	if s.SpecSet && s.WorkloadSet {
		return sw, fmt.Errorf("-spec and -workload are mutually exclusive (-workload is an alias for the library spec of the same name)")
	}
	if s.Steps < 0 {
		return sw, fmt.Errorf("-steps must be non-negative (got %d)", s.Steps)
	}
	var personality kernelsim.Personality
	switch s.Kernel {
	case "unpatched":
		personality = kernelsim.Unpatched
	case "patched":
		personality = kernelsim.Patched
	default:
		return sw, fmt.Errorf("unknown -kernel %q (want unpatched or patched)", s.Kernel)
	}
	plan, err := loadFaultPlan(s)
	if err != nil {
		return sw, err
	}
	if err := validateFailFlags(s); err != nil {
		return sw, err
	}

	// Dimensions: each defaults to the single value its single-run
	// counterpart flag selects.
	if s.SweepSpecs != "" {
		sw.Specs = splitList(s.SweepSpecs)
	} else if s.SpecSet {
		sw.Specs = []string{s.Spec}
	} else {
		switch s.Workload {
		case "default", "overlap":
			sw.Specs = []string{s.Workload}
		default:
			return sw, fmt.Errorf("unknown -workload %q (want default or overlap)", s.Workload)
		}
	}
	if s.SweepRanks != "" {
		for _, v := range splitList(s.SweepRanks) {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return sw, fmt.Errorf("-sweep-ranks: %q is not a positive rank count", v)
			}
			sw.Ranks = append(sw.Ranks, n)
		}
	} else {
		if s.Ranks < 1 {
			return sw, fmt.Errorf("-ranks must be at least 1 (got %d)", s.Ranks)
		}
		sw.Ranks = []int{s.Ranks}
	}
	if s.SweepCkpt != "" {
		for _, v := range splitList(s.SweepCkpt) {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return sw, fmt.Errorf("-sweep-ckpt: %q is not a positive duration", v)
			}
			sw.CkptAt = append(sw.CkptAt, d)
		}
	} else {
		sw.CkptAt = []time.Duration{s.CkptAt}
	}
	if s.SweepVirtid != "" {
		sw.Virtids = splitList(s.SweepVirtid)
	} else {
		sw.Virtids = []string{s.Virtid}
	}
	for _, v := range sw.Virtids {
		if _, err := virtid.ParseImpl(v); err != nil {
			return sw, fmt.Errorf("-sweep-virtid: %w", err)
		}
	}
	if s.SweepIncr != "" {
		for _, v := range splitList(s.SweepIncr) {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return sw, fmt.Errorf("-sweep-incremental: %q is not a boolean", v)
			}
			sw.Incremental = append(sw.Incremental, b)
		}
	} else {
		sw.Incremental = []bool{s.Incremental}
	}
	var (
		baseStorage *storage.Spec
		baseLegacy  bool
	)
	if s.SweepStorage != "" {
		// The dimension sets each cell's pipeline; single-point storage
		// flags would be dead weight, so reject them by name.
		switch {
		case s.LegacyStragglerSet:
			return sw, fmt.Errorf("-legacy-straggler has no effect with -sweep-storage (the dimension sets each cell's pipeline)")
		case s.StorageSet:
			return sw, fmt.Errorf("-storage has no effect with -sweep-storage (the dimension sets each cell's pipeline)")
		case firstStorageFlag(s) != "":
			return sw, fmt.Errorf("%s has no effect with -sweep-storage (the dimension sets each cell's pipeline)", firstStorageFlag(s))
		}
		sw.Storage = splitList(s.SweepStorage)
	} else {
		baseStorage, baseLegacy, err = resolveStorage(s, nil)
		if err != nil {
			return sw, err
		}
		if s.CompressSet && s.Compress {
			anyIncr := false
			for _, b := range sw.Incremental {
				anyIncr = anyIncr || b
			}
			if !anyIncr {
				return sw, fmt.Errorf("-compress has no effect without -incremental (only delta pages compress)")
			}
		}
	}

	if s.FullEvery < 0 {
		return sw, fmt.Errorf("-full-every must be non-negative (got %d)", s.FullEvery)
	}
	if s.Islands < 0 {
		return sw, fmt.Errorf("-islands must be non-negative (got %d)", s.Islands)
	}
	if s.Workers < 1 {
		return sw, fmt.Errorf("-workers must be at least 1 (got %d)", s.Workers)
	}
	if s.SweepWorkersSet && s.SweepWorkers < 1 {
		return sw, fmt.Errorf("-sweep-workers must be at least 1 (got %d)", s.SweepWorkers)
	}
	sw.Base = fleet.Job{
		Steps:           s.Steps,
		Seed:            s.Seed,
		Kernel:          personality,
		Faults:          plan,
		FullEvery:       s.FullEvery,
		Islands:         s.Islands,
		Workers:         s.Workers,
		Storage:         baseStorage,
		LegacyStraggler: baseLegacy,
	}
	if plan == nil && !s.NoFail {
		sw.Base.FailAfter = s.FailAfter
		sw.Base.FailDelay = vtime.Duration(s.FailDelay)
	}
	sw.PoolWorkers = s.SweepWorkers
	return sw, nil
}

// runSweep executes the grid on one shared engine and writes the
// machine-readable aggregate as indented JSON.
func runSweep(sw fleet.Sweep, w io.Writer) error {
	res, err := fleet.NewEngine().RunSweep(sw)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// recordTrace writes the job's per-rank op streams as a replayable
// trace file.
func recordTrace(path string, progs []scenario.Program) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-record: %w", err)
	}
	if err := scenario.WriteTrace(f, progs); err != nil {
		f.Close()
		return fmt.Errorf("-record %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("-record %s: %w", path, err)
	}
	return nil
}

func main() {
	def := defaultScenario()
	var s scenarioOpts
	flag.IntVar(&s.Ranks, "ranks", def.Ranks, "number of simulated MPI ranks")
	flag.IntVar(&s.Steps, "steps", def.Steps, "workload iterations per rank")
	flag.Uint64Var(&s.Seed, "seed", def.Seed, "deterministic seed for workload jitter and ckpt stragglers")
	flag.StringVar(&s.Kernel, "kernel", def.Kernel, "kernel personality: unpatched or patched")
	flag.StringVar(&s.Virtid, "virtid", def.Virtid, "handle-virtualisation table: sharded (lock-free reads) or mutex (MANA baseline)")
	flag.StringVar(&s.Spec, "spec", "", "scenario spec: a library name ("+strings.Join(scenario.Names(), ", ")+") or a JSON spec file")
	flag.StringVar(&s.Trace, "trace", "", "replay a recorded per-rank op trace instead of compiling a spec")
	flag.StringVar(&s.Record, "record", "", "write the job's per-rank op streams to this trace file before running")
	flag.StringVar(&s.Workload, "workload", def.Workload, "alias for -spec limited to the classic specs: default (halo exchange, world collectives) or overlap (staggered sub-communicator collectives)")
	flag.IntVar(&s.GroupSize, "group", def.GroupSize, "sub-communicator group width, for specs that split communicators (e.g. overlap)")
	flag.DurationVar(&s.CkptAt, "ckpt-at", def.CkptAt, "virtual time of the first checkpoint request")
	flag.IntVar(&s.FailAfter, "fail-after", def.FailAfter, "inject a failure after this checkpoint commits (0 = never)")
	flag.DurationVar(&s.FailDelay, "fail-delay", def.FailDelay, "with -fail-after: virtual-time delay between the commit and the injected failure")
	flag.BoolVar(&s.NoFail, "no-fail", def.NoFail, "disable the failure/restart scenario")
	flag.StringVar(&s.Faults, "faults", "", "fault-plan JSON file; replaces -fail-after/-fail-delay/-no-fail and any plan the spec declares")
	flag.BoolVar(&s.Incremental, "incremental", def.Incremental, "write incremental (dirty-page delta) checkpoint images after the first full one")
	flag.IntVar(&s.FullEvery, "full-every", def.FullEvery, "with -incremental, write a full image every Nth checkpoint (0 = only the first)")
	flag.IntVar(&s.Islands, "islands", def.Islands, "partition ranks across this many event-queue lanes (0 = spec hint or serial); never changes the report")
	flag.IntVar(&s.Workers, "workers", def.Workers, "goroutines draining island lanes in parallel windows (1 = serial); never changes the report")
	flag.StringVar(&s.Storage, "storage", "", "checkpoint I/O pipeline: a built-in profile ("+strings.Join(storage.ProfileNames(), ", ")+") or a JSON storage document; overrides any storage block the spec declares")
	flag.Float64Var(&s.PFSBandwidth, "pfs-bandwidth", def.PFSBandwidth, "aggregate parallel-filesystem bandwidth in bytes/second, contended across all writers (0 = free I/O)")
	flag.Float64Var(&s.BBBandwidth, "bb-bandwidth", def.BBBandwidth, "per-node burst-buffer staging bandwidth in bytes/second (0 = free staging); enables staging")
	flag.Uint64Var(&s.BBCapacity, "bb-capacity", def.BBCapacity, "per-node burst-buffer capacity in bytes; staged bytes beyond it write through to the PFS; enables staging")
	flag.BoolVar(&s.Compress, "compress", false, "compress incremental delta pages per region class before storing (requires -incremental)")
	flag.Float64Var(&s.CompressCost, "compress-cost", def.CompressCost, "with -compress: kernel CPU cost per input byte, in ns")
	flag.BoolVar(&s.LegacyStraggler, "legacy-straggler", false, "reinstate the retired flat-bandwidth write model with RNG-drawn stragglers (byte-identical to pre-pipeline reports)")
	flag.BoolVar(&s.Sweep, "sweep", false, "run a grid of simulations concurrently and print a JSON aggregate instead of one report")
	flag.StringVar(&s.SweepSpecs, "sweep-specs", "", "with -sweep: comma-separated spec names/files for the grid (default: the single -spec/-workload)")
	flag.StringVar(&s.SweepRanks, "sweep-ranks", "", "with -sweep: comma-separated rank counts (default: -ranks)")
	flag.StringVar(&s.SweepCkpt, "sweep-ckpt", "", "with -sweep: comma-separated first-checkpoint times (default: -ckpt-at)")
	flag.StringVar(&s.SweepVirtid, "sweep-virtid", "", "with -sweep: comma-separated virtid implementations (default: -virtid)")
	flag.StringVar(&s.SweepIncr, "sweep-incremental", "", "with -sweep: comma-separated booleans for incremental images (default: -incremental)")
	flag.StringVar(&s.SweepStorage, "sweep-storage", "", "with -sweep: comma-separated storage profiles/files for the grid (default: the single-run storage flags)")
	flag.IntVar(&s.SweepWorkers, "sweep-workers", 0, "with -sweep: concurrent simulations in the pool (0 = GOMAXPROCS)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "ranks":
			s.RanksSet = true
		case "steps":
			s.StepsSet = true
		case "spec":
			s.SpecSet = true
		case "trace":
			s.TraceSet = true
		case "workload":
			s.WorkloadSet = true
		case "group":
			s.GroupSet = true
		case "fail-after":
			s.FailAfterSet = true
		case "fail-delay":
			s.FailDelaySet = true
		case "no-fail":
			s.NoFailSet = true
		case "islands":
			s.IslandsSet = true
		case "sweep-workers":
			s.SweepWorkersSet = true
		case "storage":
			s.StorageSet = true
		case "pfs-bandwidth":
			s.PFSBandwidthSet = true
		case "bb-bandwidth":
			s.BBBandwidthSet = true
		case "bb-capacity":
			s.BBCapacitySet = true
		case "compress":
			s.CompressSet = true
		case "compress-cost":
			s.CompressCostSet = true
		case "legacy-straggler":
			s.LegacyStragglerSet = true
		}
	})

	if s.Sweep {
		sw, err := buildSweep(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "manasim: %v\n", err)
			os.Exit(2)
		}
		if err := runSweep(sw, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "manasim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg, err := buildConfig(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "manasim: %v\n", err)
		os.Exit(2)
	}
	if s.Record != "" {
		if err := recordTrace(s.Record, cfg.Programs); err != nil {
			fmt.Fprintf(os.Stderr, "manasim: %v\n", err)
			os.Exit(1)
		}
	}
	if err := runScenario(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "manasim: %v\n", err)
		os.Exit(1)
	}
}
