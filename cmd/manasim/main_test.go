package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mana/internal/coordinator"
	"mana/internal/storage"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// runScenarioString captures runScenario's streamed output as a string,
// the shape most tests compare.
func runScenarioString(cfg coordinator.Config) (string, error) {
	var buf bytes.Buffer
	if err := runScenario(cfg, &buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// TestDefaultScenarioReportGolden pins the default scenario's report
// bytes: any change to the scheduler, the cost model or the report
// format shows up as a diff against testdata/default_report.golden.
// Regenerate deliberately with:
//
//	go test ./cmd/manasim -run TestDefaultScenarioReportGolden -update
func TestDefaultScenarioReportGolden(t *testing.T) {
	cfg, err := buildConfig(defaultScenario())
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	got, err := runScenarioString(cfg)
	if err != nil {
		t.Fatalf("runScenario: %v", err)
	}
	golden := filepath.Join("testdata", "default_report.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("default-scenario report deviates from golden file.\n--- got\n%s\n--- want\n%s", got, want)
	}
}

// TestIncrementalScenarioReportGolden pins the -incremental scenario the
// same way: the default workload checkpointed with delta images (full
// every 4th), failure and restart included. Regenerate deliberately with:
//
//	go test ./cmd/manasim -run TestIncrementalScenarioReportGolden -update
func TestIncrementalScenarioReportGolden(t *testing.T) {
	s := defaultScenario()
	s.Incremental = true
	cfg, err := buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	got, err := runScenarioString(cfg)
	if err != nil {
		t.Fatalf("runScenario: %v", err)
	}
	if !strings.Contains(got, "incremental=true") {
		t.Errorf("incremental report does not surface its mode:\n%s", got)
	}
	golden := filepath.Join("testdata", "incremental_report.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("incremental-scenario report deviates from golden file.\n--- got\n%s\n--- want\n%s", got, want)
	}
}

// TestOverlapScenarioReportGolden pins the -workload overlap scenario:
// staggered sub-communicator collectives, a checkpoint requested while
// at least two of them are in flight (so the topological-sort drain
// planner orders a real dependency graph), failure and restart.
// Regenerate deliberately with:
//
//	go test ./cmd/manasim -run TestOverlapScenarioReportGolden -update
func TestOverlapScenarioReportGolden(t *testing.T) {
	s := defaultScenario()
	s.Workload = "overlap"
	cfg, err := buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	got, err := runScenarioString(cfg)
	if err != nil {
		t.Fatalf("runScenario: %v", err)
	}
	// The acceptance bar for the drain planner: at least one checkpoint
	// drained >= 2 simultaneously in-flight collectives.
	if !regexpMustFind(t, got, `coll-drain: planned=([2-9]|\d\d+) overlap-width=([2-9]|\d\d+)`) {
		t.Errorf("no checkpoint drained >= 2 overlapping collectives:\n%s", got)
	}
	if !strings.Contains(got, "comm-splits executed=16") {
		t.Errorf("overlap report missing comm-split accounting:\n%s", got)
	}
	golden := filepath.Join("testdata", "overlap_report.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("overlap-scenario report deviates from golden file.\n--- got\n%s\n--- want\n%s", got, want)
	}
}

// regexpMustFind reports whether the pattern matches, failing the test
// on a malformed pattern.
func regexpMustFind(t *testing.T, s, pattern string) bool {
	t.Helper()
	re, err := regexp.Compile(pattern)
	if err != nil {
		t.Fatalf("bad pattern %q: %v", pattern, err)
	}
	return re.MatchString(s)
}

// TestScenarioByteIdenticalAcrossRuns is the CLI-level determinism
// check: the same scenario must render the same bytes every time.
func TestScenarioByteIdenticalAcrossRuns(t *testing.T) {
	s := defaultScenario()
	s.Ranks = 4
	s.Steps = 10
	cfg, err := buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	r1, err := runScenarioString(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	cfg, err = buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	r2, err := runScenarioString(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if r1 != r2 {
		t.Errorf("reports differ between identical runs:\n--- run 1\n%s\n--- run 2\n%s", r1, r2)
	}
}

// TestKernelFlagChangesReport exercises the patched-kernel path through
// the CLI plumbing.
func TestKernelFlagChangesReport(t *testing.T) {
	s := defaultScenario()
	s.Ranks = 4
	s.Steps = 6
	s.NoFail = true
	cfg, err := buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	unpatched, err := runScenarioString(cfg)
	if err != nil {
		t.Fatalf("unpatched run: %v", err)
	}
	s.Kernel = "patched"
	cfg, err = buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	patched, err := runScenarioString(cfg)
	if err != nil {
		t.Fatalf("patched run: %v", err)
	}
	if unpatched == patched {
		t.Error("kernel personality had no effect on the report")
	}
}

// TestVirtidFlagChangesReport exercises the -virtid plumbing: the mutex
// baseline charges a higher per-lookup cost, so the report must differ
// from the sharded default.
func TestVirtidFlagChangesReport(t *testing.T) {
	s := defaultScenario()
	s.Ranks = 4
	s.Steps = 6
	s.NoFail = true
	cfg, err := buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	sharded, err := runScenarioString(cfg)
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	s.Virtid = "mutex"
	cfg, err = buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	mutex, err := runScenarioString(cfg)
	if err != nil {
		t.Fatalf("mutex run: %v", err)
	}
	if sharded == mutex {
		t.Error("virtid implementation had no effect on the report")
	}
	for report, want := range map[string]string{sharded: "impl=sharded", mutex: "impl=mutex"} {
		if !strings.Contains(report, want) {
			t.Errorf("report does not name its virtid implementation (%s)", want)
		}
	}
}

// TestBuildConfigValidation covers the error paths that used to live in
// main's flag handling.
func TestBuildConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*scenarioOpts)
	}{
		{"zero ranks", func(s *scenarioOpts) { s.Ranks = 0 }},
		{"negative steps", func(s *scenarioOpts) { s.Steps = -1 }},
		{"unknown kernel", func(s *scenarioOpts) { s.Kernel = "plan9" }},
		{"unknown virtid", func(s *scenarioOpts) { s.Virtid = "bogolock" }},
		{"unknown workload", func(s *scenarioOpts) { s.Workload = "spiral" }},
		{"tiny overlap group", func(s *scenarioOpts) { s.Workload = "overlap"; s.GroupSize = 1; s.GroupSet = true }},
		{"negative full-every", func(s *scenarioOpts) { s.FullEvery = -1 }},
		{"group without splits", func(s *scenarioOpts) { s.GroupSize = 4; s.GroupSet = true }},
		{"group on splitless spec", func(s *scenarioOpts) { s.Spec = "stencil"; s.SpecSet = true; s.GroupSize = 4; s.GroupSet = true }},
		{"spec and workload", func(s *scenarioOpts) {
			s.Spec = "overlap"
			s.SpecSet = true
			s.Workload = "overlap"
			s.WorkloadSet = true
		}},
		{"unknown spec", func(s *scenarioOpts) { s.Spec = "no-such-spec.json"; s.SpecSet = true }},
		{"trace and spec", func(s *scenarioOpts) { s.Trace = "x.trace"; s.TraceSet = true; s.Spec = "stencil"; s.SpecSet = true }},
		{"trace and workload", func(s *scenarioOpts) { s.Trace = "x.trace"; s.TraceSet = true; s.WorkloadSet = true }},
		{"trace and group", func(s *scenarioOpts) { s.Trace = "x.trace"; s.TraceSet = true; s.GroupSet = true }},
		{"trace and ranks", func(s *scenarioOpts) { s.Trace = "x.trace"; s.TraceSet = true; s.RanksSet = true }},
		{"trace and steps", func(s *scenarioOpts) { s.Trace = "x.trace"; s.TraceSet = true; s.StepsSet = true }},
		{"missing trace file", func(s *scenarioOpts) { s.Trace = "testdata/no-such.trace"; s.TraceSet = true }},
		{"negative islands", func(s *scenarioOpts) { s.Islands = -1; s.IslandsSet = true }},
		{"zero workers", func(s *scenarioOpts) { s.Workers = 0 }},
		{"workers without islands", func(s *scenarioOpts) { s.Workers = 4 }},
		{"compress without incremental", func(s *scenarioOpts) { s.Compress = true; s.CompressSet = true }},
		{"compress-cost without compress", func(s *scenarioOpts) { s.CompressCost = 0.5; s.CompressCostSet = true }},
		{"unknown storage profile", func(s *scenarioOpts) { s.Storage = "quantum"; s.StorageSet = true }},
		{"compressed profile without incremental", func(s *scenarioOpts) { s.Storage = "staged-compressed"; s.StorageSet = true }},
		{"legacy straggler with storage", func(s *scenarioOpts) {
			s.LegacyStraggler = true
			s.LegacyStragglerSet = true
			s.Storage = "staged"
			s.StorageSet = true
		}},
		{"legacy straggler with storage flag", func(s *scenarioOpts) {
			s.LegacyStraggler = true
			s.LegacyStragglerSet = true
			s.BBCapacity = 1 << 20
			s.BBCapacitySet = true
		}},
		{"sweep-storage without sweep", func(s *scenarioOpts) { s.SweepStorage = "direct,staged" }},
		{"drain-hop plan without staging", func(s *scenarioOpts) {
			s.Faults = filepath.Join("testdata", "faults", "staging", "drain-torn-fallback.json")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := defaultScenario()
			tc.mut(&s)
			if _, err := buildConfig(s); err == nil {
				t.Errorf("buildConfig accepted invalid scenario %+v", s)
			}
		})
	}
}

// TestLegacyStragglerReportGolden pins the -legacy-straggler escape
// hatch to the retired flat-bandwidth model's exact bytes: the golden is
// a frozen copy of the pre-pipeline default report and is deliberately
// NOT regenerable with -update — if this test fails, the escape hatch
// broke its compatibility promise.
func TestLegacyStragglerReportGolden(t *testing.T) {
	s := defaultScenario()
	s.LegacyStraggler = true
	s.LegacyStragglerSet = true
	cfg, err := buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	got, err := runScenarioString(cfg)
	if err != nil {
		t.Fatalf("runScenario: %v", err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "legacy_straggler_report.golden"))
	if err != nil {
		t.Fatalf("read frozen golden: %v", err)
	}
	if got != string(want) {
		t.Errorf("-legacy-straggler deviates from the retired model's frozen bytes.\n--- got\n%s\n--- want\n%s", got, want)
	}
}

// TestStorageFlagResolution covers the positive half of the storage flag
// surface: profiles resolve, individual flags overlay them, and a lone
// burst-buffer flag completes from the model defaults.
func TestStorageFlagResolution(t *testing.T) {
	s := defaultScenario()
	s.Storage = "staged"
	s.StorageSet = true
	cfg, err := buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig(-storage staged): %v", err)
	}
	if !cfg.Storage.Staging || cfg.Storage.BBCapacity != storage.DefaultBBCapacity {
		t.Errorf("-storage staged compiled wrong: %+v", cfg.Storage)
	}

	s.PFSBandwidth = 2e9
	s.PFSBandwidthSet = true
	cfg, err = buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig(-storage staged -pfs-bandwidth): %v", err)
	}
	if cfg.Storage.PFSBandwidth != 2e9 || !cfg.Storage.Staging {
		t.Errorf("-pfs-bandwidth did not overlay the profile: %+v", cfg.Storage)
	}

	s2 := defaultScenario()
	s2.BBCapacity = 1 << 20
	s2.BBCapacitySet = true
	cfg, err = buildConfig(s2)
	if err != nil {
		t.Fatalf("buildConfig(-bb-capacity alone): %v", err)
	}
	if !cfg.Storage.Staging || cfg.Storage.BBCapacity != 1<<20 || cfg.Storage.BBBandwidth != storage.DefaultBBBandwidth {
		t.Errorf("lone -bb-capacity did not complete a burst buffer from defaults: %+v", cfg.Storage)
	}
}

// TestSpecStorageBlock covers a spec-declared storage block: it
// resolves, individual flags may not silently reshape it, and -storage
// overrides it whole.
func TestSpecStorageBlock(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "st.json")
	body := `{
		"name": "st",
		"phases": [{"name": "main", "steps": 2, "ops": [{"op": "compute", "mean": "1ms"}]}],
		"storage": {"burst_buffer": {"bandwidth": 4e9, "capacity": 1048576}}
	}`
	if err := os.WriteFile(spec, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	s := defaultScenario()
	s.Spec = spec
	s.SpecSet = true
	cfg, err := buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig(spec block): %v", err)
	}
	if !cfg.Storage.Staging || cfg.Storage.BBBandwidth != 4e9 || cfg.Storage.BBCapacity != 1<<20 {
		t.Errorf("spec storage block not applied: %+v", cfg.Storage)
	}

	s.BBCapacity = 2 << 20
	s.BBCapacitySet = true
	_, err = buildConfig(s)
	if err == nil || !strings.Contains(err.Error(), "-bb-capacity has no effect on spec") {
		t.Errorf("flag alongside spec block: err = %v, want named rejection", err)
	}

	s.BBCapacitySet = false
	s.Storage = "direct"
	s.StorageSet = true
	cfg, err = buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig(-storage overrides block): %v", err)
	}
	if cfg.Storage.Staging {
		t.Errorf("-storage direct did not override the spec block: %+v", cfg.Storage)
	}
}

// TestIslandFlagsAreReportNeutral is the CLI-level statement of the
// sharded scheduler's contract: -islands and -workers are pure
// performance knobs, so every setting must reproduce the serial
// report byte for byte.
func TestIslandFlagsAreReportNeutral(t *testing.T) {
	baseCfg, err := buildConfig(defaultScenario())
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	base, err := runScenarioString(baseCfg)
	if err != nil {
		t.Fatalf("serial runScenario: %v", err)
	}
	for _, tc := range []struct {
		name             string
		islands, workers int
	}{
		{"islands only", 4, 1},
		{"islands and workers", 8, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := defaultScenario()
			s.Islands = tc.islands
			s.IslandsSet = true
			s.Workers = tc.workers
			cfg, err := buildConfig(s)
			if err != nil {
				t.Fatalf("buildConfig: %v", err)
			}
			got, err := runScenarioString(cfg)
			if err != nil {
				t.Fatalf("runScenario: %v", err)
			}
			if got != base {
				t.Errorf("-islands %d -workers %d changed the report.\n--- sharded\n%s\n--- serial\n%s",
					tc.islands, tc.workers, got, base)
			}
		})
	}
}

// TestSpecIslandsHint checks that a spec's islands field seeds the
// partition, and that an explicit -islands flag overrides it.
func TestSpecIslandsHint(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "hint.json")
	body := `{
		"name": "hint",
		"islands": 4,
		"phases": [{"name": "main", "steps": 2, "ops": [{"op": "compute", "mean": "1ms"}]}]
	}`
	if err := os.WriteFile(spec, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	s := defaultScenario()
	s.Spec = spec
	s.SpecSet = true
	cfg, err := buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	if cfg.Islands != 4 {
		t.Errorf("spec hint not applied: cfg.Islands = %d, want 4", cfg.Islands)
	}
	s.Islands = 2
	s.IslandsSet = true
	cfg, err = buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig with -islands override: %v", err)
	}
	if cfg.Islands != 2 {
		t.Errorf("-islands should override the spec hint: cfg.Islands = %d, want 2", cfg.Islands)
	}
}
