package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestFailFlagValidation covers the failure-flag surface's error paths:
// legacy flags that would be silently ignored — by each other, by a
// -faults plan, or by a spec-declared plan — are rejected naming the
// offending flag, and malformed values are refused.
func TestFailFlagValidation(t *testing.T) {
	specWithFaults := filepath.Join(t.TempDir(), "faulty.json")
	body := `{
		"name": "faulty",
		"phases": [{"name": "main", "steps": 2, "ops": [{"op": "compute", "mean": "1ms"}]}],
		"faults": {"faults": [{"at": "checkpoint-commit", "n": 1, "kind": "rank-crash"}]}
	}`
	if err := os.WriteFile(specWithFaults, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		want string // substring the error must carry (the offending flag)
		mut  func(*scenarioOpts)
	}{
		{"negative fail-after", "-fail-after", func(s *scenarioOpts) { s.FailAfter = -1 }},
		{"fail-delay with no-fail", "-fail-delay has no effect with -no-fail", func(s *scenarioOpts) {
			s.FailDelaySet = true
			s.NoFail = true
			s.NoFailSet = true
		}},
		{"fail-delay without fail-after", "-fail-delay has no effect without -fail-after", func(s *scenarioOpts) {
			s.FailDelaySet = true
		}},
		{"non-positive fail-delay", "-fail-delay must be positive", func(s *scenarioOpts) {
			s.FailDelay = 0
			s.FailDelaySet = true
			s.FailAfterSet = true
		}},
		{"fail-after with no-fail", "-fail-after has no effect with -no-fail", func(s *scenarioOpts) {
			s.FailAfterSet = true
			s.NoFail = true
			s.NoFailSet = true
		}},
		{"fail-after with faults", "-fail-after cannot be combined with -faults", func(s *scenarioOpts) {
			s.Faults = "testdata/faults/multi-failure.json"
			s.FailAfterSet = true
		}},
		{"fail-delay with faults", "-fail-delay cannot be combined with -faults", func(s *scenarioOpts) {
			s.Faults = "testdata/faults/multi-failure.json"
			s.FailDelaySet = true
		}},
		{"no-fail with faults", "-no-fail cannot be combined with -faults", func(s *scenarioOpts) {
			s.Faults = "testdata/faults/multi-failure.json"
			s.NoFail = true
			s.NoFailSet = true
		}},
		{"missing faults file", "-faults", func(s *scenarioOpts) { s.Faults = "testdata/faults/no-such-plan.json" }},
		{"invalid faults file", "faults[0].kind", func(s *scenarioOpts) {
			bad := filepath.Join(t.TempDir(), "bad.json")
			if err := os.WriteFile(bad, []byte(`{"faults":[{"at":"checkpoint-commit","n":1,"kind":"meteor"}]}`), 0o644); err != nil {
				t.Fatal(err)
			}
			s.Faults = bad
		}},
		{"fail-after with spec plan", "declares its own fault plan", func(s *scenarioOpts) {
			s.Spec = specWithFaults
			s.SpecSet = true
			s.FailAfterSet = true
		}},
		{"no-fail with spec plan", "declares its own fault plan", func(s *scenarioOpts) {
			s.Spec = specWithFaults
			s.SpecSet = true
			s.NoFail = true
			s.NoFailSet = true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := defaultScenario()
			tc.mut(&s)
			_, err := buildConfig(s)
			if err == nil {
				t.Fatalf("buildConfig accepted invalid options %+v", s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not carry %q", err, tc.want)
			}
			// The sweep builder shares the failure-flag surface; the
			// spec-plan cases resolve specs per cell, so only the
			// flag-level rejections apply there.
			if strings.Contains(tc.name, "spec plan") {
				return
			}
			s.Sweep = true
			if _, err := buildSweep(s); err == nil {
				t.Errorf("buildSweep accepted invalid options %+v", s)
			}
		})
	}
}

// TestFaultPlanOverridesSpecPlan pins the precedence contract: -faults
// replaces a spec-declared plan outright rather than layering onto it.
func TestFaultPlanOverridesSpecPlan(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "faulty.json")
	body := `{
		"name": "faulty",
		"phases": [{"name": "main", "steps": 2, "ops": [{"op": "compute", "mean": "1ms"}]}],
		"faults": {"faults": [{"at": "virtual-time", "time": "1us", "kind": "rank-crash"}]}
	}`
	if err := os.WriteFile(spec, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	s := defaultScenario()
	s.Spec = spec
	s.SpecSet = true
	s.Faults = "testdata/faults/virtual-time-crash.json"
	cfg, err := buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	if len(cfg.Faults) != 1 {
		t.Fatalf("compiled faults = %d, want 1 (the CLI plan, not the spec's)", len(cfg.Faults))
	}
	if got, want := cfg.Faults[0].Time, 6*time.Millisecond; time.Duration(got) != want {
		t.Errorf("fault time = %v, want %v from the CLI plan", got, want)
	}
}

// TestMultiFailurePlanAcceptance is the PR's headline scenario: one plan
// injecting a mid-drain crash, a torn image write and a restart-time
// double fault. The job must recover by falling back past the torn and
// poisoned links, report the fallback depth and lost work, render
// byte-identical output across repeated runs at -islands 8 -workers 4,
// and land on the fault-free final fingerprint.
func TestMultiFailurePlanAcceptance(t *testing.T) {
	s := defaultScenario()
	s.Faults = filepath.Join("testdata", "faults", "multi-failure.json")
	s.Islands = 8
	s.IslandsSet = true
	s.Workers = 4
	cfg, err := buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	first, err := runScenarioString(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	cfg, err = buildConfig(s)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	second, err := runScenarioString(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if first != second {
		t.Errorf("multi-failure output differs between identical runs at -islands 8 -workers 4:\n--- run 1\n%s\n--- run 2\n%s",
			first, second)
	}
	for _, want := range []string{
		"injected failure after checkpoint #2; restarting from last image",
		"injected failure after checkpoint #3; restarting from last image",
		"restart failed (injected restart fault); falling back to an older image",
		"faults: torn-images=1",
		"fallback-depth=2",
		"torn-links=2",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("multi-failure output missing %q:\n%s", want, first)
		}
	}
	if !regexpMustFind(t, first, `lost-work=[1-9]`) {
		t.Errorf("multi-failure output does not report non-zero lost work:\n%s", first)
	}

	// The recovery contract: the final application state matches the
	// fault-free run's bit for bit.
	clean := defaultScenario()
	clean.NoFail = true
	cleanCfg, err := buildConfig(clean)
	if err != nil {
		t.Fatalf("buildConfig (fault-free): %v", err)
	}
	cleanOut, err := runScenarioString(cleanCfg)
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	fp := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "final fingerprint: ") {
				return strings.TrimPrefix(line, "final fingerprint: ")
			}
		}
		t.Fatalf("no final fingerprint line in:\n%s", out)
		return ""
	}
	if got, want := fp(first), fp(cleanOut); got != want {
		t.Errorf("final fingerprint %s differs from fault-free %s", got, want)
	}
}

// TestSweepWithFaultPlan pins fleet-mode fault support: a -sweep over a
// fault plan reports per-cell fallback depth and lost work, stays
// byte-identical across pool widths, and each cell's hash matches the
// standalone invocation's bytes.
func TestSweepWithFaultPlan(t *testing.T) {
	run := func(poolWorkers int) *bytes.Buffer {
		s := defaultScenario()
		s.Sweep = true
		s.Faults = filepath.Join("testdata", "faults", "multi-failure.json")
		s.SweepWorkers = poolWorkers
		s.SweepWorkersSet = true
		sw, err := buildSweep(s)
		if err != nil {
			t.Fatalf("buildSweep: %v", err)
		}
		var out bytes.Buffer
		if err := runSweep(sw, &out); err != nil {
			t.Fatalf("runSweep (pool=%d): %v", poolWorkers, err)
		}
		return &out
	}
	narrow, wide := run(1), run(4)

	var doc struct {
		Cells []struct {
			FallbackDepth *int   `json:"fallback_depth"`
			LostWorkNs    *int64 `json:"lost_work_ns"`
			Restarts      int    `json:"restarts"`
			ReportFNV64   string `json:"report_fnv64"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(narrow.Bytes(), &doc); err != nil {
		t.Fatalf("aggregate is not valid JSON: %v\n%s", err, narrow.String())
	}
	if len(doc.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(doc.Cells))
	}
	cell := doc.Cells[0]
	switch {
	case cell.FallbackDepth == nil:
		t.Error("cell JSON has no fallback_depth field")
	case *cell.FallbackDepth != 2:
		t.Errorf("fallback_depth = %d, want 2", *cell.FallbackDepth)
	}
	switch {
	case cell.LostWorkNs == nil:
		t.Error("cell JSON has no lost_work_ns field")
	case *cell.LostWorkNs <= 0:
		t.Errorf("lost_work_ns = %d, want > 0", *cell.LostWorkNs)
	}

	// Pool width must not leak into the aggregate outside wall-clock
	// fields: compare after zeroing them.
	strip := func(b []byte) string {
		out := string(b)
		out = regexpReplaceAll(t, out, `"wall_ms": [0-9.e+-]+`, `"wall_ms": 0`)
		out = regexpReplaceAll(t, out, `"runs_per_sec": [0-9.e+-]+`, `"runs_per_sec": 0`)
		out = regexpReplaceAll(t, out, `"pool_workers": [0-9]+`, `"pool_workers": 0`)
		return out
	}
	if strip(narrow.Bytes()) != strip(wide.Bytes()) {
		t.Errorf("sweep aggregate differs between pool widths 1 and 4:\n--- pool 1\n%s\n--- pool 4\n%s",
			narrow.String(), wide.String())
	}

	// Cell hash matches the standalone run's bytes.
	single := defaultScenario()
	single.Faults = filepath.Join("testdata", "faults", "multi-failure.json")
	cfg, err := buildConfig(single)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	report, err := runScenarioString(cfg)
	if err != nil {
		t.Fatalf("standalone run: %v", err)
	}
	h := fnv.New64a()
	h.Write([]byte(report))
	if want := fmt.Sprintf("%016x", h.Sum64()); cell.ReportFNV64 != want {
		t.Errorf("sweep cell hash %s, standalone bytes hash %s", cell.ReportFNV64, want)
	}
}

// regexpReplaceAll is a test helper wrapping regexp replacement with
// pattern-compile failure reporting.
func regexpReplaceAll(t *testing.T, s, pattern, repl string) string {
	t.Helper()
	re, err := regexp.Compile(pattern)
	if err != nil {
		t.Fatalf("bad pattern %q: %v", pattern, err)
	}
	return re.ReplaceAllString(s, repl)
}
