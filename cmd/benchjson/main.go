// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so benchmark trajectories
// (scheduler event loop, virtid lookup contention) can be tracked from
// one artifact — BENCH_sched.json, written by `make bench-json` — from
// this PR onward instead of being scraped out of CI logs.
//
// Standard metrics (ns/op, B/op, allocs/op) become typed fields; any
// custom testing.B ReportMetric units (events, rank-visits, ...) land in
// a sorted "metrics" map. Lines that are not benchmark results (goos,
// pkg, PASS, ...) are ignored, so the tool can be fed the raw output of
// `go test -bench ... ./...` across multiple packages.
//
// With -check, the tool instead compares the bench output on stdin
// against a committed baseline artifact and exits non-zero if the
// baseline is stale (a benchmark in the artifact was not run — someone
// removed or renamed it without regenerating BENCH_sched.json) or if
// any benchmark's ns/op regressed beyond -max-regress (default 0.30,
// i.e. 30%) relative to the baseline. Custom metrics with a "/sec"
// unit (runs/sec, ...) are throughput figures and gate in the other
// direction: falling more than -max-regress below the baseline fails. A benchmark that ran but is not
// in the artifact yet is reported informationally — a newly added
// benchmark is not a regression, and failing on it would force every
// benchmark-adding change to regenerate the artifact on the machine
// that owns the baseline numbers. CI runs the check with a loose
// multiplier because -benchtime=1x timings are noisy; `make bench-check`
// applies the strict threshold at a real benchtime.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... | go run ./cmd/benchjson > BENCH_sched.json
//	go test -bench=. -benchmem -run='^$' ./... | go run ./cmd/benchjson -check BENCH_sched.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line, decoded.
type Result struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped (BenchmarkVirtidLookupSharded/goroutines=16).
	Name string `json:"name"`
	// Iterations is the b.N the reported per-op figures were averaged
	// over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall-clock cost per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem was on.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom ReportMetric values (events, rank-visits, ...)
	// keyed by their unit. encoding/json marshals map keys sorted, so the
	// artifact is deterministic.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the whole artifact.
type Document struct {
	Benchmarks []Result `json:"benchmarks"`
}

// suffixRe matches the -GOMAXPROCS suffix Go appends to benchmark names.
var suffixRe = regexp.MustCompile(`-\d+$`)

// parseLine decodes one `go test -bench` output line; ok is false for
// non-benchmark lines. The format is:
//
//	BenchmarkName-P  N  <value> <unit>  [<value> <unit> ...]
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       suffixRe.ReplaceAllString(fields[0], ""),
		Iterations: iters,
	}
	sawNsPerOp := false
	// The remaining fields are (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			sawNsPerOp = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, sawNsPerOp
}

// parse decodes every benchmark line from in.
func parse(in io.Reader) ([]Result, error) {
	results := []Result{}
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		if r, ok := parseLine(scanner.Text()); ok {
			results = append(results, r)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("reading bench output: %w", err)
	}
	return results, nil
}

// run converts bench output from in to a JSON document on out.
func run(in io.Reader, out io.Writer) error {
	results, err := parse(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(Document{Benchmarks: results})
}

// check compares fresh bench output against the baseline document and
// returns one error per violation — a stale baseline (a benchmark in
// the artifact was not run) or an ns/op regression beyond maxRegress
// (0.30 = fail when more than 30% slower) — plus informational notes
// for benchmarks that ran but are not in the artifact yet (new
// benchmarks are not regressions).
//
// A regression verdict needs a meaningful measurement: when the fresh
// run's window — iterations times the baseline per-op cost — is shorter
// than minWindowNs, harness overhead dominates the figure (a one-shot run
// of a 10ns benchmark "measures" microseconds) and the comparison is
// skipped. Staleness is still enforced for such benchmarks, so a 1x CI
// smoke gates the macro benchmarks and the artifact's shape, while short
// microbenchmarks are only judged at a real benchtime.
func check(results []Result, baseline Document, maxRegress, minWindowNs float64) (errs []error, notes []string) {
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	fresh := make(map[string]Result, len(results))
	for _, r := range results {
		fresh[r.Name] = r
	}
	var missing, added []string
	for name := range base {
		if _, ok := fresh[name]; !ok {
			missing = append(missing, name)
		}
	}
	for name := range fresh {
		if _, ok := base[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(added)
	for _, name := range missing {
		errs = append(errs, fmt.Errorf("stale baseline: %s is in the artifact but was not run", name))
	}
	for _, name := range added {
		notes = append(notes, fmt.Sprintf("new benchmark: %s is not in the artifact yet (not a regression) — `make bench-json` will record it", name))
	}
	for _, r := range results {
		b, ok := base[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if float64(r.Iterations)*b.NsPerOp < minWindowNs {
			continue // too short to measure; staleness was still checked
		}
		if limit := b.NsPerOp * (1 + maxRegress); r.NsPerOp > limit {
			errs = append(errs, fmt.Errorf("regression: %s %.4g ns/op vs baseline %.4g ns/op (limit %.4g, +%.0f%%)",
				r.Name, r.NsPerOp, b.NsPerOp, limit, 100*(r.NsPerOp/b.NsPerOp-1)))
		}
		// Custom metrics whose unit ends in "/sec" are throughput figures
		// (runs/sec, events/sec, ...): higher is better, so the gate flips —
		// fail when the fresh rate falls more than maxRegress below the
		// baseline. Other custom metrics stay informational.
		for unit, bv := range b.Metrics {
			if !strings.HasSuffix(unit, "/sec") || bv <= 0 {
				continue
			}
			rv, ok := r.Metrics[unit]
			if !ok {
				continue
			}
			if floor := bv * (1 - maxRegress); rv < floor {
				errs = append(errs, fmt.Errorf("throughput regression: %s %.4g %s vs baseline %.4g %s (floor %.4g, -%.0f%%)",
					r.Name, rv, unit, bv, unit, floor, 100*(1-rv/bv)))
			}
		}
	}
	return errs, notes
}

// runCheck loads the baseline, parses stdin and reports violations.
func runCheck(in io.Reader, errOut io.Writer, baselinePath string, maxRegress, minWindowNs float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var baseline Document
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("decoding baseline %s: %w", baselinePath, err)
	}
	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}
	errs, notes := check(results, baseline, maxRegress, minWindowNs)
	for _, n := range notes {
		fmt.Fprintf(errOut, "benchjson: %s\n", n)
	}
	for _, e := range errs {
		fmt.Fprintf(errOut, "benchjson: %v\n", e)
	}
	if len(errs) > 0 {
		return fmt.Errorf("%d check(s) failed against %s", len(errs), baselinePath)
	}
	fmt.Fprintf(errOut, "benchjson: %d benchmarks within %.0f%% of %s\n",
		len(results), 100*maxRegress, baselinePath)
	return nil
}

func main() {
	checkPath := flag.String("check", "", "baseline JSON artifact to compare stdin against instead of emitting JSON")
	maxRegress := flag.Float64("max-regress", 0.30, "with -check, maximum tolerated ns/op regression (0.30 = 30%)")
	minWindow := flag.Float64("min-window-ns", 100_000, "with -check, skip the regression verdict for runs measured over a shorter window than this")
	flag.Parse()
	var err error
	if *checkPath != "" {
		err = runCheck(os.Stdin, os.Stderr, *checkPath, *maxRegress, *minWindow)
	} else {
		err = run(os.Stdin, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
