// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so benchmark trajectories
// (scheduler event loop, virtid lookup contention) can be tracked from
// one artifact — BENCH_sched.json, written by `make bench-json` — from
// this PR onward instead of being scraped out of CI logs.
//
// Standard metrics (ns/op, B/op, allocs/op) become typed fields; any
// custom testing.B ReportMetric units (events, rank-visits, ...) land in
// a sorted "metrics" map. Lines that are not benchmark results (goos,
// pkg, PASS, ...) are ignored, so the tool can be fed the raw output of
// `go test -bench ... ./...` across multiple packages.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... | go run ./cmd/benchjson > BENCH_sched.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line, decoded.
type Result struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped (BenchmarkVirtidLookupSharded/goroutines=16).
	Name string `json:"name"`
	// Iterations is the b.N the reported per-op figures were averaged
	// over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall-clock cost per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem was on.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom ReportMetric values (events, rank-visits, ...)
	// keyed by their unit. encoding/json marshals map keys sorted, so the
	// artifact is deterministic.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the whole artifact.
type Document struct {
	Benchmarks []Result `json:"benchmarks"`
}

// suffixRe matches the -GOMAXPROCS suffix Go appends to benchmark names.
var suffixRe = regexp.MustCompile(`-\d+$`)

// parseLine decodes one `go test -bench` output line; ok is false for
// non-benchmark lines. The format is:
//
//	BenchmarkName-P  N  <value> <unit>  [<value> <unit> ...]
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       suffixRe.ReplaceAllString(fields[0], ""),
		Iterations: iters,
	}
	sawNsPerOp := false
	// The remaining fields are (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			sawNsPerOp = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, sawNsPerOp
}

// run converts bench output from in to a JSON document on out.
func run(in io.Reader, out io.Writer) error {
	doc := Document{Benchmarks: []Result{}}
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		if r, ok := parseLine(scanner.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("reading bench output: %w", err)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
