package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: mana/internal/coordinator
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScheduler512Ranks 	     300	    751778 ns/op	      2044 events	      2044 rank-visits	  207624 B/op	    1054 allocs/op
PASS
ok  	mana/internal/coordinator	36.024s
pkg: mana/internal/virtid
BenchmarkVirtidLookupMutex/goroutines=16-1         	11432370	        56.66 ns/op	       0 B/op	       0 allocs/op
BenchmarkVirtidLookupSharded/goroutines=16-1       	73221879	         7.699 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem-8	100	50.0 ns/op
PASS
`

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkVirtidLookupSharded/goroutines=16-1   73221879   7.699 ns/op   0 B/op   0 allocs/op")
	if !ok {
		t.Fatal("parseLine rejected a valid benchmark line")
	}
	if r.Name != "BenchmarkVirtidLookupSharded/goroutines=16" {
		t.Errorf("name = %q; the -GOMAXPROCS suffix must be stripped", r.Name)
	}
	if r.Iterations != 73221879 || r.NsPerOp != 7.699 {
		t.Errorf("iterations/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 0 || r.AllocsPerOp == nil || *r.AllocsPerOp != 0 {
		t.Errorf("benchmem fields not decoded: %+v", r)
	}

	for _, junk := range []string{
		"goos: linux",
		"PASS",
		"ok  	mana/internal/virtid	3.912s",
		"BenchmarkBroken notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseLine(junk); ok {
			t.Errorf("parseLine accepted non-benchmark line %q", junk)
		}
	}
}

func TestRunProducesDeterministicJSON(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sampleBenchOutput), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var doc Document
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("decoded %d benchmarks, want 4", len(doc.Benchmarks))
	}
	sched := doc.Benchmarks[0]
	if sched.Name != "BenchmarkScheduler512Ranks" {
		t.Errorf("first benchmark = %q", sched.Name)
	}
	if sched.Metrics["events"] != 2044 || sched.Metrics["rank-visits"] != 2044 {
		t.Errorf("custom metrics not captured: %+v", sched.Metrics)
	}
	if sched.AllocsPerOp == nil || *sched.AllocsPerOp != 1054 {
		t.Errorf("allocs/op not captured: %+v", sched)
	}
	if noMem := doc.Benchmarks[3]; noMem.BytesPerOp != nil || noMem.AllocsPerOp != nil {
		t.Errorf("benchmark without -benchmem grew memory fields: %+v", noMem)
	}

	// Same input, same bytes: the artifact is diffable across runs.
	var again strings.Builder
	if err := run(strings.NewReader(sampleBenchOutput), &again); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if out.String() != again.String() {
		t.Error("benchjson output is not byte-identical for identical input")
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("no benchmarks here\n"), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), `"benchmarks": []`) {
		t.Errorf("empty input should yield an empty benchmark list, got %s", out.String())
	}
}

// baselineOf builds a Document from (name, ns/op) pairs.
func baselineOf(pairs map[string]float64) Document {
	doc := Document{}
	for name, ns := range pairs {
		doc.Benchmarks = append(doc.Benchmarks, Result{Name: name, Iterations: 1, NsPerOp: ns})
	}
	return doc
}

func resultsOf(pairs map[string]float64) []Result {
	var out []Result
	for name, ns := range pairs {
		out = append(out, Result{Name: name, Iterations: 1, NsPerOp: ns})
	}
	return out
}

func TestCheckPassesWithinThreshold(t *testing.T) {
	base := baselineOf(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 50})
	fresh := resultsOf(map[string]float64{"BenchmarkA": 120, "BenchmarkB": 40})
	if errs, _ := check(fresh, base, 0.30, 0); len(errs) != 0 {
		t.Errorf("check failed within threshold: %v", errs)
	}
}

func TestCheckFlagsRegression(t *testing.T) {
	base := baselineOf(map[string]float64{"BenchmarkA": 100})
	fresh := resultsOf(map[string]float64{"BenchmarkA": 131})
	errs, _ := check(fresh, base, 0.30, 0)
	if len(errs) != 1 {
		t.Fatalf("check returned %d errors, want 1 regression: %v", len(errs), errs)
	}
	if !strings.Contains(errs[0].Error(), "regression") {
		t.Errorf("error does not name the regression: %v", errs[0])
	}
}

// TestCheckNameSetDrift pins the asymmetry in how the name sets are
// compared: a baseline entry that did not run is an error (the artifact
// is stale), while a fresh benchmark missing from the artifact is only
// a note — a newly added benchmark is not a regression.
func TestCheckNameSetDrift(t *testing.T) {
	base := baselineOf(map[string]float64{"BenchmarkGone": 100, "BenchmarkKept": 10})
	fresh := resultsOf(map[string]float64{"BenchmarkKept": 10, "BenchmarkNew": 5})
	errs, notes := check(fresh, base, 0.30, 0)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "BenchmarkGone") {
		t.Fatalf("check errors = %v, want exactly the stale BenchmarkGone entry", errs)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "BenchmarkNew") || !strings.Contains(notes[0], "not a regression") {
		t.Fatalf("check notes = %v, want BenchmarkNew reported as new, not a regression", notes)
	}
}

// TestCheckSkipsTooShortMeasurements pins the measurement-window rule: a
// one-iteration run of a nanosecond-scale benchmark measures harness
// overhead, not the benchmark, so no regression verdict is possible —
// while a macro benchmark whose single iteration already spans the window
// is still gated, and staleness applies to everything regardless.
func TestCheckSkipsTooShortMeasurements(t *testing.T) {
	base := baselineOf(map[string]float64{"BenchmarkNano": 10, "BenchmarkMacro": 1e6})
	fresh := []Result{
		{Name: "BenchmarkNano", Iterations: 1, NsPerOp: 9000}, // overhead-dominated
		{Name: "BenchmarkMacro", Iterations: 1, NsPerOp: 5e6}, // real 5x regression
	}
	errs, _ := check(fresh, base, 0.30, 100_000)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "BenchmarkMacro") {
		t.Fatalf("check = %v, want exactly the macro regression", errs)
	}
	// With enough iterations the nano benchmark's window is meaningful
	// again and its regression is flagged.
	fresh[0].Iterations = 1_000_000
	errs, _ = check(fresh, base, 0.30, 100_000)
	if len(errs) != 2 {
		t.Fatalf("check = %v, want both regressions once the window is sufficient", errs)
	}
}

func TestRunCheckAgainstFile(t *testing.T) {
	dir := t.TempDir()
	baseline := dir + "/baseline.json"
	var buf strings.Builder
	if err := run(strings.NewReader(sampleBenchOutput), &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := os.WriteFile(baseline, []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var diag strings.Builder
	// Identical output vs its own artifact: clean pass.
	if err := runCheck(strings.NewReader(sampleBenchOutput), &diag, baseline, 0.30, 0); err != nil {
		t.Errorf("runCheck of identical results failed: %v\n%s", err, diag.String())
	}
	// A 10x slowdown of one benchmark must fail.
	slowed := strings.Replace(sampleBenchOutput, "751778 ns/op", "7517780 ns/op", 1)
	diag.Reset()
	if err := runCheck(strings.NewReader(slowed), &diag, baseline, 0.30, 0); err == nil {
		t.Error("runCheck accepted a 10x regression")
	}
	// Empty input is always an error: the benchmarks did not run.
	if err := runCheck(strings.NewReader("PASS\n"), &diag, baseline, 0.30, 0); err == nil {
		t.Error("runCheck accepted empty bench output")
	}
	// A benchmark the artifact has never seen passes with a note.
	grown := sampleBenchOutput + "BenchmarkBrandNew-1	100	42.0 ns/op\n"
	diag.Reset()
	if err := runCheck(strings.NewReader(grown), &diag, baseline, 0.30, 0); err != nil {
		t.Errorf("runCheck failed on a new benchmark: %v\n%s", err, diag.String())
	}
	if !strings.Contains(diag.String(), "BenchmarkBrandNew") || !strings.Contains(diag.String(), "not a regression") {
		t.Errorf("new benchmark not surfaced informationally:\n%s", diag.String())
	}
}

// throughputResult builds one benchmark entry carrying a runs/sec
// metric alongside its ns/op.
func throughputResult(name string, ns, runsPerSec float64) Result {
	return Result{Name: name, Iterations: 1, NsPerOp: ns,
		Metrics: map[string]float64{"runs/sec": runsPerSec}}
}

// TestCheckThroughputGatesHigherIsBetter pins the "/sec" rule: a
// throughput metric regresses by falling, not rising, so a fresh rate
// below (1 - maxRegress) of the baseline fails while a faster one — or
// an equally large ns/op-style rise — passes.
func TestCheckThroughputGatesHigherIsBetter(t *testing.T) {
	base := Document{Benchmarks: []Result{throughputResult("BenchmarkFleet", 100, 50)}}

	if errs, _ := check([]Result{throughputResult("BenchmarkFleet", 100, 34)}, base, 0.30, 0); len(errs) != 1 {
		t.Fatalf("check returned %d errors for a 32%% throughput drop, want 1: %v", len(errs), errs)
	} else if !strings.Contains(errs[0].Error(), "throughput regression") || !strings.Contains(errs[0].Error(), "runs/sec") {
		t.Errorf("error does not name the throughput regression: %v", errs[0])
	}

	// Faster is never a regression, and a dip within tolerance passes.
	for _, rate := range []float64{36, 50, 500} {
		if errs, _ := check([]Result{throughputResult("BenchmarkFleet", 100, rate)}, base, 0.30, 0); len(errs) != 0 {
			t.Errorf("check flagged %v runs/sec against baseline 50: %v", rate, errs)
		}
	}
}

// TestCheckThroughputIgnoresNonRateMetrics keeps other custom metrics
// informational: only "/sec" units gate.
func TestCheckThroughputIgnoresNonRateMetrics(t *testing.T) {
	mk := func(events float64) Result {
		return Result{Name: "BenchmarkSched", Iterations: 1, NsPerOp: 100,
			Metrics: map[string]float64{"events": events}}
	}
	base := Document{Benchmarks: []Result{mk(1000)}}
	if errs, _ := check([]Result{mk(10)}, base, 0.30, 0); len(errs) != 0 {
		t.Errorf("check gated a non-rate custom metric: %v", errs)
	}
}

// TestCheckThroughputRespectsMinWindow ties the rate gate to the same
// measurement-window rule as ns/op: a too-short run gives no verdict.
func TestCheckThroughputRespectsMinWindow(t *testing.T) {
	base := Document{Benchmarks: []Result{throughputResult("BenchmarkFleet", 100, 50)}}
	fresh := []Result{throughputResult("BenchmarkFleet", 100, 1)}
	if errs, _ := check(fresh, base, 0.30, 1_000_000); len(errs) != 0 {
		t.Errorf("check gated throughput measured over a too-short window: %v", errs)
	}
}
