package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: mana/internal/coordinator
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScheduler512Ranks 	     300	    751778 ns/op	      2044 events	      2044 rank-visits	  207624 B/op	    1054 allocs/op
PASS
ok  	mana/internal/coordinator	36.024s
pkg: mana/internal/virtid
BenchmarkVirtidLookupMutex/goroutines=16-1         	11432370	        56.66 ns/op	       0 B/op	       0 allocs/op
BenchmarkVirtidLookupSharded/goroutines=16-1       	73221879	         7.699 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem-8	100	50.0 ns/op
PASS
`

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkVirtidLookupSharded/goroutines=16-1   73221879   7.699 ns/op   0 B/op   0 allocs/op")
	if !ok {
		t.Fatal("parseLine rejected a valid benchmark line")
	}
	if r.Name != "BenchmarkVirtidLookupSharded/goroutines=16" {
		t.Errorf("name = %q; the -GOMAXPROCS suffix must be stripped", r.Name)
	}
	if r.Iterations != 73221879 || r.NsPerOp != 7.699 {
		t.Errorf("iterations/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 0 || r.AllocsPerOp == nil || *r.AllocsPerOp != 0 {
		t.Errorf("benchmem fields not decoded: %+v", r)
	}

	for _, junk := range []string{
		"goos: linux",
		"PASS",
		"ok  	mana/internal/virtid	3.912s",
		"BenchmarkBroken notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseLine(junk); ok {
			t.Errorf("parseLine accepted non-benchmark line %q", junk)
		}
	}
}

func TestRunProducesDeterministicJSON(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sampleBenchOutput), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var doc Document
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("decoded %d benchmarks, want 4", len(doc.Benchmarks))
	}
	sched := doc.Benchmarks[0]
	if sched.Name != "BenchmarkScheduler512Ranks" {
		t.Errorf("first benchmark = %q", sched.Name)
	}
	if sched.Metrics["events"] != 2044 || sched.Metrics["rank-visits"] != 2044 {
		t.Errorf("custom metrics not captured: %+v", sched.Metrics)
	}
	if sched.AllocsPerOp == nil || *sched.AllocsPerOp != 1054 {
		t.Errorf("allocs/op not captured: %+v", sched)
	}
	if noMem := doc.Benchmarks[3]; noMem.BytesPerOp != nil || noMem.AllocsPerOp != nil {
		t.Errorf("benchmark without -benchmem grew memory fields: %+v", noMem)
	}

	// Same input, same bytes: the artifact is diffable across runs.
	var again strings.Builder
	if err := run(strings.NewReader(sampleBenchOutput), &again); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if out.String() != again.String() {
		t.Error("benchjson output is not byte-identical for identical input")
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("no benchmarks here\n"), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), `"benchmarks": []`) {
		t.Errorf("empty input should yield an empty benchmark list, got %s", out.String())
	}
}
