# Local targets mirror .github/workflows/ci.yml step for step, so "it
# passes locally" and "it passes in CI" mean the same thing.

GO ?= go
# BENCHTIME feeds -benchtime for the bench-json artifact; CI overrides it
# to 1x so the benchmarks smoke-run on every push without burning minutes.
BENCHTIME ?= 1s
# BENCH_PATTERN/BENCH_PKGS select the benchmarks the BENCH_sched.json
# artifact records: scheduler scaling, virtid contention, checkpoint
# capture (full vs incremental image bytes), the collective drain
# planner (overlapping vs serialised collectives) and fleet throughput
# (complete simulations per second; its runs/sec metric gates
# higher-is-better in bench-check), the storage pipeline (checkpoint
# commit under each profile; max-write-ns records the staging win over
# the contended PFS) and the compression pay-off sweep (CPU charged vs
# bytes saved across per-byte costs).
BENCH_PATTERN ?= BenchmarkScheduler|BenchmarkVirtid|BenchmarkCheckpointCapture|BenchmarkSnapshotUpperHalf|BenchmarkOverlapDrain|BenchmarkFleetThroughput|BenchmarkRestartFallback|BenchmarkCheckpointCommit|BenchmarkCompressionPayoff
BENCH_PKGS ?= ./internal/coordinator ./internal/virtid ./internal/rank ./internal/memsim ./internal/fleet
# MAX_REGRESS is bench-check's tolerated ns/op regression vs the
# committed artifact (0.30 = 30%); CI loosens it because -benchtime=1x
# timings are noise — only staleness and order-of-magnitude regressions
# gate there.
MAX_REGRESS ?= 0.30

.PHONY: all build test race lint fmt bench bench-sched bench-virtid bench-fleet bench-json bench-check run smoke smoke-matrix smoke-sweep smoke-faults

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; \
	fi
	$(GO) run ./cmd/isolint

fmt:
	gofmt -w .

# bench runs every benchmark, including the scheduler-scaling set
# (BenchmarkScheduler{64,512,4096,65536}Ranks in internal/coordinator;
# the 65536-rank variants run serial and island-parallel).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-sched runs only the event-scheduler scaling benchmarks.
bench-sched:
	$(GO) test -bench='BenchmarkScheduler' -benchmem -run=^$$ ./internal/coordinator

# bench-fleet runs the multi-run engine benchmarks: complete simulations
# per second at pool widths 1/4/8, plus allocs/run warm vs cold.
bench-fleet:
	$(GO) test -bench='BenchmarkFleetThroughput' -benchmem -run=^$$ ./internal/fleet

# bench-virtid runs the handle-virtualisation contention benchmarks:
# MutexTable vs ShardedTable at 1/4/16 goroutines, plus request churn.
bench-virtid:
	$(GO) test -bench='BenchmarkVirtid' -benchmem -run=^$$ ./internal/virtid

# bench-json regenerates BENCH_sched.json, the machine-readable record of
# the scheduler, virtid and checkpoint-capture benchmarks (name, ns/op,
# allocs/op, events, image-bytes) that tracks the perf trajectory across
# PRs. The bench output goes through a temp file, not a pipe, so a
# benchmark failure fails the target instead of writing a silently
# truncated artifact.
bench-json:
	$(GO) test -bench='$(BENCH_PATTERN)' -benchmem \
		-benchtime=$(BENCHTIME) -run=^$$ $(BENCH_PKGS) > BENCH_sched.tmp
	$(GO) run ./cmd/benchjson < BENCH_sched.tmp > BENCH_sched.json
	rm -f BENCH_sched.tmp

# bench-check reruns the artifact benchmarks and fails if BENCH_sched.json
# is stale (benchmarks added/removed without `make bench-json`) or if any
# benchmark regressed more than MAX_REGRESS vs the committed numbers.
bench-check:
	$(GO) test -bench='$(BENCH_PATTERN)' -benchmem \
		-benchtime=$(BENCHTIME) -run=^$$ $(BENCH_PKGS) > BENCH_check.tmp
	$(GO) run ./cmd/benchjson -check BENCH_sched.json -max-regress $(MAX_REGRESS) < BENCH_check.tmp; \
		status=$$?; rm -f BENCH_check.tmp; exit $$status

run:
	$(GO) run ./cmd/manasim

# smoke mirrors CI's basic determinism check: the default failure/restart
# scenario executed twice and compared byte for byte.
smoke:
	$(GO) run ./cmd/manasim > /tmp/manasim-run1.txt
	$(GO) run ./cmd/manasim > /tmp/manasim-run2.txt
	cmp /tmp/manasim-run1.txt /tmp/manasim-run2.txt

# smoke-matrix mirrors CI's determinism matrix: every combination of
# handle-table implementation, image mode and library scenario spec runs
# twice at 512 ranks and must print byte-identical reports — and once
# more with the sharded parallel scheduler (-islands 8 -workers 4),
# which must reproduce the serial report byte for byte.
smoke-matrix:
	$(GO) build -o /tmp/manasim-matrix ./cmd/manasim
	@set -e; \
	for virtid in mutex sharded; do \
	  for inc in "" "-incremental"; do \
	    for spec in default overlap stencil master-worker bursty-alltoall pipeline; do \
	      echo "smoke-matrix: -virtid $$virtid $$inc -spec $$spec"; \
	      /tmp/manasim-matrix -virtid $$virtid $$inc -spec $$spec \
	        -ranks 512 -steps 5 -ckpt-at 200us -no-fail > /tmp/manasim-matrix1.txt; \
	      /tmp/manasim-matrix -virtid $$virtid $$inc -spec $$spec \
	        -ranks 512 -steps 5 -ckpt-at 200us -no-fail > /tmp/manasim-matrix2.txt; \
	      cmp /tmp/manasim-matrix1.txt /tmp/manasim-matrix2.txt; \
	      /tmp/manasim-matrix -virtid $$virtid $$inc -spec $$spec \
	        -ranks 512 -steps 5 -ckpt-at 200us -no-fail \
	        -islands 8 -workers 4 > /tmp/manasim-matrix3.txt; \
	      cmp /tmp/manasim-matrix1.txt /tmp/manasim-matrix3.txt; \
	    done; \
	  done; \
	done
	@set -e; \
	for st in direct staged staged-compressed; do \
	  inc=""; if [ $$st = staged-compressed ]; then inc="-incremental"; fi; \
	  echo "smoke-matrix: storage -storage $$st $$inc"; \
	  /tmp/manasim-matrix -storage $$st $$inc \
	    -ranks 512 -steps 5 -ckpt-at 200us -no-fail > /tmp/manasim-matrix1.txt; \
	  /tmp/manasim-matrix -storage $$st $$inc \
	    -ranks 512 -steps 5 -ckpt-at 200us -no-fail > /tmp/manasim-matrix2.txt; \
	  cmp /tmp/manasim-matrix1.txt /tmp/manasim-matrix2.txt; \
	  /tmp/manasim-matrix -storage $$st $$inc \
	    -ranks 512 -steps 5 -ckpt-at 200us -no-fail \
	    -islands 8 -workers 4 > /tmp/manasim-matrix3.txt; \
	  cmp /tmp/manasim-matrix1.txt /tmp/manasim-matrix3.txt; \
	done

# smoke-faults mirrors CI's fault-matrix job: every canned fault plan
# under cmd/manasim/testdata/faults/ — single and multi-failure, torn
# and corrupt images, restart-time double faults — runs twice and must
# print byte-identical output, in three modes: serial, the sharded
# parallel scheduler (-islands 8 -workers 4), and incremental images
# (-incremental -full-every 2). The parallel run must also reproduce
# the serial bytes exactly. The staging/ plans then run against the
# fast-staged storage document: a crash mid-drain must fall back to the
# newest durable generation and a torn drain must surface at restart,
# byte-identically serial and parallel.
smoke-faults:
	$(GO) build -o /tmp/manasim-faults ./cmd/manasim
	@set -e; \
	for plan in cmd/manasim/testdata/faults/*.json; do \
	  echo "smoke-faults: $$plan"; \
	  /tmp/manasim-faults -faults $$plan > /tmp/manasim-faults1.txt; \
	  /tmp/manasim-faults -faults $$plan > /tmp/manasim-faults2.txt; \
	  cmp /tmp/manasim-faults1.txt /tmp/manasim-faults2.txt; \
	  /tmp/manasim-faults -faults $$plan -islands 8 -workers 4 > /tmp/manasim-faults3.txt; \
	  cmp /tmp/manasim-faults1.txt /tmp/manasim-faults3.txt; \
	  /tmp/manasim-faults -faults $$plan -incremental -full-every 2 > /tmp/manasim-faults4.txt; \
	  /tmp/manasim-faults -faults $$plan -incremental -full-every 2 > /tmp/manasim-faults5.txt; \
	  cmp /tmp/manasim-faults4.txt /tmp/manasim-faults5.txt; \
	done
	@set -e; \
	for plan in cmd/manasim/testdata/faults/staging/*.json; do \
	  echo "smoke-faults: $$plan (staged)"; \
	  /tmp/manasim-faults -incremental -faults $$plan \
	    -storage cmd/manasim/testdata/storage/fast-staged.json > /tmp/manasim-faults1.txt; \
	  /tmp/manasim-faults -incremental -faults $$plan \
	    -storage cmd/manasim/testdata/storage/fast-staged.json > /tmp/manasim-faults2.txt; \
	  cmp /tmp/manasim-faults1.txt /tmp/manasim-faults2.txt; \
	  /tmp/manasim-faults -incremental -faults $$plan \
	    -storage cmd/manasim/testdata/storage/fast-staged.json \
	    -islands 8 -workers 4 > /tmp/manasim-faults3.txt; \
	  cmp /tmp/manasim-faults1.txt /tmp/manasim-faults3.txt; \
	done

# smoke-sweep mirrors CI's fleet determinism check: a small -sweep grid
# run twice, with the aggregates — cell hashes, byte counts, headline
# metrics, compile counts — byte-identical once the wall-clock fields
# are stripped. The cell hashes are also what ties each concurrent run
# to its standalone counterpart (cmd/manasim's sweep tests pin that).
smoke-sweep:
	$(GO) build -o /tmp/manasim-sweep ./cmd/manasim
	/tmp/manasim-sweep -sweep -steps 8 -sweep-specs default,overlap \
	  -sweep-ranks 4,8 -sweep-ckpt 1ms -sweep-virtid sharded,mutex \
	  -sweep-incremental false,true -sweep-workers 4 > /tmp/manasim-sweep1.json
	/tmp/manasim-sweep -sweep -steps 8 -sweep-specs default,overlap \
	  -sweep-ranks 4,8 -sweep-ckpt 1ms -sweep-virtid sharded,mutex \
	  -sweep-incremental false,true -sweep-workers 1 > /tmp/manasim-sweep2.json
	python3 -c 'import json,sys; \
	strip=lambda d: {"cells":[{k:v for k,v in c.items() if k!="wall_ms"} for c in d["cells"]], \
	"totals":{k:v for k,v in d["totals"].items() if k not in ("wall_ms","runs_per_sec","pool_workers")}}; \
	a=strip(json.load(open("/tmp/manasim-sweep1.json"))); b=strip(json.load(open("/tmp/manasim-sweep2.json"))); \
	sys.exit(0 if a==b else sys.stderr.write("sweep aggregates diverge across pool widths\n") or 1)'
