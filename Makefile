# Local targets mirror .github/workflows/ci.yml step for step, so "it
# passes locally" and "it passes in CI" mean the same thing.

GO ?= go

.PHONY: all build test race lint fmt bench run

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

run:
	$(GO) run ./cmd/manasim
