package vtime

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestDurationConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds() = %v, want 1.5", got)
	}
	if got := (3 * Millisecond).Microseconds(); got != 3000 {
		t.Errorf("Microseconds() = %v, want 3000", got)
	}
	if got := DurationOf(0.25); got != 250*Millisecond {
		t.Errorf("DurationOf(0.25) = %v, want 250ms", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(5 * Second)
	if t1.Sub(t0) != 5*Second {
		t.Errorf("Sub = %v, want 5s", t1.Sub(t0))
	}
	if Max(t0, t1) != t1 {
		t.Errorf("Max returned earlier time")
	}
	if MaxDuration(Second, Minute) != Minute {
		t.Errorf("MaxDuration wrong")
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(0)
	if c.Now() != 0 {
		t.Fatalf("new clock not at 0")
	}
	c.Advance(10 * Microsecond)
	if c.Now() != Time(10*Microsecond) {
		t.Errorf("Advance: now = %v", c.Now())
	}
	// Negative durations must be ignored.
	c.Advance(-Second)
	if c.Now() != Time(10*Microsecond) {
		t.Errorf("negative Advance moved clock to %v", c.Now())
	}
}

func TestClockAdvanceToNeverMovesBackwards(t *testing.T) {
	c := NewClock(100)
	c.AdvanceTo(50)
	if c.Now() != 100 {
		t.Errorf("AdvanceTo moved clock backwards to %v", c.Now())
	}
	c.AdvanceTo(200)
	if c.Now() != 200 {
		t.Errorf("AdvanceTo did not advance, now=%v", c.Now())
	}
}

func TestClockSet(t *testing.T) {
	c := NewClock(500)
	c.Set(5)
	if c.Now() != 5 {
		t.Errorf("Set failed, now=%v", c.Now())
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock(0)
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Advance(Nanosecond)
			}
		}()
	}
	wg.Wait()
	if c.Now() != Time(workers*perWorker) {
		t.Errorf("concurrent advance lost updates: now=%v want %v", c.Now(), workers*perWorker)
	}
}

func TestStopwatch(t *testing.T) {
	c := NewClock(0)
	sw := StartStopwatch(c)
	c.Advance(3 * Second)
	if sw.Elapsed() != 3*Second {
		t.Errorf("stopwatch elapsed = %v, want 3s", sw.Elapsed())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at iteration %d", i)
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) did not cover range, saw %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		j := r.Jitter(0.05)
		if j < 0.95 || j > 1.05 {
			t.Fatalf("jitter out of bounds: %v", j)
		}
	}
}

func TestRNGStraggler(t *testing.T) {
	r := NewRNG(13)
	slow := 0
	for i := 0; i < 10000; i++ {
		f := r.Straggler(0.1, 4)
		if f < 1 || f > 4 {
			t.Fatalf("straggler factor out of bounds: %v", f)
		}
		if f > 1 {
			slow++
		}
	}
	if slow == 0 || slow > 2000 {
		t.Errorf("straggler probability implausible: %d/10000 slow", slow)
	}
}

// Property: AdvanceTo is monotone — applying any sequence of AdvanceTo calls
// never decreases the clock.
func TestPropertyClockMonotone(t *testing.T) {
	f := func(targets []int64) bool {
		c := NewClock(0)
		prev := c.Now()
		for _, raw := range targets {
			c.AdvanceTo(Time(raw))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Advance accumulates exactly the sum of the non-negative deltas.
func TestPropertyAdvanceAccumulates(t *testing.T) {
	f := func(deltas []uint16) bool {
		c := NewClock(0)
		var sum int64
		for _, d := range deltas {
			c.Advance(Duration(d))
			sum += int64(d)
		}
		return c.Now() == Time(sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStampObserve(t *testing.T) {
	c := NewClock(100)
	s := StampFrom(3, c)
	if s.Rank != 3 || s.When != 100 {
		t.Fatalf("StampFrom = %+v, want rank 3 at 100", s)
	}
	// Observing a later stamp advances; an earlier one never rewinds.
	if got := c.Observe(Stamp{Rank: 1, When: 500}); got != 500 {
		t.Errorf("Observe(500) = %v, want 500", got)
	}
	if got := c.Observe(Stamp{Rank: 1, When: 50}); got != 500 {
		t.Errorf("Observe(50) = %v, want 500 (piggyback must not rewind)", got)
	}
}

func TestMaxStamp(t *testing.T) {
	stamps := []Stamp{{Rank: 0, When: 10}, {Rank: 2, When: 300}, {Rank: 1, When: 200}}
	if got := MaxStamp(stamps); got.Rank != 2 || got.When != 300 {
		t.Errorf("MaxStamp = %+v, want rank 2 at 300", got)
	}
	if got := MaxStamp(nil); got != (Stamp{}) {
		t.Errorf("MaxStamp(nil) = %+v, want zero", got)
	}
}
