package vtime

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventQueuePopsInTimeOrder(t *testing.T) {
	q := NewEventQueue[string]()
	q.Push(30, "c")
	q.Push(10, "a")
	q.Push(20, "b")
	var got []string
	for {
		_, v, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("pop order = %v, want [a b c]", got)
	}
}

func TestEventQueueFIFOTieBreak(t *testing.T) {
	q := NewEventQueue[int]()
	// All at the same time: must pop in push order, not heap order.
	for i := 0; i < 100; i++ {
		q.Push(5, i)
	}
	for i := 0; i < 100; i++ {
		tm, v, ok := q.Pop()
		if !ok || tm != 5 || v != i {
			t.Fatalf("pop %d = (%v, %d, %v), want (5, %d, true)", i, tm, v, ok, i)
		}
	}
}

func TestEventQueueMixedTimesStableWithinTime(t *testing.T) {
	q := NewEventQueue[int]()
	// Interleave pushes at two times; within each time, FIFO must hold.
	for i := 0; i < 50; i++ {
		q.Push(Time(i%2), i)
	}
	var at0, at1 []int
	for {
		tm, v, ok := q.Pop()
		if !ok {
			break
		}
		if tm == 0 {
			if len(at1) > 0 {
				t.Fatal("time-1 event popped before all time-0 events")
			}
			at0 = append(at0, v)
		} else {
			at1 = append(at1, v)
		}
	}
	if !sort.IntsAreSorted(at0) || !sort.IntsAreSorted(at1) {
		t.Errorf("FIFO violated within a time bucket: %v / %v", at0, at1)
	}
}

func TestEventQueuePeekAndLen(t *testing.T) {
	q := NewEventQueue[int]()
	if _, ok := q.PeekTime(); ok {
		t.Error("PeekTime on empty queue reported an event")
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue reported an event")
	}
	q.Push(42, 1)
	q.Push(7, 2)
	if tm, ok := q.PeekTime(); !ok || tm != 7 {
		t.Errorf("PeekTime = (%v, %v), want (7, true)", tm, ok)
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
	q.Pop()
	if q.Len() != 1 {
		t.Errorf("Len after pop = %d, want 1", q.Len())
	}
}

func TestEventQueueClearKeepsSeqMonotone(t *testing.T) {
	q := NewEventQueue[string]()
	q.Push(10, "old")
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len after Clear = %d, want 0", q.Len())
	}
	// Events pushed after Clear must still tie-break after a fresh push at
	// the same time in a later epoch — i.e. seq keeps increasing.
	q.Push(10, "first-after-clear")
	q.Push(10, "second-after-clear")
	_, v1, _ := q.Pop()
	_, v2, _ := q.Pop()
	if v1 != "first-after-clear" || v2 != "second-after-clear" {
		t.Errorf("post-Clear order = %q, %q", v1, v2)
	}
}

// Property: for any set of (time, id) pushes, popping yields times in
// non-decreasing order and, within equal times, ids in push order.
func TestPropertyEventQueueDeterministicOrder(t *testing.T) {
	f := func(times []uint8) bool {
		q := NewEventQueue[int]()
		for i, tm := range times {
			q.Push(Time(tm), i)
		}
		lastTime := Time(-1)
		lastSeqAtTime := -1
		for {
			tm, id, ok := q.Pop()
			if !ok {
				break
			}
			if tm < lastTime {
				return false
			}
			if tm == lastTime && id < lastSeqAtTime {
				return false
			}
			if tm != lastTime {
				lastTime = tm
				lastSeqAtTime = -1
			}
			if Time(times[id]) != tm {
				return false
			}
			lastSeqAtTime = id
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
