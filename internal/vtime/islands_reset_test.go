package vtime

import "testing"

// TestIslandQueuesReset pins the recycling contract fleet mode relies
// on: a Reset queue set behaves exactly like a freshly constructed one —
// same lane count, restarted sequence space, no events surviving — while
// keeping the grown storage.
func TestIslandQueuesReset(t *testing.T) {
	iq := NewIslandQueues[int](3, 4)
	for i := 0; i < 50; i++ {
		iq.Push(i%3, Time(100-i), i)
	}
	iq.Reset(3, 4)
	if n := iq.Len(); n != 0 {
		t.Fatalf("Reset queue still holds %d events", n)
	}

	// A fresh queue set and the reset one must pop identical (value,
	// ordering) sequences for the same pushes: Reset restarts the shared
	// seq counter, so FIFO tie-breaks replay exactly.
	fresh := NewIslandQueues[int](3, 4)
	for i := 0; i < 20; i++ {
		lane, at, v := i%3, Time(i%5), i
		iq.Push(lane, at, v)
		fresh.Push(lane, at, v)
	}
	for fresh.Len() > 0 {
		wl, wt, wv, wok := fresh.PopMin()
		gl, gt, gv, gok := iq.PopMin()
		if wl != gl || wv != gv || wt != gt || wok != gok {
			t.Fatalf("reset queues diverge from fresh: got (%d,%d,%d,%v), want (%d,%d,%d,%v)",
				gl, gt, gv, gok, wl, wt, wv, wok)
		}
	}
	if _, _, _, ok := iq.PopMin(); ok {
		t.Fatal("reset queues hold more events than fresh ones")
	}
}

// TestIslandQueuesResetResize covers lane-count changes across runs:
// shrinking drops (and clears) surplus lanes, growing allocates them.
func TestIslandQueuesResetResize(t *testing.T) {
	iq := NewIslandQueues[int](5, 2)
	for i := 0; i < 10; i++ {
		iq.Push(i%5, Time(i), i)
	}
	iq.Reset(2, 2)
	iq.Push(0, 3, 30)
	iq.Push(1, 1, 10)
	if _, at, v, ok := iq.PopMin(); !ok || v != 10 || at != 1 {
		t.Fatalf("after shrink: PopMin = (%d,%d,%v), want (1,10,true)", at, v, ok)
	}

	iq.Reset(4, 2)
	if n := iq.Len(); n != 0 {
		t.Fatalf("grown queue holds %d stale events", n)
	}
	iq.Push(3, 7, 70)
	if _, _, v, ok := iq.PopMin(); !ok || v != 70 {
		t.Fatalf("after grow: PopMin = (_,_,%d,%v), want (70,true)", v, ok)
	}
}

// TestIslandQueuesResetWindowSeq checks the window-mode sequence blocks
// restart too: a reset queue set in a window must order worker pushes
// identically to a fresh one.
func TestIslandQueuesResetWindowSeq(t *testing.T) {
	run := func(iq *IslandQueues[int]) []int {
		iq.BeginWindow()
		iq.WorkerPush(1, 5, 100)
		iq.WorkerPush(0, 5, 200)
		iq.WorkerPush(1, 5, 101)
		iq.EndWindow()
		var out []int
		for {
			_, _, v, ok := iq.PopMin()
			if !ok {
				return out
			}
			out = append(out, v)
		}
	}
	iq := NewIslandQueues[int](2, 4)
	for i := 0; i < 9; i++ {
		iq.Push(i%2, Time(i), i)
	}
	iq.Reset(2, 4)
	got := run(iq)
	want := run(NewIslandQueues[int](2, 4))
	if len(got) != len(want) {
		t.Fatalf("window pops differ in length: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window order diverges at %d: got %v, want %v", i, got, want)
		}
	}
}
