package vtime

// IslandQueues is the sharded event queue of the island scheduler: K
// lanes, each an EventQueue owned by one island, plus a merge layer that
// preserves the single-queue (time, seq) FIFO total order across all of
// them.
//
// In serial (merge) mode one goroutine calls Push and PopMin: Push
// assigns sequence numbers from one shared counter exactly as a single
// EventQueue would, and PopMin pops the globally earliest (time, seq)
// head across lanes — so a K-lane IslandQueues driven this way pops in
// the order a single EventQueue fed the same stream would, whatever the
// partition (the property the island determinism tests pin).
//
// In window (parallel) mode the conservative scheduler lets one worker
// goroutine drain each lane concurrently up to a lookahead horizon. The
// worker pops its own lane with Lane(i).Pop and pushes island-local
// follow-up events with WorkerPush, which draws from a per-lane sequence
// block reserved by BeginWindow: block seqs are larger than every seq
// assigned before the window (so follow-ups order after pre-existing
// events at equal times, matching push-order FIFO) and disjoint across
// lanes (so no coordination — and no data race — between workers).
// EndWindow advances the shared counter past every block. Events pushed
// from different lanes during the same window tie-break by lane index at
// equal times; the scheduler only runs windows over phases whose
// cross-lane equal-time effects are commutative, so this deterministic
// order is as good as the serial one.
type IslandQueues[T any] struct {
	lanes []*EventQueue[T]
	seq   uint64
	// window state: base is the shared counter at BeginWindow; wseq[i]
	// counts lane i's window pushes. Each lane's block starts at
	// base + (i+1)<<windowShift, so blocks are disjoint and all larger
	// than any pre-window seq.
	base     uint64
	wseq     []uint64
	inWindow bool
}

// windowShift sizes a window's per-lane seq block: 2^32 pushes per lane
// per window, far beyond any real window's event count.
const windowShift = 32

// NewIslandQueues returns K empty lanes with per-lane heap storage
// preallocated for hint events each.
func NewIslandQueues[T any](k, hint int) *IslandQueues[T] {
	if k < 1 {
		panic("vtime: IslandQueues needs at least one lane")
	}
	lanes := make([]*EventQueue[T], k)
	for i := range lanes {
		lanes[i] = NewEventQueueSized[T](hint)
	}
	return &IslandQueues[T]{lanes: lanes, wseq: make([]uint64, k)}
}

// Lanes returns the number of lanes.
func (iq *IslandQueues[T]) Lanes() int { return len(iq.lanes) }

// Lane returns one lane for direct draining by its worker. Only the
// owning worker may Pop it, and only between BeginWindow and EndWindow
// or from the single merge-mode goroutine.
func (iq *IslandQueues[T]) Lane(i int) *EventQueue[T] { return iq.lanes[i] }

// Len returns the total number of scheduled events across all lanes.
func (iq *IslandQueues[T]) Len() int {
	n := 0
	for _, q := range iq.lanes {
		n += q.Len()
	}
	return n
}

// Push schedules v at time t on the given lane, drawing from the shared
// sequence counter. Single-goroutine (merge mode or barrier) only.
func (iq *IslandQueues[T]) Push(lane int, t Time, v T) {
	if iq.inWindow {
		panic("vtime: IslandQueues.Push during a window — use WorkerPush")
	}
	iq.seq++
	iq.lanes[lane].PushAt(t, iq.seq, v)
}

// PopMin removes and returns the globally earliest event by (time, seq)
// across all lanes, together with the lane it came from. Single-goroutine
// only.
func (iq *IslandQueues[T]) PopMin() (lane int, t Time, v T, ok bool) {
	lane = iq.minLane()
	if lane < 0 {
		var zero T
		return 0, 0, zero, false
	}
	t, v, _ = iq.lanes[lane].Pop()
	return lane, t, v, true
}

// PeekMin returns the lane and time of the globally earliest event
// without removing it; ok is false when every lane is empty.
func (iq *IslandQueues[T]) PeekMin() (lane int, t Time, ok bool) {
	lane = iq.minLane()
	if lane < 0 {
		return 0, 0, false
	}
	t, _, _ = iq.lanes[lane].PeekKey()
	return lane, t, true
}

// minLane returns the lane holding the globally smallest (time, seq)
// head, or -1 if all lanes are empty. Seqs are unique across lanes (one
// shared counter; disjoint window blocks), so the order is total.
func (iq *IslandQueues[T]) minLane() int {
	best := -1
	var bestT Time
	var bestS uint64
	for i, q := range iq.lanes {
		t, s, ok := q.PeekKey()
		if !ok {
			continue
		}
		if best < 0 || t < bestT || (t == bestT && s < bestS) {
			best, bestT, bestS = i, t, s
		}
	}
	return best
}

// BeginWindow reserves disjoint per-lane sequence blocks so workers can
// push onto their own lanes without coordination. Must be balanced by
// EndWindow before any merge-mode Push.
func (iq *IslandQueues[T]) BeginWindow() {
	if iq.inWindow {
		panic("vtime: BeginWindow while a window is already open")
	}
	iq.base = iq.seq
	clear(iq.wseq)
	iq.inWindow = true
}

// WorkerPush schedules v at time t on the given lane during a window.
// Safe for concurrent use across DISTINCT lanes: each lane's seq block
// and heap are touched only by its owning worker.
func (iq *IslandQueues[T]) WorkerPush(lane int, t Time, v T) {
	iq.wseq[lane]++
	seq := iq.base + uint64(lane+1)<<windowShift + iq.wseq[lane]
	iq.lanes[lane].PushAt(t, seq, v)
}

// EndWindow closes the window, advancing the shared counter past every
// reserved block so later merge-mode pushes order after all window
// pushes.
func (iq *IslandQueues[T]) EndWindow() {
	if !iq.inWindow {
		panic("vtime: EndWindow without BeginWindow")
	}
	iq.seq = iq.base + uint64(len(iq.lanes)+1)<<windowShift
	iq.inWindow = false
}

// Clear discards every scheduled event on every lane, keeping each
// lane's heap storage and the shared counter (post-Clear pushes still
// order after everything pushed before, exactly like EventQueue.Clear).
func (iq *IslandQueues[T]) Clear() {
	for _, q := range iq.lanes {
		q.Clear()
	}
}

// Reset reshapes the queue set to k empty lanes with the shared counter
// back at zero, reusing as much existing heap storage as possible: a
// recycled IslandQueues behaves exactly like NewIslandQueues(k, hint)
// while keeping the grown lane capacities of its previous life. Unlike
// Clear, the sequence space restarts — callers must not mix pre- and
// post-Reset pushes in one ordering domain; Reset is for handing the
// storage to a fresh, unrelated run.
func (iq *IslandQueues[T]) Reset(k, hint int) {
	if k < 1 {
		panic("vtime: IslandQueues needs at least one lane")
	}
	if iq.inWindow {
		panic("vtime: Reset during a window")
	}
	for i, q := range iq.lanes {
		if i >= k {
			break
		}
		q.Clear()
		q.seq = 0
	}
	for len(iq.lanes) < k {
		iq.lanes = append(iq.lanes, NewEventQueueSized[T](hint))
	}
	if len(iq.lanes) > k {
		clear(iq.lanes[k:]) // release dropped lanes for GC
		iq.lanes = iq.lanes[:k]
	}
	if cap(iq.wseq) < k {
		iq.wseq = make([]uint64, k)
	} else {
		iq.wseq = iq.wseq[:k]
		clear(iq.wseq)
	}
	iq.seq = 0
	iq.base = 0
}
