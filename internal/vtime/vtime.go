// Package vtime provides virtual (simulated) time primitives used throughout
// the MANA simulation substrate.
//
// Every MPI rank in the simulation owns a Clock whose value advances only
// when modelled costs are charged against it: compute phases from workload
// models, per-message latency and serialisation time from the network
// models, kernel costs such as FS-register switches, and checkpoint I/O
// time. Messages piggyback the sender's timestamp so that receiving and
// synchronising operations can advance a receiver to the causally correct
// time (a conservative "piggyback" form of parallel discrete-event
// simulation).
//
// The package also provides the event-scheduling structures the
// coordinator runs on: EventQueue, a single time-ordered lane, and
// IslandQueues, which partitions events across per-island lanes so that
// conservative lookahead windows can be drained by parallel workers.
// Merged iteration over all lanes reproduces the single-queue pop order
// exactly, so the lane count is invisible to the simulation's outputs.
// Because no wall-clock time is ever consulted, all figures regenerated
// by the benchmark harness are deterministic.
package vtime

import (
	"fmt"
	"sync"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds since the start
// of the simulated job. It is deliberately a distinct type from
// time.Duration to prevent accidental mixing of wall-clock and virtual
// quantities.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common virtual durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds reports the duration as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds reports the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Std converts a virtual duration to a time.Duration of the same nominal
// length, for interoperability with formatting helpers.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats the duration using the standard library's formatting.
func (d Duration) String() string { return time.Duration(d).String() }

// String formats the time as a duration offset from virtual zero.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// DurationOf converts floating-point seconds to a virtual Duration.
func DurationOf(seconds float64) Duration { return Duration(seconds * float64(Second)) }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MaxDuration returns the larger of a and b.
func MaxDuration(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// Clock is a per-rank virtual clock. It is safe for concurrent use: the
// owning rank advances it while helper goroutines (e.g. the checkpoint
// helper thread) may read it.
type Clock struct {
	mu  sync.Mutex
	now Time
}

// NewClock returns a clock positioned at the given start time.
func NewClock(start Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time. Negative
// durations are ignored so that cost models can never move time backwards.
func (c *Clock) Advance(d Duration) Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now += Time(d)
	}
	return c.now
}

// AdvanceTo moves the clock forward to at least t (it never moves
// backwards) and returns the resulting time. This is the synchronisation
// primitive used when a rank must wait for a message or a collective whose
// completion time is t.
func (c *Clock) AdvanceTo(t Time) Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Set forcibly positions the clock, used when restoring a rank from a
// checkpoint image.
func (c *Clock) Set(t Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}

// Stamp is a virtual timestamp piggybacked onto a simulated network
// message: the sender's rank and clock value at the moment the message
// left. Receivers use it to advance causally (a conservative
// piggyback-synchronisation scheme, so simulated time never runs
// backwards across a happens-before edge).
type Stamp struct {
	Rank int
	When Time
}

// StampFrom captures a piggyback stamp from the given clock.
func StampFrom(rank int, c *Clock) Stamp {
	return Stamp{Rank: rank, When: c.Now()}
}

// Observe applies a piggybacked timestamp to the clock: the clock
// advances to at least s.When and the resulting time is returned. This is
// the receive-side half of timestamp piggybacking.
func (c *Clock) Observe(s Stamp) Time {
	return c.AdvanceTo(s.When)
}

// MaxStamp returns the latest of the given stamps; with no stamps it
// returns the zero Stamp. Coordinators use this to compute the completion
// time of an operation that must wait for every participant.
func MaxStamp(stamps []Stamp) Stamp {
	var max Stamp
	for i, s := range stamps {
		if i == 0 || s.When > max.When {
			max = s
		}
	}
	return max
}

// Stopwatch measures a span of virtual time on a clock.
type Stopwatch struct {
	clock *Clock
	start Time
}

// StartStopwatch begins measuring from the clock's current time.
func StartStopwatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed reports virtual time accumulated since the stopwatch started.
func (s Stopwatch) Elapsed() Duration {
	return s.clock.Now().Sub(s.start)
}

// RNG is a small deterministic pseudo-random number generator
// (SplitMix64). It is used wherever the simulation needs variability —
// straggler write times, per-run jitter — while remaining reproducible for
// a given seed. math/rand would also work, but a self-contained generator
// keeps the substrate free of global state and seed-ordering surprises.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64-bit pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a value uniformly distributed in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a value uniformly distributed in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("vtime: Intn called with non-positive n=%d", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Jitter returns a multiplicative factor in [1-spread, 1+spread] used to
// perturb modelled costs.
func (r *RNG) Jitter(spread float64) float64 {
	return 1 + spread*(2*r.Float64()-1)
}

// Straggler returns a multiplicative slowdown factor: with probability p
// the factor is drawn uniformly from [1, maxFactor], otherwise it is 1.
// This models the parallel-filesystem write stragglers reported in the
// paper (§3.4: one rank's write can take up to 4x the time of 90% of the
// other ranks).
func (r *RNG) Straggler(p, maxFactor float64) float64 {
	if r.Float64() >= p {
		return 1
	}
	return 1 + (maxFactor-1)*r.Float64()
}
