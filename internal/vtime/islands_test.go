package vtime

import (
	"math/rand"
	"testing"
)

// TestIslandQueuesMatchesSingleQueueOrder is the merge-layer property
// test: a random event stream partitioned across K lanes must pop in
// exactly the (time, seq) order a single EventQueue fed the same stream
// pops in — for any K and any partition.
func TestIslandQueuesMatchesSingleQueueOrder(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7, 16} {
		for trial := 0; trial < 20; trial++ {
			rng := rand.New(rand.NewSource(int64(1000*k + trial)))
			single := NewEventQueue[int]()
			iq := NewIslandQueues[int](k, 0)

			n := 200 + rng.Intn(300)
			lanes := make([]int, n)
			for i := 0; i < n; i++ {
				// Small time range to force heavy ties.
				tm := Time(rng.Intn(16))
				lane := rng.Intn(k)
				lanes[i] = lane
				single.Push(tm, i)
				iq.Push(lane, tm, i)
			}

			// Interleave pops and fresh pushes to exercise mid-stream
			// scheduling too.
			popped := 0
			for single.Len() > 0 {
				wt, wv, _ := single.Pop()
				lane, gt, gv, ok := iq.PopMin()
				if !ok {
					t.Fatalf("k=%d trial=%d: islands empty after %d pops, single has %d left",
						k, trial, popped, single.Len()+1)
				}
				if gt != wt || gv != wv {
					t.Fatalf("k=%d trial=%d pop %d: single=(%v,%d) islands=(%v,%d) from lane %d",
						k, trial, popped, wt, wv, gt, gv, lane)
				}
				popped++
				if rng.Intn(4) == 0 {
					tm := Time(rng.Intn(16))
					lane := rng.Intn(k)
					id := n + popped
					single.Push(tm, id)
					iq.Push(lane, tm, id)
				}
			}
			if iq.Len() != 0 {
				t.Fatalf("k=%d trial=%d: islands kept %d events after single drained", k, trial, iq.Len())
			}
		}
	}
}

// TestIslandQueuesPeekMin pins PeekMin against PopMin.
func TestIslandQueuesPeekMin(t *testing.T) {
	iq := NewIslandQueues[string](3, 4)
	if _, _, ok := iq.PeekMin(); ok {
		t.Fatal("PeekMin on empty queues reported an event")
	}
	iq.Push(2, 50, "late")
	iq.Push(0, 10, "early")
	iq.Push(1, 10, "early-tie")
	lane, tm, ok := iq.PeekMin()
	if !ok || lane != 0 || tm != 10 {
		t.Fatalf("PeekMin = (%d, %v, %v), want (0, 10, true)", lane, tm, ok)
	}
	gl, gt, gv, _ := iq.PopMin()
	if gl != lane || gt != tm || gv != "early" {
		t.Fatalf("PopMin = (%d, %v, %q) disagrees with PeekMin (%d, %v)", gl, gt, gv, lane, tm)
	}
}

// TestIslandQueuesWindowOrdering pins the window seq-block contract:
// events pushed by workers during a window order after every pre-window
// event at the same time, tie-break across lanes by lane index, and
// post-window merge-mode pushes order after all window pushes.
func TestIslandQueuesWindowOrdering(t *testing.T) {
	iq := NewIslandQueues[string](3, 0)
	iq.Push(1, 10, "pre-a")
	iq.Push(0, 10, "pre-b")

	iq.BeginWindow()
	// Reverse lane order on purpose: ties must still resolve lane 0 first.
	iq.WorkerPush(2, 10, "win-lane2")
	iq.WorkerPush(0, 10, "win-lane0-a")
	iq.WorkerPush(0, 10, "win-lane0-b")
	iq.WorkerPush(1, 5, "win-earlier")
	iq.EndWindow()

	iq.Push(1, 10, "post")

	want := []string{
		"win-earlier",    // time 5 beats every time-10 event
		"pre-a", "pre-b", // pre-window seqs are smallest at time 10
		"win-lane0-a", "win-lane0-b", // window ties: lane 0 block first, FIFO inside
		"win-lane2",
		"post", // post-window counter advanced past all blocks
	}
	for i, w := range want {
		_, _, got, ok := iq.PopMin()
		if !ok || got != w {
			t.Fatalf("pop %d = (%q, %v), want %q", i, got, ok, w)
		}
	}
	if iq.Len() != 0 {
		t.Fatalf("queue not empty after draining, Len=%d", iq.Len())
	}
}

// TestIslandQueuesWindowMisuse pins the guard rails: merge-mode Push
// inside a window and unbalanced EndWindow both panic.
func TestIslandQueuesWindowMisuse(t *testing.T) {
	iq := NewIslandQueues[int](2, 0)
	iq.BeginWindow()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Push inside a window did not panic")
			}
		}()
		iq.Push(0, 1, 1)
	}()
	iq.EndWindow()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("EndWindow without BeginWindow did not panic")
			}
		}()
		iq.EndWindow()
	}()
}

// TestIslandQueuesClearKeepsOrderAcrossRestart mirrors the EventQueue
// Clear contract at the merge layer: pushes after Clear order after
// everything pushed before it, and lane storage is reused.
func TestIslandQueuesClearKeepsOrderAcrossRestart(t *testing.T) {
	iq := NewIslandQueues[int](2, 0)
	for i := 0; i < 64; i++ {
		iq.Push(i%2, 10, i)
	}
	capBefore := iq.Lane(0).Cap()
	iq.Clear()
	if iq.Len() != 0 {
		t.Fatalf("Len after Clear = %d, want 0", iq.Len())
	}
	if got := iq.Lane(0).Cap(); got != capBefore {
		t.Fatalf("lane capacity after Clear = %d, want %d (storage reuse)", got, capBefore)
	}
	iq.Push(0, 10, 100)
	iq.Push(1, 10, 101)
	_, _, v1, _ := iq.PopMin()
	_, _, v2, _ := iq.PopMin()
	if v1 != 100 || v2 != 101 {
		t.Fatalf("post-Clear pops = %d, %d; want 100, 101 (FIFO kept)", v1, v2)
	}
}

// TestNewEventQueueSized pins the preallocation contract: the size hint
// becomes heap capacity, and pushes within the hint never reallocate.
func TestNewEventQueueSized(t *testing.T) {
	q := NewEventQueueSized[int](128)
	if q.Cap() < 128 {
		t.Fatalf("Cap = %d, want >= 128", q.Cap())
	}
	capBefore := q.Cap()
	for i := 0; i < 128; i++ {
		q.Push(Time(i), i)
	}
	if q.Cap() != capBefore {
		t.Fatalf("pushing within the hint grew capacity %d -> %d", capBefore, q.Cap())
	}
	if q2 := NewEventQueueSized[int](-5); q2.Cap() != 0 || q2.Len() != 0 {
		t.Fatalf("negative hint: Cap=%d Len=%d, want 0, 0", q2.Cap(), q2.Len())
	}
}

// TestEventQueueClearKeepsCapacity pins the satellite fix: Clear must
// keep the grown heap storage so restart rebuilds reuse it.
func TestEventQueueClearKeepsCapacity(t *testing.T) {
	q := NewEventQueue[int]()
	for i := 0; i < 1000; i++ {
		q.Push(Time(i), i)
	}
	capBefore := q.Cap()
	if capBefore < 1000 {
		t.Fatalf("Cap = %d after 1000 pushes, want >= 1000", capBefore)
	}
	q.Clear()
	if q.Cap() != capBefore {
		t.Fatalf("Clear dropped capacity %d -> %d", capBefore, q.Cap())
	}
	for i := 0; i < 1000; i++ {
		q.Push(Time(i), i)
	}
	if q.Cap() != capBefore {
		t.Fatalf("refill after Clear reallocated: %d -> %d", capBefore, q.Cap())
	}
}
