package vtime

// EventQueue is a deterministic priority queue of scheduler events keyed
// on virtual time. It is the core data structure of the event-driven
// scheduler: instead of scanning every rank on every iteration, the
// coordinator pushes one event per state transition (rank ready, message
// delivery, collective completion, checkpoint trigger, failure) and pops
// them in virtual-time order, so idle ranks cost nothing.
//
// Ties are broken FIFO on a monotonically increasing sequence number
// assigned at Push, which makes the dispatch order a deterministic
// function of the push order alone: two events at the same virtual time
// pop in the order they were scheduled, never in map-iteration or heap
// -internal order. This is what keeps reports byte-identical across runs
// of the same seed.
//
// The queue is not safe for concurrent use; a deterministic scheduler
// drives each queue from a single goroutine at a time. In the island
// scheduler one EventQueue is one island's lane inside an IslandQueues
// merge layer (see islands.go), which assigns sequence numbers from a
// shared counter so the lanes still form one global (time, seq) total
// order.
type EventQueue[T any] struct {
	heap []eventEntry[T]
	seq  uint64
}

type eventEntry[T any] struct {
	time Time
	seq  uint64
	val  T
}

// NewEventQueue returns an empty queue.
func NewEventQueue[T any]() *EventQueue[T] {
	return &EventQueue[T]{}
}

// NewEventQueueSized returns an empty queue whose heap storage is
// preallocated for the given number of events, so a scheduler that knows
// its steady-state population (one ready event per rank, say) never pays
// growth reallocations on the hot path.
func NewEventQueueSized[T any](hint int) *EventQueue[T] {
	if hint < 0 {
		hint = 0
	}
	return &EventQueue[T]{heap: make([]eventEntry[T], 0, hint)}
}

// Len returns the number of scheduled events.
func (q *EventQueue[T]) Len() int { return len(q.heap) }

// Cap returns the heap storage capacity, for tests that pin capacity
// reuse across Clear.
func (q *EventQueue[T]) Cap() int { return cap(q.heap) }

// Push schedules v at virtual time t.
func (q *EventQueue[T]) Push(t Time, v T) {
	q.seq++
	q.PushAt(t, q.seq, v)
}

// PushAt schedules v at virtual time t with a caller-assigned sequence
// number. It is the primitive the IslandQueues merge layer builds on: the
// caller owns the seq space and guarantees (time, seq) uniqueness and
// that seq reflects the intended FIFO order at equal times. Mixing PushAt
// with Push on the same queue is only meaningful if the caller's seqs are
// coordinated with the internal counter.
func (q *EventQueue[T]) PushAt(t Time, seq uint64, v T) {
	q.heap = append(q.heap, eventEntry[T]{time: t, seq: seq, val: v})
	q.siftUp(len(q.heap) - 1)
}

// Pop removes and returns the earliest event; ties pop in Push order.
// The third result is false when the queue is empty.
func (q *EventQueue[T]) Pop() (Time, T, bool) {
	if len(q.heap) == 0 {
		var zero T
		return 0, zero, false
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = eventEntry[T]{} // release the payload for GC
	q.heap = q.heap[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return top.time, top.val, true
}

// PeekTime returns the virtual time of the earliest event without
// removing it; false when the queue is empty.
func (q *EventQueue[T]) PeekTime() (Time, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].time, true
}

// PeekKey returns the (time, seq) ordering key of the earliest event
// without removing it; false when the queue is empty. The merge layer
// compares lane heads by this key to pop the globally earliest event.
func (q *EventQueue[T]) PeekKey() (Time, uint64, bool) {
	if len(q.heap) == 0 {
		return 0, 0, false
	}
	return q.heap[0].time, q.heap[0].seq, true
}

// Clear discards every scheduled event but keeps the heap storage, so a
// restart that rebuilds the queue reuses the already-grown capacity
// instead of reallocating from zero. The sequence counter is NOT reset:
// events pushed after a Clear still order after everything pushed before
// it, so the rebuilt queue keeps a globally consistent tie-break order.
func (q *EventQueue[T]) Clear() {
	clear(q.heap) // release the payloads for GC, matching Pop
	q.heap = q.heap[:0]
}

func (q *EventQueue[T]) less(i, j int) bool {
	if q.heap[i].time != q.heap[j].time {
		return q.heap[i].time < q.heap[j].time
	}
	return q.heap[i].seq < q.heap[j].seq
}

func (q *EventQueue[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *EventQueue[T]) siftDown(i int) {
	n := len(q.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(left, smallest) {
			smallest = left
		}
		if right < n && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}
