package faultplan

import (
	"fmt"
	"strings"
	"testing"

	"mana/internal/vtime"
)

func TestParseValidPlan(t *testing.T) {
	doc := `{
		"faults": [
			{"at": "checkpoint-commit", "n": 2, "kind": "rank-crash", "delay": "250us"},
			{"at": "drain-start", "n": 3, "kind": "rank-crash"},
			{"at": "image-write", "n": 2, "kind": "torn-write", "rank": 3, "pages": 4},
			{"at": "image-write", "n": 1, "kind": "page-corruption", "rank": 1, "pages": 2},
			{"at": "virtual-time", "time": "12ms", "kind": "rank-crash"},
			{"at": "restart", "n": 1, "kind": "rank-crash"}
		],
		"max_restarts": 5
	}`
	p, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.MaxRestarts != 5 {
		t.Errorf("MaxRestarts = %d, want 5", p.MaxRestarts)
	}
	fs, err := p.Compile(8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(fs) != 6 {
		t.Fatalf("compiled %d faults, want 6", len(fs))
	}
	if fs[0].Anchor != AtCheckpointCommit || fs[0].N != 2 || fs[0].Delay != 250*vtime.Microsecond {
		t.Errorf("fault 0 compiled wrong: %+v", fs[0])
	}
	if fs[2].Kind != TornWrite || fs[2].Rank != 3 || fs[2].Pages != 4 {
		t.Errorf("fault 2 compiled wrong: %+v", fs[2])
	}
	if fs[4].Anchor != AtVirtualTime || fs[4].Time != vtime.Time(12*vtime.Millisecond) {
		t.Errorf("fault 4 compiled wrong: %+v", fs[4])
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"unknown field", `{"faults": [], "surprise": 1}`, "surprise"},
		{"trailing data", `{"faults": [{"at":"restart","n":1,"kind":"rank-crash"}]} {}`, "trailing data"},
		{"empty plan", `{"faults": []}`, `faults: plan declares no faults`},
		{"negative max restarts", `{"faults": [{"at":"restart","n":1,"kind":"rank-crash"}], "max_restarts": -1}`, "max_restarts: must be non-negative"},
		{"bad anchor", `{"faults": [{"at":"coffee-break","kind":"rank-crash"}]}`, `faults[0].at: unknown anchor "coffee-break"`},
		{"bad kind", `{"faults": [{"at":"restart","n":1,"kind":"meteor"}]}`, `faults[0].kind: unknown kind "meteor"`},
		{"missing ordinal", `{"faults": [{"at":"checkpoint-commit","kind":"rank-crash"}]}`, "faults[0].n: anchor \"checkpoint-commit\" needs an ordinal"},
		{"ordinal on virtual-time", `{"faults": [{"at":"virtual-time","n":2,"time":"1ms","kind":"rank-crash"}]}`, "faults[0].n: only valid for ordinal anchors"},
		{"missing time", `{"faults": [{"at":"virtual-time","kind":"rank-crash"}]}`, "faults[0].time: anchor \"virtual-time\" needs a Go duration"},
		{"negative time", `{"faults": [{"at":"virtual-time","time":"-3ms","kind":"rank-crash"}]}`, "faults[0].time: must be positive"},
		{"time on ordinal anchor", `{"faults": [{"at":"restart","n":1,"time":"1ms","kind":"rank-crash"}]}`, "faults[0].time: only valid for anchor \"virtual-time\""},
		{"crash at image-write", `{"faults": [{"at":"image-write","n":1,"kind":"rank-crash"}]}`, `faults[0].kind: anchor "image-write" wants "torn-write" or "page-corruption"`},
		{"torn-write at commit", `{"faults": [{"at":"checkpoint-commit","n":1,"kind":"torn-write"}]}`, `faults[0].kind: kind "torn-write" is only valid at "image-write" anchors`},
		{"rank on crash", `{"faults": [{"at":"checkpoint-commit","n":1,"kind":"rank-crash","rank":2}]}`, "faults[0].rank: only valid for \"image-write\" faults"},
		{"negative rank", `{"faults": [{"at":"image-write","n":1,"kind":"torn-write","rank":-1}]}`, "faults[0].rank: must be non-negative"},
		{"delay on restart", `{"faults": [{"at":"restart","n":1,"kind":"rank-crash","delay":"1ms"}]}`, "faults[0].delay: only valid for \"checkpoint-commit\" and \"drain-start\""},
		{"bad delay", `{"faults": [{"at":"checkpoint-commit","n":1,"kind":"rank-crash","delay":"soon"}]}`, "faults[0].delay: not a Go duration"},
		{"negative delay", `{"faults": [{"at":"checkpoint-commit","n":1,"kind":"rank-crash","delay":"-1ms"}]}`, "faults[0].delay: must be non-negative"},
		{"pages on crash", `{"faults": [{"at":"drain-start","n":1,"kind":"rank-crash","pages":3}]}`, "faults[0].pages: only valid for \"torn-write\" and \"page-corruption\""},
		{"corruption needs pages", `{"faults": [{"at":"image-write","n":1,"kind":"page-corruption"}]}`, "faults[0].pages: must be at least 1"},
		{"field path indexes", `{"faults": [{"at":"restart","n":1,"kind":"rank-crash"},{"at":"image-write","n":1,"kind":"page-corruption"}]}`, "faults[1].pages"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCompileRangeChecksRank(t *testing.T) {
	p := Plan{Faults: []Spec{{At: "image-write", N: 1, Kind: "torn-write", Rank: 8}}}
	if _, err := p.Compile(8); err == nil || !strings.Contains(err.Error(), "faults[0].rank: rank 8 out of range for a 8-rank job") {
		t.Errorf("Compile(8) error = %v, want rank range error", err)
	}
	if _, err := p.Compile(9); err != nil {
		t.Errorf("Compile(9): %v", err)
	}
}

func TestValidateNamedGraftsPath(t *testing.T) {
	p := Plan{Faults: []Spec{{At: "nowhere", Kind: "rank-crash"}}}
	var gotPath string
	err := p.ValidateNamed(func(path, format string, args ...any) error {
		gotPath = path
		return fmt.Errorf("custom: %s: %s", path, fmt.Sprintf(format, args...))
	})
	if gotPath != "faults[0].at" {
		t.Errorf("path = %q, want faults[0].at", gotPath)
	}
	if err == nil || !strings.HasPrefix(err.Error(), "custom: faults[0].at:") {
		t.Errorf("error = %v, want custom-prefixed error", err)
	}
}

// TestHopQualifierRoundTrips pins the image-write hop qualifier through
// Parse → Validate → Compile: the explicit stage and drain spellings
// resolve to their hops, and the bare anchor stays a documented alias
// for the stage hop, so pre-qualifier plans compile unchanged.
func TestHopQualifierRoundTrips(t *testing.T) {
	doc := `{
		"faults": [
			{"at": "image-write/stage", "n": 1, "kind": "torn-write"},
			{"at": "image-write/drain", "n": 2, "kind": "torn-write", "rank": 3},
			{"at": "image-write", "n": 3, "kind": "page-corruption", "pages": 2},
			{"at": "image-write/drain", "n": 3, "kind": "page-corruption", "pages": 4}
		]
	}`
	p, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	fs, err := p.Compile(8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	want := []Hop{HopStage, HopDrain, HopStage, HopDrain}
	for i, f := range fs {
		if f.Anchor != AtImageWrite {
			t.Errorf("fault %d anchor = %v, want AtImageWrite", i, f.Anchor)
		}
		if f.Hop != want[i] {
			t.Errorf("fault %d hop = %v, want %v", i, f.Hop, want[i])
		}
	}
	if HopStage.String() != "stage" || HopDrain.String() != "drain" {
		t.Errorf("hop spellings = %q/%q, want stage/drain", HopStage, HopDrain)
	}
	if !AnyDrainHop(fs) {
		t.Error("AnyDrainHop missed the drain faults")
	}
	if AnyDrainHop(fs[:1]) || AnyDrainHop(fs[2:3]) {
		t.Error("AnyDrainHop flagged stage-only faults")
	}
}

// TestHopQualifierRejections covers the qualifier's validation errors:
// only image-write takes one, and only the two documented spellings.
func TestHopQualifierRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"hop on commit", `{"faults": [{"at":"checkpoint-commit/drain","n":1,"kind":"rank-crash"}]}`,
			`faults[0].at: anchor "checkpoint-commit" takes no hop qualifier, got "drain"`},
		{"hop on drain-start", `{"faults": [{"at":"drain-start/stage","n":1,"kind":"rank-crash"}]}`,
			`faults[0].at: anchor "drain-start" takes no hop qualifier, got "stage"`},
		{"unknown hop", `{"faults": [{"at":"image-write/sideways","n":1,"kind":"torn-write"}]}`,
			`faults[0].at: unknown hop qualifier "sideways" for anchor "image-write" (want "stage" or "drain")`},
		{"empty hop", `{"faults": [{"at":"image-write/","n":1,"kind":"torn-write"}]}`,
			`faults[0].at: unknown hop qualifier ""`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestLegacyPlanRoundTrips(t *testing.T) {
	p := Legacy(2, 250*vtime.Microsecond)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	fs, err := p.Compile(4)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(fs) != 1 {
		t.Fatalf("compiled %d faults, want 1", len(fs))
	}
	f := fs[0]
	if f.Anchor != AtCheckpointCommit || f.N != 2 || f.Kind != RankCrash || f.Delay != 250*vtime.Microsecond {
		t.Errorf("legacy fault compiled wrong: %+v", f)
	}
}
