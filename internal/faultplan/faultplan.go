// Package faultplan compiles declarative fault-injection plans for the
// simulator. A plan is an ordered list of injections, each anchored to a
// protocol point in the two-phase checkpoint lifecycle — a checkpoint
// commit, the start of a collective drain, the image-write stage, an
// absolute virtual time, or the restart procedure itself — and carrying a
// failure kind: a whole-job rank crash, a torn (partially written) image,
// or silent page corruption.
//
// Plans arrive either as a `faults` section inside a scenario spec or as a
// standalone JSON document via the -faults CLI flag. Validation follows the
// scenario engine's named-field error style: every error names the exact
// offending field, e.g. `faultplan: faults[1].pages: must be at least 1 for
// kind "page-corruption"`. The legacy Config.FailAtCheckpoint/FailDelay
// pair is expressible as a two-line plan via Legacy.
package faultplan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"mana/internal/vtime"
)

// Anchor identifies the protocol point a fault fires at.
type Anchor int

const (
	// AtCheckpointCommit fires Delay after checkpoint #N commits — the
	// legacy FailAtCheckpoint/FailDelay failure point.
	AtCheckpointCommit Anchor = iota
	// AtDrainStart fires Delay after the drain for upcoming checkpoint #N
	// begins, killing the job while the topo-ordered drain plan is still
	// partially executed.
	AtDrainStart
	// AtImageWrite fires during the image-write stage of checkpoint #N,
	// tearing or corrupting the target rank's image.
	AtImageWrite
	// AtVirtualTime fires at an absolute virtual time, regardless of
	// checkpoint activity.
	AtVirtualTime
	// AtRestart fires during the N-th restart attempt, after the restore
	// candidate has been chosen but before state is restored.
	AtRestart
)

// String returns the anchor's spelling in plan JSON.
func (a Anchor) String() string {
	switch a {
	case AtCheckpointCommit:
		return "checkpoint-commit"
	case AtDrainStart:
		return "drain-start"
	case AtImageWrite:
		return "image-write"
	case AtVirtualTime:
		return "virtual-time"
	case AtRestart:
		return "restart"
	}
	return fmt.Sprintf("anchor(%d)", int(a))
}

// Hop qualifies an image-write anchor with the checkpoint I/O hop the
// fault strikes: the commit-time stage into the node's burst buffer (or
// the direct PFS write when staging is off), or the later asynchronous
// buffer→PFS drain. Bare "image-write" keeps its historical meaning as a
// documented alias for the stage hop.
type Hop int

const (
	// HopStage is the commit-time write — the only hop that existed
	// before the two-tier pipeline, hence the zero value and the bare
	// "image-write" alias.
	HopStage Hop = iota
	// HopDrain is the asynchronous burst-buffer→PFS drain; faults here
	// damage the durable PFS copy after the job has already moved on.
	HopDrain
)

// String returns the hop's spelling in an anchor qualifier.
func (h Hop) String() string {
	switch h {
	case HopStage:
		return "stage"
	case HopDrain:
		return "drain"
	}
	return fmt.Sprintf("hop(%d)", int(h))
}

// Kind identifies what failure the fault injects.
type Kind int

const (
	// RankCrash kills the whole job; the fleet engine restarts it from the
	// newest verifiable image.
	RankCrash Kind = iota
	// TornWrite interrupts the target rank's image write, leaving a
	// partial image (Complete=false with a byte-accurate written size).
	TornWrite
	// PageCorruption silently flips a byte in each of the first Pages
	// materialised pages of the target rank's image; the run continues and
	// the damage surfaces only when restart verification rehashes the link.
	PageCorruption
)

// String returns the kind's spelling in plan JSON.
func (k Kind) String() string {
	switch k {
	case RankCrash:
		return "rank-crash"
	case TornWrite:
		return "torn-write"
	case PageCorruption:
		return "page-corruption"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Spec is one declarative injection as it appears in plan JSON.
type Spec struct {
	// At anchors the fault: "checkpoint-commit", "drain-start",
	// "image-write", "virtual-time", or "restart". An image-write anchor
	// may carry a hop qualifier — "image-write/stage" strikes the
	// commit-time write, "image-write/drain" the asynchronous
	// burst-buffer→PFS drain; bare "image-write" is the documented alias
	// for the stage hop.
	At string `json:"at"`
	// N is the 1-based ordinal for checkpoint-commit / drain-start /
	// image-write (checkpoint sequence number) and restart (attempt
	// number). Invalid for virtual-time.
	N int `json:"n,omitempty"`
	// Time is the absolute virtual time for virtual-time anchors, as a Go
	// duration string ("12ms"). Invalid elsewhere.
	Time string `json:"time,omitempty"`
	// Kind is the failure kind: "rank-crash", "torn-write", or
	// "page-corruption". Torn writes and page corruption are only valid at
	// image-write anchors; rank crashes everywhere else.
	Kind string `json:"kind"`
	// Rank is the target rank for image-write faults. Invalid elsewhere.
	Rank int `json:"rank,omitempty"`
	// Delay postpones a checkpoint-commit or drain-start crash by a Go
	// duration ("250us"). Invalid elsewhere.
	Delay string `json:"delay,omitempty"`
	// Pages sizes the damage: for torn-write, the number of whole pages
	// written before the tear (0 = half the payload); for page-corruption,
	// the number of leading pages to corrupt (at least 1). Invalid for
	// rank-crash.
	Pages int `json:"pages,omitempty"`
}

// Plan is an ordered fault-injection plan.
type Plan struct {
	// Faults fire in protocol order; each is one-shot.
	Faults []Spec `json:"faults"`
	// MaxRestarts bounds the fleet engine's restart loop for this plan
	// (0 = engine default).
	MaxRestarts int `json:"max_restarts,omitempty"`
}

// Fault is a compiled injection with parsed times and a range-checked rank.
type Fault struct {
	Anchor Anchor
	// Hop is meaningful only for AtImageWrite anchors; its zero value
	// (HopStage) is what bare "image-write" compiles to.
	Hop   Hop
	N     int
	Time  vtime.Time
	Kind  Kind
	Rank  int
	Delay vtime.Duration
	Pages int
}

// Parse decodes a standalone plan document, rejecting unknown fields and
// trailing garbage, then validates it.
func Parse(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faultplan: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("faultplan: trailing data after plan document")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate checks the plan standalone; errors name the offending field as
// `faultplan: faults[i].<field>: <problem>`.
func (p *Plan) Validate() error {
	return p.ValidateNamed(func(path, format string, args ...any) error {
		return fmt.Errorf("faultplan: %s: %s", path, fmt.Sprintf(format, args...))
	})
}

// ValidateNamed checks the plan, constructing errors through errf so an
// enclosing document (a scenario spec's `faults` section) can graft its own
// path prefix. errf receives the field path relative to the plan root.
func (p *Plan) ValidateNamed(errf func(path, format string, args ...any) error) error {
	if p.MaxRestarts < 0 {
		return errf("max_restarts", "must be non-negative, got %d", p.MaxRestarts)
	}
	if len(p.Faults) == 0 {
		return errf("faults", "plan declares no faults")
	}
	for i, f := range p.Faults {
		if err := f.validate(fmt.Sprintf("faults[%d]", i), errf); err != nil {
			return err
		}
	}
	return nil
}

func (f *Spec) validate(path string, errf func(path, format string, args ...any) error) error {
	anchor, _, ok := parseAnchor(f.At)
	if !ok {
		if base, qual, found := strings.Cut(f.At, "/"); found {
			if a, _, baseOK := parseAnchor(base); baseOK {
				if a != AtImageWrite {
					return errf(path+".at", "anchor %q takes no hop qualifier, got %q", base, qual)
				}
				return errf(path+".at", "unknown hop qualifier %q for anchor \"image-write\" (want \"stage\" or \"drain\")", qual)
			}
		}
		return errf(path+".at", "unknown anchor %q (want \"checkpoint-commit\", \"drain-start\", \"image-write[/stage|/drain]\", \"virtual-time\", or \"restart\")", f.At)
	}
	kind, ok := parseKind(f.Kind)
	if !ok {
		return errf(path+".kind", "unknown kind %q (want \"rank-crash\", \"torn-write\", or \"page-corruption\")", f.Kind)
	}

	if anchor == AtVirtualTime {
		if f.N != 0 {
			return errf(path+".n", "only valid for ordinal anchors, not \"virtual-time\"")
		}
		d, err := time.ParseDuration(f.Time)
		if f.Time == "" || err != nil {
			return errf(path+".time", "anchor \"virtual-time\" needs a Go duration, got %q", f.Time)
		}
		if d <= 0 {
			return errf(path+".time", "must be positive, got %q", f.Time)
		}
	} else {
		if f.Time != "" {
			return errf(path+".time", "only valid for anchor \"virtual-time\"")
		}
		if f.N < 1 {
			return errf(path+".n", "anchor %q needs an ordinal of at least 1, got %d", f.At, f.N)
		}
	}

	if anchor == AtImageWrite {
		if kind == RankCrash {
			return errf(path+".kind", "anchor \"image-write\" wants \"torn-write\" or \"page-corruption\", not \"rank-crash\"")
		}
	} else if kind != RankCrash {
		return errf(path+".kind", "kind %q is only valid at \"image-write\" anchors", f.Kind)
	}

	if f.Rank != 0 && anchor != AtImageWrite {
		return errf(path+".rank", "only valid for \"image-write\" faults")
	}
	if f.Rank < 0 {
		return errf(path+".rank", "must be non-negative, got %d", f.Rank)
	}

	if f.Delay != "" {
		if anchor != AtCheckpointCommit && anchor != AtDrainStart {
			return errf(path+".delay", "only valid for \"checkpoint-commit\" and \"drain-start\" crashes")
		}
		d, err := time.ParseDuration(f.Delay)
		if err != nil {
			return errf(path+".delay", "not a Go duration: %q", f.Delay)
		}
		if d < 0 {
			return errf(path+".delay", "must be non-negative, got %q", f.Delay)
		}
	}

	switch kind {
	case RankCrash:
		if f.Pages != 0 {
			return errf(path+".pages", "only valid for \"torn-write\" and \"page-corruption\" faults")
		}
	case TornWrite:
		if f.Pages < 0 {
			return errf(path+".pages", "must be non-negative, got %d (0 = tear at half the payload)", f.Pages)
		}
	case PageCorruption:
		if f.Pages < 1 {
			return errf(path+".pages", "must be at least 1 for kind \"page-corruption\", got %d", f.Pages)
		}
	}
	return nil
}

// Compile validates the plan against a concrete job size and returns the
// executable faults in declaration order. ranks is the job's rank count;
// image-write targets must fall inside it.
func (p *Plan) Compile(ranks int) ([]Fault, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := make([]Fault, len(p.Faults))
	for i, f := range p.Faults {
		anchor, hop, _ := parseAnchor(f.At)
		kind, _ := parseKind(f.Kind)
		if anchor == AtImageWrite && f.Rank >= ranks {
			return nil, fmt.Errorf("faultplan: faults[%d].rank: rank %d out of range for a %d-rank job", i, f.Rank, ranks)
		}
		c := Fault{Anchor: anchor, Hop: hop, N: f.N, Kind: kind, Rank: f.Rank, Pages: f.Pages}
		if f.Time != "" {
			d, _ := time.ParseDuration(f.Time)
			c.Time = vtime.Time(d)
		}
		if f.Delay != "" {
			d, _ := time.ParseDuration(f.Delay)
			c.Delay = vtime.Duration(d)
		}
		out[i] = c
	}
	return out, nil
}

// Legacy expresses the historical Config.FailAtCheckpoint/FailDelay pair as
// a plan: one rank crash, delay after checkpoint #n commits.
func Legacy(n int, delay vtime.Duration) Plan {
	return Plan{Faults: []Spec{{
		At:    "checkpoint-commit",
		N:     n,
		Kind:  "rank-crash",
		Delay: time.Duration(delay).String(),
	}}}
}

// parseAnchor resolves an anchor spelling, including the optional
// image-write hop qualifier. Bare "image-write" resolves to HopStage —
// the historical meaning, kept as a documented alias.
func parseAnchor(s string) (Anchor, Hop, bool) {
	base, qual, qualified := strings.Cut(s, "/")
	var a Anchor
	switch base {
	case "checkpoint-commit":
		a = AtCheckpointCommit
	case "drain-start":
		a = AtDrainStart
	case "image-write":
		a = AtImageWrite
	case "virtual-time":
		a = AtVirtualTime
	case "restart":
		a = AtRestart
	default:
		return 0, 0, false
	}
	if !qualified {
		return a, HopStage, true
	}
	if a != AtImageWrite {
		return 0, 0, false
	}
	switch qual {
	case "stage":
		return a, HopStage, true
	case "drain":
		return a, HopDrain, true
	}
	return 0, 0, false
}

// AnyDrainHop reports whether any compiled fault targets the
// buffer→PFS drain hop. Such plans are only meaningful when burst-buffer
// staging is enabled, and configuration surfaces reject the combination
// by name otherwise.
func AnyDrainHop(faults []Fault) bool {
	for _, f := range faults {
		if f.Anchor == AtImageWrite && f.Hop == HopDrain {
			return true
		}
	}
	return false
}

func parseKind(s string) (Kind, bool) {
	switch s {
	case "rank-crash":
		return RankCrash, true
	case "torn-write":
		return TornWrite, true
	case "page-corruption":
		return PageCorruption, true
	}
	return 0, false
}
