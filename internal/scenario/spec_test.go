package scenario

import (
	"strings"
	"testing"
)

// TestParseErrorsNameOffendingField pins the validation contract: every
// rejected spec names the field that caused the rejection.
func TestParseErrorsNameOffendingField(t *testing.T) {
	cases := []struct {
		label string
		src   string
		want  string // substring the error must contain
	}{
		{"missing name", `{"phases":[{"name":"p","ops":[{"op":"barrier"}]}]}`, "name: required"},
		{"no phases", `{"name":"x"}`, "phases"},
		{"empty ops", `{"name":"x","phases":[{"name":"p","ops":[]}]}`, "phases[0].ops"},
		{"unnamed phase", `{"name":"x","phases":[{"ops":[{"op":"barrier"}]}]}`, "phases[0].name"},
		{"unknown op", `{"name":"x","phases":[{"name":"p","ops":[{"op":"teleport"}]}]}`, `phases[0].ops[0].op: unknown op "teleport"`},
		{"unknown json field", `{"name":"x","phases":[{"name":"p","ops":[{"op":"barrier","burst":3}]}]}`, "burst"},
		{"compute without mean", `{"name":"x","phases":[{"name":"p","ops":[{"op":"compute"}]}]}`, "phases[0].ops[0].mean: required"},
		{"bad mean", `{"name":"x","phases":[{"name":"p","ops":[{"op":"compute","mean":"fast"}]}]}`, `phases[0].ops[0].mean: not a positive duration: "fast"`},
		{"mean on ring", `{"name":"x","phases":[{"name":"p","ops":[{"op":"ring","bytes":64,"mean":"1ms"}]}]}`, "phases[0].ops[0].mean: only valid for"},
		{"jitter out of range", `{"name":"x","phases":[{"name":"p","ops":[{"op":"compute","mean":"1ms","jitter":1.5}]}]}`, "phases[0].ops[0].jitter"},
		{"ring without bytes", `{"name":"x","phases":[{"name":"p","ops":[{"op":"ring"}]}]}`, "phases[0].ops[0].bytes: required"},
		{"bad ring mode", `{"name":"x","phases":[{"name":"p","ops":[{"op":"ring","bytes":64,"mode":"rdma"}]}]}`, `phases[0].ops[0].mode: unknown mode "rdma"`},
		{"bad ring dir", `{"name":"x","phases":[{"name":"p","ops":[{"op":"ring","bytes":64,"dir":"up"}]}]}`, `phases[0].ops[0].dir`},
		{"comm out of range", `{"name":"x","phases":[{"name":"p","ops":[{"op":"barrier","comm":1}]}]}`, "phases[0].ops[0].comm: slot 1 out of range"},
		{"comm on ring", `{"name":"x","splits":[{"group":2}],"phases":[{"name":"p","ops":[{"op":"ring","bytes":64,"comm":1}]}]}`, "phases[0].ops[0].comm: only valid for"},
		{"who on barrier", `{"name":"x","phases":[{"name":"p","ops":[{"op":"barrier","who":"root"}]}]}`, "phases[0].ops[0].who: only valid for"},
		{"bad who", `{"name":"x","phases":[{"name":"p","ops":[{"op":"compute","mean":"1ms","who":"masters"}]}]}`, `phases[0].ops[0].who: unknown selector "masters"`},
		{"bytes_jitter on allreduce", `{"name":"x","phases":[{"name":"p","ops":[{"op":"allreduce","bytes":64,"bytes_jitter":0.5}]}]}`, "phases[0].ops[0].bytes_jitter: only valid for point-to-point"},
		{"when without every", `{"name":"x","phases":[{"name":"p","ops":[{"op":"barrier","when":{"offset":1}}]}]}`, "phases[0].ops[0].when.every"},
		{"when offset too large", `{"name":"x","phases":[{"name":"p","ops":[{"op":"barrier","when":{"every":3,"offset":3}}]}]}`, "phases[0].ops[0].when.offset"},
		{"tiny split group", `{"name":"x","splits":[{"group":1}],"phases":[{"name":"p","ops":[{"op":"barrier"}]}]}`, "splits[0].group: must be at least 2"},
		{"conflicting shift", `{"name":"x","splits":[{"group":4,"shift":1,"shift_half_group":true}],"phases":[{"name":"p","ops":[{"op":"barrier"}]}]}`, "splits[0].shift"},
		{"bad checkpoint kind", `{"name":"x","phases":[{"name":"p","ops":[{"op":"barrier"}]}],"checkpoints":[{"kind":"sometime"}]}`, `checkpoints[0].kind: unknown kind "sometime"`},
		{"forming-colls without colls", `{"name":"x","phases":[{"name":"p","ops":[{"op":"barrier"}]}],"checkpoints":[{"kind":"forming-colls"}]}`, "checkpoints[0].colls: must be at least 1"},
		{"colls on plain trigger", `{"name":"x","phases":[{"name":"p","ops":[{"op":"barrier"}]}],"checkpoints":[{"kind":"at","colls":2}]}`, "checkpoints[0].colls: only valid"},
		{"negative steps", `{"name":"x","phases":[{"name":"p","steps":-1,"ops":[{"op":"barrier"}]}]}`, "phases[0].steps"},
		{"negative islands", `{"name":"x","islands":-2,"phases":[{"name":"p","ops":[{"op":"barrier"}]}]}`, "islands: must be non-negative"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.src))
		if err == nil {
			t.Errorf("%s: Parse accepted an invalid spec", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the offending field (want substring %q)", tc.label, err, tc.want)
		}
	}
}

// TestCompileValidatesParams pins compile-time parameter errors.
func TestCompileValidatesParams(t *testing.T) {
	spec, err := Load("default")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Compile(Params{Ranks: 0, Steps: 5}); err == nil || !strings.Contains(err.Error(), "ranks") {
		t.Errorf("zero ranks: err = %v, want a ranks error", err)
	}
	if _, err := spec.Compile(Params{Ranks: 4, Steps: -1}); err == nil || !strings.Contains(err.Error(), "steps") {
		t.Errorf("negative steps: err = %v, want a steps error", err)
	}
	if _, err := spec.Compile(Params{Ranks: 4, Steps: 5, Group: 1}); err == nil || !strings.Contains(err.Error(), "group") {
		t.Errorf("tiny group: err = %v, want a group error", err)
	}
	mw, err := Load("master-worker")
	if err != nil {
		t.Fatal(err)
	}
	mw.Phases[0].Ops[0].Root = 9
	if _, err := mw.Compile(Params{Ranks: 4, Steps: 5}); err == nil || !strings.Contains(err.Error(), "root") {
		t.Errorf("out-of-range root: err = %v, want a root error", err)
	}
}

// TestLibraryShape pins the shipped spec library: the expected set of
// names, file/name agreement, and that every spec compiles at a spread of
// job sizes including the smoke-matrix shape (512 ranks).
func TestLibraryShape(t *testing.T) {
	want := []string{"bursty-alltoall", "default", "master-worker", "overlap", "pipeline", "stencil"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("library has %d specs %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("library names = %v, want %v", got, want)
		}
	}
	for _, name := range got {
		spec, err := Load(name)
		if err != nil {
			t.Fatalf("Load(%q): %v", name, err)
		}
		if spec.Name != name {
			t.Errorf("spec file %s.json declares name %q; they must agree", name, spec.Name)
		}
		if spec.Description == "" {
			t.Errorf("spec %q: missing description", name)
		}
		for _, p := range []Params{
			{Ranks: 1, Steps: 3, Seed: 1},
			{Ranks: 8, Steps: 30, Seed: 42},
			{Ranks: 512, Steps: 5, Seed: 42},
		} {
			progs, err := spec.Compile(p)
			if err != nil {
				t.Errorf("spec %q at %+v: %v", name, p, err)
				continue
			}
			if len(progs) != p.Ranks {
				t.Errorf("spec %q at %+v: %d programs", name, p, len(progs))
			}
		}
		if !IsLibrary(name) {
			t.Errorf("IsLibrary(%q) = false", name)
		}
	}
	if IsLibrary("no-such-spec") {
		t.Error("IsLibrary accepted an unknown name")
	}
	if _, err := Load("no-such-spec"); err == nil || !strings.Contains(err.Error(), "default") {
		t.Errorf("Load of unknown spec: err = %v, want error listing the library", err)
	}
}

// TestLibrarySpecsAreSPMD verifies that on every library spec all ranks
// agree on the per-communicator collective sequence (kind, comm slot and
// payload in the same order), which is what MPI requires and what the
// coordinator's collective matching assumes.
func TestLibrarySpecsAreSPMD(t *testing.T) {
	type collective struct {
		kind  OpKind
		comm  int
		bytes uint64
	}
	for _, name := range Names() {
		progs := MustPrograms(name, Params{Ranks: 12, Steps: 10, Seed: 9})
		var ref []collective
		for id, prog := range progs {
			var colls []collective
			for _, op := range prog {
				switch op.Kind {
				case OpBarrier, OpAllreduce, OpCommSplit:
					c := collective{kind: op.Kind, comm: op.Comm, bytes: op.Bytes}
					// Colours legitimately differ per rank; only the split's
					// position and parent must agree.
					colls = append(colls, c)
				}
			}
			if id == 0 {
				ref = colls
				continue
			}
			if len(colls) != len(ref) {
				t.Fatalf("spec %s: rank %d runs %d collectives, rank 0 runs %d", name, id, len(colls), len(ref))
			}
			for i := range ref {
				if colls[i] != ref[i] {
					t.Fatalf("spec %s: rank %d collective %d = %+v, rank 0 has %+v", name, id, i, colls[i], ref[i])
				}
			}
		}
	}
}

// TestGroupOverrideOnlyAffectsSplitSpecs pins UsesGroup: the CLI uses it
// to reject -group on specs with no comm-splits.
func TestGroupOverrideOnlyAffectsSplitSpecs(t *testing.T) {
	for name, want := range map[string]bool{
		"default": false, "overlap": true, "stencil": false,
		"master-worker": false, "bursty-alltoall": false, "pipeline": false,
	} {
		spec, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.UsesGroup() != want {
			t.Errorf("spec %q: UsesGroup = %v, want %v", name, spec.UsesGroup(), want)
		}
	}
}
