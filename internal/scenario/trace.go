package scenario

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mana/internal/vtime"
)

// The trace format is a line-oriented text encoding of per-rank op
// streams, designed so a recorded run can be replayed exactly — and
// inspected or edited with ordinary text tools:
//
//	manatrace v1 ranks=4
//	0 compute dur=253417
//	0 isend peer=1 bytes=65536 tag=3
//	0 recv peer=3 tag=3
//	0 wait
//	0 allreduce comm=1 bytes=8192
//	0 barrier comm=2
//	0 sbrk bytes=262144
//	0 split comm=0 color=1
//
// Each line is `<rank> <op> [key=value...]`; dur is virtual nanoseconds.
// Ops appear in per-rank program order (the writer emits ranks in order,
// but the reader only requires per-rank ordering).

const traceHeaderPrefix = "manatrace v1 ranks="

// WriteTrace encodes the programs in trace format.
func WriteTrace(w io.Writer, progs []Program) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s%d\n", traceHeaderPrefix, len(progs))
	for id, prog := range progs {
		for _, op := range prog {
			switch op.Kind {
			case OpCompute:
				fmt.Fprintf(bw, "%d compute dur=%d\n", id, int64(op.Dur))
			case OpSend:
				fmt.Fprintf(bw, "%d send peer=%d bytes=%d tag=%d\n", id, op.Peer, op.Bytes, op.Tag)
			case OpRecv:
				fmt.Fprintf(bw, "%d recv peer=%d tag=%d\n", id, op.Peer, op.Tag)
			case OpIsend:
				fmt.Fprintf(bw, "%d isend peer=%d bytes=%d tag=%d\n", id, op.Peer, op.Bytes, op.Tag)
			case OpWait:
				fmt.Fprintf(bw, "%d wait\n", id)
			case OpBarrier:
				fmt.Fprintf(bw, "%d barrier comm=%d\n", id, op.Comm)
			case OpAllreduce:
				fmt.Fprintf(bw, "%d allreduce comm=%d bytes=%d\n", id, op.Comm, op.Bytes)
			case OpSbrk:
				fmt.Fprintf(bw, "%d sbrk bytes=%d\n", id, op.Bytes)
			case OpCommSplit:
				fmt.Fprintf(bw, "%d split comm=%d color=%d\n", id, op.Comm, op.Color)
			default:
				return fmt.Errorf("scenario: trace: rank %d has unknown op kind %d", id, op.Kind)
			}
		}
	}
	return bw.Flush()
}

// ReadTrace decodes a trace, returning one Program per rank. Errors name
// the offending line.
func ReadTrace(r io.Reader) ([]Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("scenario: trace: %w", err)
		}
		return nil, fmt.Errorf("scenario: trace: empty input (want %q header)", traceHeaderPrefix+"N")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, traceHeaderPrefix) {
		return nil, fmt.Errorf("scenario: trace line 1: bad header %q (want %q)", header, traceHeaderPrefix+"N")
	}
	ranks, err := strconv.Atoi(strings.TrimPrefix(header, traceHeaderPrefix))
	if err != nil || ranks < 1 {
		return nil, fmt.Errorf("scenario: trace line 1: bad rank count in header %q", header)
	}
	progs := make([]Program, ranks)
	for lineNo := 2; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("scenario: trace line %d: want `<rank> <op> [key=value...]`, got %q", lineNo, line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 || id >= ranks {
			return nil, fmt.Errorf("scenario: trace line %d: rank %q out of range [0, %d)", lineNo, fields[0], ranks)
		}
		op, err := parseTraceOp(fields[1], fields[2:])
		if err != nil {
			return nil, fmt.Errorf("scenario: trace line %d: %w", lineNo, err)
		}
		progs[id] = append(progs[id], op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: trace: %w", err)
	}
	return progs, nil
}

// parseTraceOp decodes one trace line's op and key=value fields.
func parseTraceOp(kind string, kvs []string) (Op, error) {
	var op Op
	vals := make(map[string]int64, len(kvs))
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return op, fmt.Errorf("malformed field %q (want key=value)", kv)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return op, fmt.Errorf("field %s: bad value %q", k, v)
		}
		if _, dup := vals[k]; dup {
			return op, fmt.Errorf("field %s: duplicated", k)
		}
		vals[k] = n
	}
	need := func(keys ...string) error {
		for _, k := range keys {
			if _, ok := vals[k]; !ok {
				return fmt.Errorf("op %s: missing field %s", kind, k)
			}
		}
		if len(vals) != len(keys) {
			for k := range vals {
				want := false
				for _, w := range keys {
					want = want || k == w
				}
				if !want {
					return fmt.Errorf("op %s: unexpected field %s", kind, k)
				}
			}
		}
		return nil
	}
	var err error
	switch kind {
	case "compute":
		op.Kind = OpCompute
		if err = need("dur"); err == nil && vals["dur"] < 0 {
			err = fmt.Errorf("op compute: negative dur %d", vals["dur"])
		}
	case "send":
		op.Kind = OpSend
		err = need("peer", "bytes", "tag")
	case "recv":
		op.Kind = OpRecv
		err = need("peer", "tag")
	case "isend":
		op.Kind = OpIsend
		err = need("peer", "bytes", "tag")
	case "wait":
		op.Kind = OpWait
		err = need()
	case "barrier":
		op.Kind = OpBarrier
		err = need("comm")
	case "allreduce":
		op.Kind = OpAllreduce
		err = need("comm", "bytes")
	case "sbrk":
		op.Kind = OpSbrk
		err = need("bytes")
	case "split":
		op.Kind = OpCommSplit
		err = need("comm", "color")
	default:
		err = fmt.Errorf("unknown op %q", kind)
	}
	if err != nil {
		return op, err
	}
	op.Dur = vtime.Duration(vals["dur"])
	op.Peer = int(vals["peer"])
	op.Bytes = uint64(vals["bytes"])
	op.Tag = int(vals["tag"])
	op.Comm = int(vals["comm"])
	op.Color = int(vals["color"])
	return op, nil
}
