package scenario

import (
	"fmt"
	"reflect"
	"testing"

	"mana/internal/vtime"
)

// This file pins the compiled "default" and "overlap" library specs
// against verbatim copies of the Go workload generators they replaced
// (internal/rank/workload.go before the scenario engine landed). The
// acceptance bar for the redesign was byte-identical op streams — same
// ops, same jittered durations bit for bit — so every golden report in
// the repo survived the switch untouched.

type legacyConfig struct {
	Ranks       int
	Steps       int
	Seed        uint64
	ComputeMean vtime.Duration
	MsgBytes    uint64
	ReduceBytes uint64
	GroupSize   int
}

func legacyDefaults(ranks, steps int, seed uint64) legacyConfig {
	return legacyConfig{
		Ranks:       ranks,
		Steps:       steps,
		Seed:        seed,
		ComputeMean: 250 * vtime.Microsecond,
		MsgBytes:    64 << 10,
		ReduceBytes: 8 << 10,
	}
}

// legacyDefaultScript is generateDefaultScript as deleted from
// internal/rank/workload.go, retyped onto scenario.Op.
func legacyDefaultScript(id int, cfg legacyConfig) []Op {
	rng := vtime.NewRNG(cfg.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
	right := (id + 1) % cfg.Ranks
	left := (id - 1 + cfg.Ranks) % cfg.Ranks
	var script []Op
	for step := 0; step < cfg.Steps; step++ {
		dur := vtime.Duration(float64(cfg.ComputeMean) * rng.Jitter(0.3))
		script = append(script, Op{Kind: OpCompute, Dur: dur})
		if cfg.Ranks > 1 {
			if step%4 == 3 {
				script = append(script,
					Op{Kind: OpIsend, Peer: right, Bytes: cfg.MsgBytes, Tag: step},
					Op{Kind: OpRecv, Peer: left, Tag: step},
					Op{Kind: OpWait},
				)
			} else {
				script = append(script,
					Op{Kind: OpSend, Peer: right, Bytes: cfg.MsgBytes, Tag: step},
					Op{Kind: OpRecv, Peer: left, Tag: step},
				)
			}
		}
		if step%3 == 2 {
			script = append(script, Op{Kind: OpAllreduce, Bytes: cfg.ReduceBytes})
		}
		if step%5 == 4 {
			script = append(script, Op{Kind: OpBarrier})
		}
		if step%7 == 6 {
			script = append(script, Op{Kind: OpSbrk, Bytes: 256 << 10})
		}
	}
	return script
}

// legacyOverlapScript is generateOverlapScript as deleted from
// internal/rank/workload.go, retyped onto scenario.Op.
func legacyOverlapScript(id int, cfg legacyConfig) []Op {
	g := cfg.GroupSize
	if g < 2 {
		g = 2
	}
	if g > cfg.Ranks {
		g = cfg.Ranks
	}
	rng := vtime.NewRNG(cfg.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
	right := (id + 1) % cfg.Ranks
	left := (id - 1 + cfg.Ranks) % cfg.Ranks
	script := []Op{
		{Kind: OpCommSplit, Comm: 0, Color: id / g},
		{Kind: OpCommSplit, Comm: 0, Color: (id + g/2) / g},
	}
	for step := 0; step < cfg.Steps; step++ {
		dur := vtime.Duration(float64(cfg.ComputeMean) * rng.Jitter(0.3))
		script = append(script, Op{Kind: OpCompute, Dur: dur})
		if cfg.Ranks > 1 && step%2 == 1 {
			script = append(script,
				Op{Kind: OpSend, Peer: right, Bytes: cfg.MsgBytes, Tag: step},
				Op{Kind: OpRecv, Peer: left, Tag: step},
			)
		}
		script = append(script, Op{Kind: OpAllreduce, Comm: 1, Bytes: cfg.ReduceBytes})
		dur = vtime.Duration(float64(cfg.ComputeMean) * rng.Jitter(0.3) / 2)
		script = append(script, Op{Kind: OpCompute, Dur: dur})
		script = append(script, Op{Kind: OpBarrier, Comm: 2})
		if step%5 == 4 {
			script = append(script, Op{Kind: OpSbrk, Bytes: 256 << 10})
		}
	}
	return script
}

func diffPrograms(t *testing.T, label string, got Program, want []Op) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: compiled %d ops, legacy generator produced %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: op %d differs:\n  compiled: %+v\n  legacy:   %+v", label, i, got[i], want[i])
		}
	}
}

// TestDefaultSpecMatchesLegacyGenerator pins the shipped default spec to
// the deleted generateDefaultScript, op for op and bit for bit, across a
// grid of shapes and seeds (including the 1-rank degenerate case and the
// 8x30 job every golden report uses).
func TestDefaultSpecMatchesLegacyGenerator(t *testing.T) {
	spec, err := Load("default")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ranks, steps int
		seed         uint64
	}{
		{1, 12, 42}, {2, 7, 1}, {4, 10, 7}, {8, 30, 42}, {8, 30, 7},
		{13, 23, 99}, {64, 9, 0}, {512, 5, 42},
	}
	for _, tc := range cases {
		progs, err := spec.Compile(Params{Ranks: tc.ranks, Steps: tc.steps, Seed: tc.seed})
		if err != nil {
			t.Fatalf("compile(%+v): %v", tc, err)
		}
		cfg := legacyDefaults(tc.ranks, tc.steps, tc.seed)
		for id := 0; id < tc.ranks; id++ {
			label := fmtLabel("default", tc.ranks, tc.steps, tc.seed, 0, id)
			diffPrograms(t, label, progs[id], legacyDefaultScript(id, cfg))
		}
	}
}

// TestOverlapSpecMatchesLegacyGenerator pins the shipped overlap spec to
// the deleted generateOverlapScript, including group-size overrides and
// the clamp when the group exceeds the rank count.
func TestOverlapSpecMatchesLegacyGenerator(t *testing.T) {
	spec, err := Load("overlap")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ranks, steps int
		seed         uint64
		group        int // 0 = the spec's own group (4), matching legacy default
	}{
		{8, 30, 42, 0}, {12, 8, 7, 0}, {64, 6, 11, 8}, {16, 10, 3, 2},
		{3, 9, 5, 4}, {4, 5, 21, 16}, {512, 5, 42, 0},
	}
	for _, tc := range cases {
		progs, err := spec.Compile(Params{Ranks: tc.ranks, Steps: tc.steps, Seed: tc.seed, Group: tc.group})
		if err != nil {
			t.Fatalf("compile(%+v): %v", tc, err)
		}
		cfg := legacyDefaults(tc.ranks, tc.steps, tc.seed)
		cfg.GroupSize = tc.group
		if tc.group == 0 {
			cfg.GroupSize = 4
		}
		for id := 0; id < tc.ranks; id++ {
			label := fmtLabel("overlap", tc.ranks, tc.steps, tc.seed, tc.group, id)
			diffPrograms(t, label, progs[id], legacyOverlapScript(id, cfg))
		}
	}
}

func fmtLabel(spec string, ranks, steps int, seed uint64, group, id int) string {
	return fmt.Sprintf("%s ranks=%d steps=%d seed=%d group=%d rank=%d", spec, ranks, steps, seed, group, id)
}

// TestCompileDeterministic is the compile half of the determinism
// property: the same spec and Params compile to deeply equal programs on
// every call.
func TestCompileDeterministic(t *testing.T) {
	for _, name := range Names() {
		spec, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		p := Params{Ranks: 16, Steps: 12, Seed: 1234}
		a, err := spec.Compile(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := spec.Compile(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("spec %s: two compilations of the same Params differ", name)
		}
	}
}
