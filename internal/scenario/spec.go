package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"mana/internal/faultplan"
	"mana/internal/storage"
	"mana/internal/vtime"
)

// Spec is a declarative workload description. It is pure data: the shape
// of a run (communicator splits, phases of per-step operations, the
// checkpoint-trigger policy) without rank counts, step counts or seeds —
// those arrive at compile time as Params, so one spec file serves every
// job size in the smoke matrix.
type Spec struct {
	// Name identifies the spec in reports and error messages; for library
	// specs it matches the file name.
	Name string `json:"name"`
	// Description is a one-line summary shown in documentation.
	Description string `json:"description,omitempty"`
	// Splits are comm-splits of MPI_COMM_WORLD executed once, in order,
	// before the first phase. The i-th split populates communicator slot
	// i+1 on every rank.
	Splits []SplitSpec `json:"splits,omitempty"`
	// Phases run in order; each repeats its op list for a number of steps.
	Phases []PhaseSpec `json:"phases"`
	// Checkpoints is the trigger policy armed when the spec runs under
	// cmd/manasim: one trigger per entry, all firing at the CLI's
	// -ckpt-at time. Empty means the default policy (at, in-flight,
	// mid-collective).
	Checkpoints []CheckpointSpec `json:"checkpoints,omitempty"`
	// Islands hints how many event-queue lanes the scheduler should
	// partition the ranks across — a workload that clusters its traffic
	// (ring exchanges over split communicators, say) can name the lane
	// count that matches its structure. The CLI's -islands flag
	// overrides it; zero means no preference. It is purely a
	// performance hint: the island count never changes a run's
	// observable output, only how much of it can execute in parallel.
	Islands int `json:"islands,omitempty"`
	// Faults is the spec's declarative fault-injection plan (see the
	// faultplan package): an ordered list of one-shot failures at named
	// protocol points, plus an optional restart budget. The CLI's -faults
	// flag overrides it; when either is present the legacy
	// -fail-after/-fail-delay failure scenario is disabled.
	Faults *faultplan.Plan `json:"faults,omitempty"`
	// Storage is the spec's checkpoint I/O configuration (see the storage
	// package): contended PFS bandwidth, burst-buffer staging, delta-page
	// compression. The CLI's -storage flag overrides it; individual
	// storage flags alongside a spec-declared block (without that
	// override) are rejected by name.
	Storage *storage.Spec `json:"storage,omitempty"`
}

// SplitSpec describes one MPI_Comm_split of the world communicator into
// contiguous groups: rank id contributes colour (id+shift)/group.
type SplitSpec struct {
	// Group is the sub-communicator width (at least 2). A compile-time
	// Params.Group override replaces it on every split.
	Group int `json:"group"`
	// Shift offsets the grouping so the communicators straddle those of
	// an unshifted split.
	Shift int `json:"shift,omitempty"`
	// ShiftHalfGroup sets the shift to half the (possibly overridden,
	// possibly clamped) group width, whatever it ends up being.
	ShiftHalfGroup bool `json:"shift_half_group,omitempty"`
}

// PhaseSpec is a run of identical steps.
type PhaseSpec struct {
	// Name labels the phase in error messages.
	Name string `json:"name"`
	// Steps is the phase's iteration count; 0 means "use Params.Steps",
	// which is how a single-phase spec inherits the CLI's -steps flag.
	Steps int `json:"steps,omitempty"`
	// Ops are emitted in order on every step of the phase.
	Ops []OpSpec `json:"ops"`
}

// WhenSpec gates an op to a periodic subset of a phase's steps:
// step%every == offset (or every step except those, with invert).
type WhenSpec struct {
	Every  int  `json:"every"`
	Offset int  `json:"offset,omitempty"`
	Invert bool `json:"invert,omitempty"`
}

func (w *WhenSpec) match(step int) bool {
	if w == nil {
		return true
	}
	hit := step%w.Every == w.Offset
	if w.Invert {
		return !hit
	}
	return hit
}

// OpSpec is one operation pattern within a phase step. Op selects the
// pattern; the other fields parameterise it:
//
//	compute   — advance the rank's clock by mean × jitter × scale
//	ring      — exchange with ring neighbours (mode send|isend, dir right|left)
//	alltoall  — send bytes to every other rank, then receive from each
//	scatter   — root sends bytes to every other rank; others receive
//	gather    — every other rank sends bytes to root; root receives
//	pipeline  — receive from rank-1, send to rank+1 (chain dataflow)
//	allreduce — collective reduction of bytes on communicator comm
//	barrier   — collective barrier on communicator comm
//	sbrk      — grow the rank's heap by bytes
type OpSpec struct {
	Op string `json:"op"`
	// Mean is the nominal compute duration (Go duration syntax, e.g.
	// "250us"); compute only.
	Mean string `json:"mean,omitempty"`
	// Jitter spreads compute durations multiplicatively in [1-j, 1+j],
	// drawn from the rank's deterministic per-rank stream.
	Jitter float64 `json:"jitter,omitempty"`
	// Scale multiplies the compute duration after jitter (default 1).
	Scale float64 `json:"scale,omitempty"`
	// Bytes is the payload (point-to-point and allreduce) or growth (sbrk).
	Bytes uint64 `json:"bytes,omitempty"`
	// BytesJitter spreads point-to-point payload sizes multiplicatively,
	// one deterministic draw per emitted message.
	BytesJitter float64 `json:"bytes_jitter,omitempty"`
	// Mode picks the ring exchange flavour: "send" (default, blocking) or
	// "isend" (nonblocking send + recv + wait, leaving a request handle
	// live across the receive).
	Mode string `json:"mode,omitempty"`
	// Dir picks the ring direction: "right" (default) or "left".
	Dir string `json:"dir,omitempty"`
	// Comm is the communicator slot for collectives (0 = world, i = the
	// i-th split's communicator).
	Comm int `json:"comm,omitempty"`
	// Root is the scatter/gather root rank (default 0), also the rank
	// selected by Who.
	Root int `json:"root,omitempty"`
	// Who restricts compute/sbrk ops to a subset of ranks: "all"
	// (default), "root", or "others".
	Who string `json:"who,omitempty"`
	// When gates the op to a periodic subset of steps.
	When *WhenSpec `json:"when,omitempty"`

	mean vtime.Duration // parsed from Mean during validation
}

// CheckpointSpec is one armed checkpoint trigger.
type CheckpointSpec struct {
	// Kind is the trigger condition: "at" (fire at the trigger time),
	// "in-flight" (…once point-to-point messages are in flight),
	// "mid-collective" (…once a collective is partially arrived), or
	// "forming-colls" (…once at least Colls collectives are forming).
	Kind string `json:"kind"`
	// Colls is the forming-colls threshold; required for that kind only.
	Colls int `json:"colls,omitempty"`
}

// Parse decodes and validates a spec. Unknown fields, malformed JSON and
// semantic errors are all reported with the offending field named.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: parsing spec: trailing data after the spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// errf builds a validation error of the form
// `scenario: spec "name": <path>: <problem>`.
func (s *Spec) errf(path, format string, args ...any) error {
	return fmt.Errorf("scenario: spec %q: %s: %s", s.Name, path, fmt.Sprintf(format, args...))
}

// Validate checks the spec's semantic constraints, naming the offending
// field in every error, and resolves parsed forms (durations).
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec: name: required")
	}
	for i, sp := range s.Splits {
		path := fmt.Sprintf("splits[%d]", i)
		if sp.Group < 2 {
			return s.errf(path+".group", "must be at least 2 (got %d)", sp.Group)
		}
		if sp.Shift < 0 {
			return s.errf(path+".shift", "must be non-negative (got %d)", sp.Shift)
		}
		if sp.Shift > 0 && sp.ShiftHalfGroup {
			return s.errf(path+".shift", "cannot combine with shift_half_group")
		}
	}
	if s.Islands < 0 {
		return s.errf("islands", "must be non-negative (got %d)", s.Islands)
	}
	if s.Faults != nil {
		if err := s.Faults.ValidateNamed(s.errf); err != nil {
			return err
		}
	}
	if s.Storage != nil {
		if err := s.Storage.ValidateNamed(func(path, format string, args ...any) error {
			return s.errf("storage."+path, format, args...)
		}); err != nil {
			return err
		}
	}
	if len(s.Phases) == 0 {
		return s.errf("phases", "at least one phase required")
	}
	for pi := range s.Phases {
		ph := &s.Phases[pi]
		path := fmt.Sprintf("phases[%d]", pi)
		if ph.Name == "" {
			return s.errf(path+".name", "required")
		}
		if ph.Steps < 0 {
			return s.errf(path+".steps", "must be non-negative (got %d)", ph.Steps)
		}
		if len(ph.Ops) == 0 {
			return s.errf(path+".ops", "at least one op required")
		}
		for oi := range ph.Ops {
			if err := s.validateOp(&ph.Ops[oi], fmt.Sprintf("%s.ops[%d]", path, oi)); err != nil {
				return err
			}
		}
	}
	for i, ck := range s.Checkpoints {
		path := fmt.Sprintf("checkpoints[%d]", i)
		switch ck.Kind {
		case "at", "in-flight", "mid-collective":
			if ck.Colls != 0 {
				return s.errf(path+".colls", "only valid for kind \"forming-colls\"")
			}
		case "forming-colls":
			if ck.Colls < 1 {
				return s.errf(path+".colls", "must be at least 1 (got %d)", ck.Colls)
			}
		default:
			return s.errf(path+".kind", "unknown kind %q (want at, in-flight, mid-collective or forming-colls)", ck.Kind)
		}
	}
	return nil
}

func (s *Spec) validateOp(op *OpSpec, path string) error {
	if op.When != nil {
		if op.When.Every < 1 {
			return s.errf(path+".when.every", "must be at least 1 (got %d)", op.When.Every)
		}
		if op.When.Offset < 0 || op.When.Offset >= op.When.Every {
			return s.errf(path+".when.offset", "must be in [0, every) (got %d with every=%d)", op.When.Offset, op.When.Every)
		}
	}
	if op.Root < 0 {
		return s.errf(path+".root", "must be non-negative (got %d)", op.Root)
	}
	switch op.Who {
	case "", "all", "root", "others":
	default:
		return s.errf(path+".who", "unknown selector %q (want all, root or others)", op.Who)
	}
	if op.Mean != "" && op.Op != "compute" {
		return s.errf(path+".mean", "only valid for op \"compute\"")
	}
	if op.Jitter < 0 || op.Jitter >= 1 {
		return s.errf(path+".jitter", "must be in [0, 1) (got %g)", op.Jitter)
	}
	if op.BytesJitter < 0 || op.BytesJitter >= 1 {
		return s.errf(path+".bytes_jitter", "must be in [0, 1) (got %g)", op.BytesJitter)
	}
	if op.Scale < 0 {
		return s.errf(path+".scale", "must be non-negative (got %g)", op.Scale)
	}
	if op.Comm < 0 || op.Comm > len(s.Splits) {
		return s.errf(path+".comm", "slot %d out of range: spec has %d splits (valid slots 0..%d)", op.Comm, len(s.Splits), len(s.Splits))
	}

	needBytes := func() error {
		if op.Bytes == 0 {
			return s.errf(path+".bytes", "required for op %q", op.Op)
		}
		return nil
	}
	p2p := false
	switch op.Op {
	case "compute":
		if op.Mean == "" {
			return s.errf(path+".mean", "required for op \"compute\"")
		}
		d, err := time.ParseDuration(op.Mean)
		if err != nil || d <= 0 {
			return s.errf(path+".mean", "not a positive duration: %q", op.Mean)
		}
		op.mean = vtime.Duration(d)
	case "ring":
		switch op.Mode {
		case "", "send", "isend":
		default:
			return s.errf(path+".mode", "unknown mode %q (want send or isend)", op.Mode)
		}
		switch op.Dir {
		case "", "right", "left":
		default:
			return s.errf(path+".dir", "unknown dir %q (want right or left)", op.Dir)
		}
		if err := needBytes(); err != nil {
			return err
		}
		p2p = true
	case "alltoall", "scatter", "gather", "pipeline":
		if err := needBytes(); err != nil {
			return err
		}
		p2p = true
	case "allreduce", "sbrk":
		if err := needBytes(); err != nil {
			return err
		}
	case "barrier":
		if op.Bytes != 0 {
			return s.errf(path+".bytes", "not valid for op \"barrier\"")
		}
	case "":
		return s.errf(path+".op", "required")
	default:
		return s.errf(path+".op", "unknown op %q (want compute, ring, alltoall, scatter, gather, pipeline, allreduce, barrier or sbrk)", op.Op)
	}

	if op.Jitter > 0 && op.Op != "compute" {
		return s.errf(path+".jitter", "only valid for op \"compute\" (use bytes_jitter for payload spread)")
	}
	if op.Scale != 0 && op.Op != "compute" {
		return s.errf(path+".scale", "only valid for op \"compute\"")
	}
	if op.BytesJitter > 0 && !p2p {
		return s.errf(path+".bytes_jitter", "only valid for point-to-point ops (op %q would break SPMD agreement)", op.Op)
	}
	if op.Who != "" && op.Op != "compute" && op.Op != "sbrk" {
		return s.errf(path+".who", "only valid for compute and sbrk (op %q must stay SPMD)", op.Op)
	}
	if op.Comm != 0 && op.Op != "allreduce" && op.Op != "barrier" {
		return s.errf(path+".comm", "only valid for allreduce and barrier")
	}
	if op.Root != 0 && op.Op != "scatter" && op.Op != "gather" && op.Who == "" {
		return s.errf(path+".root", "only valid for scatter, gather, or ops gated by \"who\"")
	}
	return nil
}

// UsesGroup reports whether a compile-time group override would change
// the compiled programs — i.e. whether the spec performs comm-splits.
func (s *Spec) UsesGroup() bool { return len(s.Splits) > 0 }
