package scenario

import (
	"fmt"

	"mana/internal/vtime"
)

// Params sizes a compilation: everything about a run that is not part of
// the workload's shape.
type Params struct {
	// Ranks is the number of ranks to compile programs for.
	Ranks int
	// Steps is the iteration count for phases that do not pin their own.
	Steps int
	// Seed drives the per-rank jitter streams; the same spec, Params and
	// seed always compile to bit-identical programs.
	Seed uint64
	// Group, when non-zero, overrides the group width of every comm-split
	// in the spec (clamped to Ranks).
	Group int
}

// Compile materialises one Program per rank. Compilation is sequential
// and deterministic: each rank's jitter stream is seeded from Seed and
// the rank id alone, so programs are independent of compilation order.
func (s *Spec) Compile(p Params) ([]Program, error) {
	// Re-validate so programmatically built specs get the same field-level
	// errors (and duration parsing) as file-loaded ones.
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if p.Ranks < 1 {
		return nil, fmt.Errorf("scenario: compile %q: ranks must be at least 1 (got %d)", s.Name, p.Ranks)
	}
	if p.Steps < 0 {
		return nil, fmt.Errorf("scenario: compile %q: steps must be non-negative (got %d)", s.Name, p.Steps)
	}
	if p.Group != 0 && p.Group < 2 {
		return nil, fmt.Errorf("scenario: compile %q: group must be at least 2 (got %d)", s.Name, p.Group)
	}
	for pi, ph := range s.Phases {
		for oi, op := range ph.Ops {
			if (op.Op == "scatter" || op.Op == "gather" || op.Who == "root" || op.Who == "others") && op.Root >= p.Ranks {
				return nil, fmt.Errorf("scenario: compile %q: phases[%d].ops[%d].root: rank %d out of range for %d ranks", s.Name, pi, oi, op.Root, p.Ranks)
			}
		}
	}
	progs := make([]Program, p.Ranks)
	for id := 0; id < p.Ranks; id++ {
		progs[id] = s.compileRank(id, p)
	}
	return progs, nil
}

func (s *Spec) compileRank(id int, p Params) Program {
	rng := vtime.NewRNG(p.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
	right := (id + 1) % p.Ranks
	left := (id - 1 + p.Ranks) % p.Ranks

	var prog Program
	for _, sp := range s.Splits {
		g := sp.Group
		if p.Group > 0 {
			g = p.Group
		}
		if g > p.Ranks {
			g = p.Ranks
		}
		shift := sp.Shift
		if sp.ShiftHalfGroup {
			shift = g / 2
		}
		prog = append(prog, Op{Kind: OpCommSplit, Comm: 0, Color: (id + shift) / g})
	}

	step := 0
	for _, ph := range s.Phases {
		steps := ph.Steps
		if steps == 0 {
			steps = p.Steps
		}
		for ps := 0; ps < steps; ps++ {
			for _, op := range ph.Ops {
				if !op.When.match(ps) {
					continue
				}
				if !op.emitFor(id) {
					continue
				}
				switch op.Op {
				case "compute":
					scale := op.Scale
					if scale == 0 {
						scale = 1
					}
					dur := vtime.Duration(float64(op.mean) * rng.Jitter(op.Jitter) * scale)
					prog = append(prog, Op{Kind: OpCompute, Dur: dur})
				case "ring":
					if p.Ranks < 2 {
						continue
					}
					to, from := right, left
					if op.Dir == "left" {
						to, from = left, right
					}
					if op.Mode == "isend" {
						prog = append(prog,
							Op{Kind: OpIsend, Peer: to, Bytes: op.payload(rng), Tag: step},
							Op{Kind: OpRecv, Peer: from, Tag: step},
							Op{Kind: OpWait},
						)
					} else {
						prog = append(prog,
							Op{Kind: OpSend, Peer: to, Bytes: op.payload(rng), Tag: step},
							Op{Kind: OpRecv, Peer: from, Tag: step},
						)
					}
				case "alltoall":
					if p.Ranks < 2 {
						continue
					}
					for k := 1; k < p.Ranks; k++ {
						prog = append(prog, Op{Kind: OpSend, Peer: (id + k) % p.Ranks, Bytes: op.payload(rng), Tag: step})
					}
					for k := 1; k < p.Ranks; k++ {
						prog = append(prog, Op{Kind: OpRecv, Peer: (id + k) % p.Ranks, Tag: step})
					}
				case "scatter":
					if p.Ranks < 2 {
						continue
					}
					if id == op.Root {
						for peer := 0; peer < p.Ranks; peer++ {
							if peer == op.Root {
								continue
							}
							prog = append(prog, Op{Kind: OpSend, Peer: peer, Bytes: op.payload(rng), Tag: step})
						}
					} else {
						prog = append(prog, Op{Kind: OpRecv, Peer: op.Root, Tag: step})
					}
				case "gather":
					if p.Ranks < 2 {
						continue
					}
					if id == op.Root {
						for peer := 0; peer < p.Ranks; peer++ {
							if peer == op.Root {
								continue
							}
							prog = append(prog, Op{Kind: OpRecv, Peer: peer, Tag: step})
						}
					} else {
						prog = append(prog, Op{Kind: OpSend, Peer: op.Root, Bytes: op.payload(rng), Tag: step})
					}
				case "pipeline":
					if p.Ranks < 2 {
						continue
					}
					if id > 0 {
						prog = append(prog, Op{Kind: OpRecv, Peer: id - 1, Tag: step})
					}
					if id < p.Ranks-1 {
						prog = append(prog, Op{Kind: OpSend, Peer: id + 1, Bytes: op.payload(rng), Tag: step})
					}
				case "allreduce":
					prog = append(prog, Op{Kind: OpAllreduce, Comm: op.Comm, Bytes: op.Bytes})
				case "barrier":
					prog = append(prog, Op{Kind: OpBarrier, Comm: op.Comm})
				case "sbrk":
					prog = append(prog, Op{Kind: OpSbrk, Bytes: op.Bytes})
				}
			}
			step++
		}
	}
	return prog
}

// emitFor applies the op's Who selector for the given rank.
func (op *OpSpec) emitFor(id int) bool {
	switch op.Who {
	case "root":
		return id == op.Root
	case "others":
		return id != op.Root
	default:
		return true
	}
}

// payload is the op's point-to-point message size, with one deterministic
// jitter draw per emitted message when bytes_jitter is set.
func (op *OpSpec) payload(rng *vtime.RNG) uint64 {
	if op.BytesJitter <= 0 {
		return op.Bytes
	}
	return uint64(float64(op.Bytes) * rng.Jitter(op.BytesJitter))
}

// MustPrograms loads a library spec and compiles it, panicking on any
// error. It exists for defaults and tests, where the spec is known good.
func MustPrograms(name string, p Params) []Program {
	spec, err := Load(name)
	if err != nil {
		panic(err)
	}
	progs, err := spec.Compile(p)
	if err != nil {
		panic(err)
	}
	return progs
}
