package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestTraceRoundTrip pins the trace format's core property: writing any
// compiled library spec and reading it back reproduces the programs
// exactly, for every op kind the compiler can emit.
func TestTraceRoundTrip(t *testing.T) {
	for _, name := range Names() {
		progs := MustPrograms(name, Params{Ranks: 6, Steps: 12, Seed: 3})
		var buf bytes.Buffer
		if err := WriteTrace(&buf, progs); err != nil {
			t.Fatalf("%s: WriteTrace: %v", name, err)
		}
		got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadTrace: %v", name, err)
		}
		if !reflect.DeepEqual(got, progs) {
			t.Errorf("spec %s: trace round-trip altered the programs", name)
		}
	}
}

// TestTraceWriterDeterministic: same programs, same bytes.
func TestTraceWriterDeterministic(t *testing.T) {
	progs := MustPrograms("overlap", Params{Ranks: 8, Steps: 6, Seed: 5})
	var a, b bytes.Buffer
	if err := WriteTrace(&a, progs); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b, progs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two writes of the same programs differ")
	}
}

// TestTraceReaderToleratesCommentsAndBlanks: traces are text and may be
// annotated by hand.
func TestTraceReaderTolerates(t *testing.T) {
	src := `manatrace v1 ranks=2

# rank 0 does the work
0 compute dur=1000
0 send peer=1 bytes=64 tag=0
1 recv peer=0 tag=0
`
	progs, err := ReadTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 || len(progs[0]) != 2 || len(progs[1]) != 1 {
		t.Fatalf("parsed shape %d/%d/%d, want 2 ranks with 2 and 1 ops", len(progs), len(progs[0]), len(progs[1]))
	}
	want := Op{Kind: OpSend, Peer: 1, Bytes: 64, Tag: 0}
	if progs[0][1] != want {
		t.Errorf("op = %+v, want %+v", progs[0][1], want)
	}
}

// TestTraceParseErrorsNameLine pins the error contract: malformed traces
// are rejected with the offending line (or field) named.
func TestTraceParseErrorsNameLine(t *testing.T) {
	cases := []struct {
		label string
		src   string
		want  string
	}{
		{"empty", "", "empty input"},
		{"bad header", "tracefile 1\n", "line 1: bad header"},
		{"bad rank count", "manatrace v1 ranks=zero\n", "line 1: bad rank count"},
		{"rank out of range", "manatrace v1 ranks=2\n5 wait\n", "line 2: rank \"5\" out of range"},
		{"unknown op", "manatrace v1 ranks=1\n0 teleport\n", `line 2: unknown op "teleport"`},
		{"missing field", "manatrace v1 ranks=1\n0 send peer=1 tag=0\n", "line 2: op send: missing field bytes"},
		{"unexpected field", "manatrace v1 ranks=1\n0 wait bytes=4\n", "line 2: op wait: unexpected field bytes"},
		{"malformed field", "manatrace v1 ranks=1\n0 compute dur\n", "line 2: malformed field"},
		{"bad value", "manatrace v1 ranks=1\n0 compute dur=soon\n", `line 2: field dur: bad value "soon"`},
		{"duplicate field", "manatrace v1 ranks=1\n0 sbrk bytes=1 bytes=2\n", "line 2: field bytes: duplicated"},
		{"negative dur", "manatrace v1 ranks=1\n0 compute dur=-5\n", "line 2: op compute: negative dur"},
		{"short line", "manatrace v1 ranks=1\n0\n", "line 2"},
	}
	for _, tc := range cases {
		_, err := ReadTrace(strings.NewReader(tc.src))
		if err == nil {
			t.Errorf("%s: ReadTrace accepted a malformed trace", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q, want substring %q", tc.label, err, tc.want)
		}
	}
}
