// Package scenario turns declarative workload specifications into the
// per-rank operation streams the simulated MPI ranks execute.
//
// A Spec describes a workload's shape as data — communicator splits,
// phases, per-step communication patterns, compute and message-size
// distributions, checkpoint-trigger policy — parsed from a small JSON
// schema whose validation errors name the offending field. Compile turns
// a Spec into one Program per rank: an explicit, fully materialised op
// stream. Compilation is deterministic (same spec, same Params, same
// programs, bit for bit), which is what lets the simulator's determinism
// guarantees extend to data-defined workloads.
//
// The package also defines a trace format (WriteTrace/ReadTrace): a
// recorded per-rank op stream that replays a prior run exactly, without
// the spec that produced it.
package scenario

import "mana/internal/vtime"

// OpKind identifies one scripted workload operation.
type OpKind int

const (
	OpCompute OpKind = iota
	OpSend
	OpRecv
	// OpIsend is a nonblocking send: it injects the message immediately
	// and registers a request handle in the virtualisation table that
	// stays live until the matching OpWait retires it.
	OpIsend
	// OpWait completes the oldest outstanding nonblocking operation,
	// translating and deregistering its request handle.
	OpWait
	OpBarrier
	OpAllreduce
	OpSbrk
	// OpCommSplit is MPI_Comm_split over the parent communicator slot
	// Comm, contributing Color: a collective that, on completion, mints a
	// new sub-communicator handle (registered in the virtualisation
	// table) in the next free communicator slot of every participant that
	// supplied the same colour.
	OpCommSplit
)

// String returns a short name for the op kind.
func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpIsend:
		return "isend"
	case OpWait:
		return "wait"
	case OpBarrier:
		return "barrier"
	case OpAllreduce:
		return "allreduce"
	case OpSbrk:
		return "sbrk"
	case OpCommSplit:
		return "comm-split"
	default:
		return "unknown"
	}
}

// Op is one scripted operation. Which fields are meaningful depends on
// Kind: Dur for compute, Peer+Bytes+Tag for send/recv, Bytes for
// allreduce payload and sbrk growth. Comm selects the communicator slot
// the operation runs over (0 is MPI_COMM_WORLD; slots above 0 are
// sub-communicators in the order the rank's comm-splits created them),
// and Color is the rank's colour contribution to an OpCommSplit.
type Op struct {
	Kind  OpKind
	Dur   vtime.Duration
	Peer  int
	Bytes uint64
	Tag   int
	Comm  int
	Color int
}

// Program is one rank's fully materialised op stream — the only script
// source the rank runtime consumes. Programs come from Spec compilation
// or from a recorded trace; tests build them directly (see PerRank).
type Program []Op

// PerRank builds one Program per rank from a function. It is the
// programmatic escape hatch tests use to stage precise protocol
// situations that no declarative spec should have to express.
func PerRank(ranks int, f func(id int) []Op) []Program {
	progs := make([]Program, ranks)
	for id := range progs {
		progs[id] = f(id)
	}
	return progs
}
