package scenario

import (
	"embed"
	"fmt"
	"os"
	"sort"
	"strings"
)

// The spec library ships the workloads the CI determinism matrix runs.
// Each file in specs/ is a complete Spec whose name matches its file
// name; adding a workload to the simulator is adding a JSON file here
// (or pointing -spec at one outside the tree) — no Go required.
//
//go:embed specs/*.json
var libraryFS embed.FS

// Names lists the library specs in sorted order.
func Names() []string {
	entries, err := libraryFS.ReadDir("specs")
	if err != nil {
		panic(fmt.Sprintf("scenario: embedded spec library unreadable: %v", err))
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}

// IsLibrary reports whether name identifies a shipped library spec.
func IsLibrary(name string) bool {
	_, err := libraryFS.ReadFile("specs/" + name + ".json")
	return err == nil
}

// Load parses a library spec by name.
func Load(name string) (*Spec, error) {
	data, err := libraryFS.ReadFile("specs/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("scenario: no library spec %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return Parse(data)
}

// LoadFile parses a spec from a file on disk.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: reading spec: %w", err)
	}
	return Parse(data)
}
