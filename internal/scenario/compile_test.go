package scenario

import (
	"reflect"
	"runtime"
	"testing"
)

// TestCompileIndependentOfGOMAXPROCS is the compile half of the
// determinism property test: the op streams a spec compiles to do not
// depend on the parallelism of the process doing the compiling.
func TestCompileIndependentOfGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	results := make([][]Program, 0, 2)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		var runs [][]Program
		for i := 0; i < 2; i++ {
			runs = append(runs, MustPrograms("bursty-alltoall", Params{Ranks: 24, Steps: 9, Seed: 77}))
		}
		if !reflect.DeepEqual(runs[0], runs[1]) {
			t.Fatalf("GOMAXPROCS=%d: two compilations differ", procs)
		}
		results = append(results, runs[0])
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatal("compiled programs differ between GOMAXPROCS=1 and GOMAXPROCS=4")
	}
}

// TestSeedChangesJitterOnly: a different seed must change compute
// durations (the jittered part) but not the op structure.
func TestSeedChangesJitterOnly(t *testing.T) {
	a := MustPrograms("default", Params{Ranks: 4, Steps: 12, Seed: 1})
	b := MustPrograms("default", Params{Ranks: 4, Steps: 12, Seed: 2})
	differed := false
	for id := range a {
		if len(a[id]) != len(b[id]) {
			t.Fatalf("rank %d: seed changed program length %d -> %d", id, len(a[id]), len(b[id]))
		}
		for i := range a[id] {
			x, y := a[id][i], b[id][i]
			if x.Kind != y.Kind || x.Peer != y.Peer || x.Tag != y.Tag || x.Comm != y.Comm || x.Color != y.Color {
				t.Fatalf("rank %d op %d: seed changed structure: %+v vs %+v", id, i, x, y)
			}
			if x.Dur != y.Dur {
				differed = true
			}
		}
	}
	if !differed {
		t.Error("changing the seed changed no compute duration")
	}
}

// TestOverlapCompiledShape re-pins the shape the deleted overlap
// generator test asserted, now against the compiled spec: two world
// splits with staggered colours up front, then per step an allreduce on
// slot 1 followed by a barrier on slot 2.
func TestOverlapCompiledShape(t *testing.T) {
	const ranks, steps, group = 12, 6, 4
	progs := MustPrograms("overlap", Params{Ranks: ranks, Steps: steps, Seed: 3})
	for id, prog := range progs {
		if prog[0].Kind != OpCommSplit || prog[1].Kind != OpCommSplit {
			t.Fatalf("rank %d: program does not open with two comm-splits", id)
		}
		if prog[0].Color != id/group {
			t.Errorf("rank %d: first split colour %d, want %d", id, prog[0].Color, id/group)
		}
		if prog[1].Color != (id+group/2)/group {
			t.Errorf("rank %d: second split colour %d, want %d", id, prog[1].Color, (id+group/2)/group)
		}
		var allreduces, barriers int
		lastAllreduce := -1
		for i, op := range prog {
			switch op.Kind {
			case OpAllreduce:
				if op.Comm != 1 {
					t.Errorf("rank %d: allreduce on comm %d, want slot 1", id, op.Comm)
				}
				allreduces++
				lastAllreduce = i
			case OpBarrier:
				if op.Comm != 2 {
					t.Errorf("rank %d: barrier on comm %d, want slot 2", id, op.Comm)
				}
				if lastAllreduce < 0 || lastAllreduce > i {
					t.Errorf("rank %d: barrier at %d not preceded by its step's allreduce", id, i)
				}
				barriers++
			}
		}
		if allreduces != steps || barriers != steps {
			t.Errorf("rank %d: %d allreduces / %d barriers, want %d each", id, allreduces, barriers, steps)
		}
	}
}

// TestDefaultCompiledSPMDCollectives re-pins the deleted generator test:
// all ranks of the default spec share one world collective sequence, and
// the exchange structure matches the documented cadence.
func TestDefaultCompiledSPMDCollectives(t *testing.T) {
	const ranks, steps = 5, 21
	progs := MustPrograms("default", Params{Ranks: ranks, Steps: steps, Seed: 11})
	var ref []OpKind
	for id, prog := range progs {
		var colls []OpKind
		isends, sends := 0, 0
		for _, op := range prog {
			switch op.Kind {
			case OpAllreduce, OpBarrier:
				colls = append(colls, op.Kind)
			case OpIsend:
				isends++
			case OpSend:
				sends++
			}
		}
		if wantIsend := steps / 4; isends != wantIsend {
			t.Errorf("rank %d: %d isends, want %d (every fourth step)", id, isends, wantIsend)
		}
		if wantSend := steps - steps/4; sends != wantSend {
			t.Errorf("rank %d: %d sends, want %d", id, sends, wantSend)
		}
		if id == 0 {
			ref = colls
			continue
		}
		if !reflect.DeepEqual(colls, ref) {
			t.Errorf("rank %d: collective sequence diverges from rank 0", id)
		}
	}
	if len(ref) != steps/3+steps/5 {
		t.Errorf("collective count = %d, want %d allreduces + %d barriers", len(ref), steps/3, steps/5)
	}
}

// TestPerRank pins the programmatic escape hatch used across the
// coordinator tests.
func TestPerRank(t *testing.T) {
	progs := PerRank(3, func(id int) []Op {
		return []Op{{Kind: OpCompute, Dur: 1}, {Kind: OpSend, Peer: id}}
	})
	if len(progs) != 3 {
		t.Fatalf("PerRank built %d programs, want 3", len(progs))
	}
	for id, prog := range progs {
		if len(prog) != 2 || prog[1].Peer != id {
			t.Errorf("rank %d program = %+v", id, prog)
		}
	}
}

// TestMultiPhaseSpecs: phases run in order, a pinned phase length is
// honoured, and the global step counter (used for message tags) runs on
// across phases.
func TestMultiPhaseSpecs(t *testing.T) {
	src := `{
		"name": "phased",
		"phases": [
			{"name": "warmup", "steps": 2, "ops": [{"op": "compute", "mean": "1ms"}]},
			{"name": "main", "ops": [{"op": "ring", "bytes": 64}]}
		]
	}`
	spec, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	progs, err := spec.Compile(Params{Ranks: 2, Steps: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prog := progs[0]
	// 2 warmup computes, then 3 ring exchanges (send+recv each).
	if len(prog) != 2+3*2 {
		t.Fatalf("program length %d, want 8: %+v", len(prog), prog)
	}
	if prog[0].Kind != OpCompute || prog[1].Kind != OpCompute {
		t.Fatal("warmup phase did not run first")
	}
	// Tags continue from the global step counter: first ring step is step 2.
	if prog[2].Kind != OpSend || prog[2].Tag != 2 {
		t.Errorf("first exchange op = %+v, want a send tagged with global step 2", prog[2])
	}
	if last := prog[len(prog)-1]; last.Tag != 4 {
		t.Errorf("last exchange tag = %d, want 4", last.Tag)
	}
}
