package kernelsim

import (
	"testing"

	"mana/internal/virtid"
	"mana/internal/vtime"
)

func TestPersonalityString(t *testing.T) {
	if Unpatched.String() != "unpatched" {
		t.Errorf("Unpatched.String() = %q", Unpatched.String())
	}
	if Patched.String() != "patched(FSGSBASE)" {
		t.Errorf("Patched.String() = %q", Patched.String())
	}
	if Personality(99).String() != "unknown" {
		t.Errorf("unknown personality should stringify as unknown")
	}
}

func TestFSSwitchCostPatchedMuchCheaper(t *testing.T) {
	u := New(Unpatched)
	p := New(Patched)
	if u.FSSwitchCost() <= p.FSSwitchCost() {
		t.Fatalf("unpatched FS switch (%v) should cost more than patched (%v)",
			u.FSSwitchCost(), p.FSSwitchCost())
	}
	// The paper attributes most of the ~2% overhead to this cost; the ratio
	// between syscall and FSGSBASE paths should be large (orders of
	// magnitude, not a few percent).
	if u.FSSwitchCost() < 50*p.FSSwitchCost() {
		t.Errorf("expected >=50x gap between unpatched and patched switch cost, got %v vs %v",
			u.FSSwitchCost(), p.FSSwitchCost())
	}
}

func TestRoundTripIsTwoSwitches(t *testing.T) {
	for _, pers := range []Personality{Unpatched, Patched} {
		k := New(pers)
		if k.RoundTripSwitchCost() != 2*k.FSSwitchCost() {
			t.Errorf("%v: round trip %v != 2 * switch %v", pers, k.RoundTripSwitchCost(), k.FSSwitchCost())
		}
	}
}

func TestPersonalityAccessor(t *testing.T) {
	if New(Patched).Personality() != Patched {
		t.Errorf("Personality() did not round-trip")
	}
}

func TestMANAPerCallOverheadComposition(t *testing.T) {
	k := New(Unpatched)
	base := k.MANAPerCallOverhead(virtid.LookupCounts{}, false)
	if base != k.RoundTripSwitchCost() {
		t.Errorf("no-handle overhead %v != round trip %v", base, k.RoundTripSwitchCost())
	}
	// One lookup of each kind: the per-kind counts sum into the charge.
	withHandles := k.MANAPerCallOverhead(virtid.LookupCounts{Comm: 1, Datatype: 1, Request: 1}, false)
	if withHandles != base+3*k.VirtualizationLookupCost() {
		t.Errorf("handle overhead not additive: %v", withHandles)
	}
	withRecord := k.MANAPerCallOverhead(virtid.LookupCounts{Comm: 1}, true)
	want := base + k.VirtualizationLookupCost() + k.RecordMetadataCost()
	if withRecord != want {
		t.Errorf("recorded overhead = %v, want %v", withRecord, want)
	}
}

func TestOverheadMonotoneInHandles(t *testing.T) {
	k := New(Patched)
	prev := vtime.Duration(-1)
	for n := uint64(0); n < 10; n++ {
		d := k.MANAPerCallOverhead(virtid.LookupCounts{Request: n}, false)
		if d <= prev {
			t.Fatalf("overhead not strictly increasing at n=%d: %v <= %v", n, d, prev)
		}
		prev = d
	}
}

// TestLookupCostTracksVirtidImpl pins the wiring between the selected
// table implementation and the per-call charge: a kernel calibrated for
// the sharded table charges cheaper MPI calls than the mutex baseline.
func TestLookupCostTracksVirtidImpl(t *testing.T) {
	if New(Unpatched).VirtualizationLookupCost() != virtid.MutexLookupCost {
		t.Error("New must default to the MutexTable baseline figure")
	}
	mutex := NewForTable(Unpatched, virtid.ImplMutex)
	sharded := NewForTable(Unpatched, virtid.ImplSharded)
	calls := virtid.LookupCounts{Comm: 1, Datatype: 1, Request: 1}
	if m, s := mutex.MANAPerCallOverhead(calls, true), sharded.MANAPerCallOverhead(calls, true); s >= m {
		t.Errorf("sharded per-call overhead %v should be below mutex %v", s, m)
	}
	want := 3 * (virtid.MutexLookupCost - virtid.ShardedLookupCost)
	got := mutex.MANAPerCallOverhead(calls, true) - sharded.MANAPerCallOverhead(calls, true)
	if got != want {
		t.Errorf("per-call saving = %v, want %v (3 lookups' worth)", got, want)
	}
}

func TestAuxiliaryCostsPositive(t *testing.T) {
	k := New(Unpatched)
	if k.VirtualizationLookupCost() <= 0 || k.RecordMetadataCost() <= 0 || k.SyscallCost() <= 0 {
		t.Errorf("auxiliary costs must be positive")
	}
	if k.PageScanCost() <= 0 || k.PageHashCost() <= 0 {
		t.Errorf("incremental-capture costs must be positive")
	}
	// Reading one dirty bit must be much cheaper than hashing the page it
	// guards, or incremental capture could never beat a full copy.
	if 10*k.PageScanCost() > k.PageHashCost() {
		t.Errorf("page scan %v should be well below page hash %v", k.PageScanCost(), k.PageHashCost())
	}
}

func TestSbrkBehavior(t *testing.T) {
	cases := []struct {
		afterRestart, interposed bool
		want                     SbrkBehavior
	}{
		{false, true, SbrkRedirectedToMmap},
		{true, true, SbrkRedirectedToMmap},
		{true, false, SbrkExtendsLowerHalf},
		{false, false, SbrkRedirectedToMmap},
	}
	for _, c := range cases {
		if got := SbrkBehaviorFor(c.afterRestart, c.interposed); got != c.want {
			t.Errorf("SbrkBehaviorFor(%v,%v) = %v, want %v", c.afterRestart, c.interposed, got, c.want)
		}
	}
}
