// Package kernelsim models the Linux-kernel-dependent costs that dominate
// MANA's runtime overhead in the paper.
//
// Section 3.3 of the paper identifies two sources of overhead:
//
//  1. The FS-register switch. Control transfer between the upper half
//     (application) and the lower half (MPI library) requires changing the
//     x86-64 FS segment register so thread-local storage resolves into the
//     correct half. On an unpatched kernel this requires a system call
//     (arch_prctl), costing on the order of a microsecond round trip; with
//     the FSGSBASE patch the unprivileged WRFSBASE instruction costs only a
//     few nanoseconds.
//  2. Handle virtualisation: a table lookup plus locking for every MPI
//     call that passes a communicator, datatype or request handle. The
//     virtual-to-real translation table itself lives in internal/virtid
//     (two implementations: the MutexTable baseline and the sharded
//     lock-free-read optimisation), along with the calibrated per-lookup
//     cost constants; the Kernel is constructed with the cost of the
//     selected implementation and charges it per translated handle in
//     MANAPerCallOverhead.
//
// The package also models sbrk() semantics for the simulated address space:
// after restart the kernel would extend the *lower-half* data segment on
// sbrk because that is the program it originally loaded, which is why MANA
// interposes on sbrk in the upper-half libc and uses mmap instead (§2.1).
package kernelsim

import (
	"mana/internal/virtid"
	"mana/internal/vtime"
)

// Personality identifies the kernel variant a node runs.
type Personality int

const (
	// Unpatched is a stock Linux kernel in which changing the FS register
	// requires the arch_prctl system call.
	Unpatched Personality = iota
	// Patched is a kernel carrying the FSGSBASE patch (under review at the
	// time of the paper; merged in Linux 5.9), allowing user space to write
	// the FS register directly.
	Patched
)

// String returns a human-readable kernel personality name.
func (p Personality) String() string {
	switch p {
	case Unpatched:
		return "unpatched"
	case Patched:
		return "patched(FSGSBASE)"
	default:
		return "unknown"
	}
}

// Cost constants for the model. The absolute values are calibrated to
// produce the paper's observed shapes (roughly 2% worst-case application
// overhead on an unpatched kernel falling to about 0.6% on a patched one,
// and visible small-message bandwidth degradation only when unpatched).
const (
	// fsSwitchSyscallCost is the cost of one arch_prctl system call to set
	// the FS base register on an unpatched kernel.
	fsSwitchSyscallCost = 900 * vtime.Nanosecond
	// fsSwitchFSGSBASECost is the cost of a WRFSBASE instruction on a
	// patched kernel.
	fsSwitchFSGSBASECost = 6 * vtime.Nanosecond
	// recordMetadataCost is the cost of appending one entry to the
	// record-replay log for calls with persistent effects, or of recording
	// send/receive metadata for the draining algorithm.
	recordMetadataCost = 60 * vtime.Nanosecond
	// syscallBaseCost is the generic cost of an uninteresting system call
	// (used for sbrk/mmap accounting).
	syscallBaseCost = 250 * vtime.Nanosecond
	// checkpointSignalCost is the cost of delivering the coordinator's
	// checkpoint-intent signal to one rank: a signal delivery plus the
	// helper thread waking and inspecting rank state.
	checkpointSignalCost = 3 * vtime.Microsecond
	// drainProbeCost is one iteration of the draining algorithm's probe
	// loop: comparing per-peer send/receive counters and, if a message is
	// outstanding, posting the receive that buffers it (§3.1).
	drainProbeCost = 500 * vtime.Nanosecond
	// drainBufferPerByteCost is the per-byte cost of copying one in-flight
	// message into the checkpoint-time drain buffer.
	drainBufferPerByteCost = vtime.Duration(1) // ~1 GB/s memcpy into the buffer
	// restartReinitCost is the fixed cost, per rank, of discarding the old
	// lower half and bootstrapping a fresh one on restart: loading the MPI
	// and network libraries and re-running MPI_Init (§3.2).
	restartReinitCost = 180 * vtime.Millisecond
	// pageScanCost is the per-page cost of walking the upper half's page
	// tables at incremental-capture time to read the dirty bits (a
	// soft-dirty style scan touches one PTE per resident page).
	pageScanCost = 10 * vtime.Nanosecond
	// pageHashCost is the per-page cost of content-hashing one dirty
	// 4 KiB page for the incremental image's dedup check (~10 GB/s).
	pageHashCost = 400 * vtime.Nanosecond
)

// Kernel is the cost model for one node's kernel.
type Kernel struct {
	personality Personality
	// lookupCost and writeCost are the per-operation virtualisation
	// costs of the selected virtid table implementation: one lookup per
	// translated handle, one write per Register/Deregister.
	lookupCost vtime.Duration
	writeCost  vtime.Duration
}

// New returns a kernel model with the given personality, charging the
// baseline (MutexTable) virtualisation figures.
func New(p Personality) *Kernel {
	return NewForTable(p, virtid.ImplMutex)
}

// NewForTable returns a kernel model calibrated for the given virtid
// table implementation — the rank runtime passes whichever one the job
// selected.
func NewForTable(p Personality, impl virtid.Impl) *Kernel {
	return &Kernel{personality: p, lookupCost: impl.LookupCost(), writeCost: impl.WriteCost()}
}

// Personality reports the kernel variant.
func (k *Kernel) Personality() Personality { return k.personality }

// FSSwitchCost returns the cost of a single FS-register change. Every
// upper→lower or lower→upper control transfer in the split process performs
// one such change.
func (k *Kernel) FSSwitchCost() vtime.Duration {
	if k.personality == Patched {
		return fsSwitchFSGSBASECost
	}
	return fsSwitchSyscallCost
}

// RoundTripSwitchCost returns the cost of a full upper→lower→upper round
// trip (two FS-register changes), which is charged per MPI call made by the
// application under MANA.
func (k *Kernel) RoundTripSwitchCost() vtime.Duration {
	return 2 * k.FSSwitchCost()
}

// VirtualizationLookupCost returns the cost of translating one opaque MPI
// handle through the virtualisation table the kernel was calibrated for.
func (k *Kernel) VirtualizationLookupCost() vtime.Duration {
	return k.lookupCost
}

// VirtualizationLookupOverhead returns the lookup component of a call's
// overhead: one calibrated translation per counted lookup. It is the
// exact term MANAPerCallOverhead charges, exposed so callers accounting
// the lookup share (Stats.LookupTime) cannot drift from the charge.
func (k *Kernel) VirtualizationLookupOverhead(lookups virtid.LookupCounts) vtime.Duration {
	return vtime.Duration(lookups.Total()) * k.lookupCost
}

// HandleWriteCost returns the cost of one virtualisation-table write
// (Register or Deregister), charged by the nonblocking post/wait paths
// that create and retire request handles.
func (k *Kernel) HandleWriteCost() vtime.Duration {
	return k.writeCost
}

// RecordMetadataCost returns the cost of logging one call for record/replay
// or message-drain bookkeeping.
func (k *Kernel) RecordMetadataCost() vtime.Duration {
	return recordMetadataCost
}

// SyscallCost returns the generic system-call cost used for memory
// management operations in the simulated address space.
func (k *Kernel) SyscallCost() vtime.Duration {
	return syscallBaseCost
}

// MANAPerCallOverhead returns the total per-MPI-call overhead MANA
// imposes: the FS round trip, one calibrated table translation per
// handle lookup the call performed (communicators, datatypes, requests —
// counted per kind by the rank runtime, which does the real virtid
// lookups) and, when the call has persistent or in-flight effects, one
// metadata record.
func (k *Kernel) MANAPerCallOverhead(lookups virtid.LookupCounts, recorded bool) vtime.Duration {
	d := k.RoundTripSwitchCost() + k.VirtualizationLookupOverhead(lookups)
	if recorded {
		d += recordMetadataCost
	}
	return d
}

// CheckpointSignalCost returns the cost of delivering the coordinator's
// checkpoint-intent signal to this rank and waking its helper thread.
func (k *Kernel) CheckpointSignalCost() vtime.Duration {
	return checkpointSignalCost
}

// DrainProbeCost returns the cost of one iteration of the drain loop:
// comparing send/receive counters against one peer.
func (k *Kernel) DrainProbeCost() vtime.Duration {
	return drainProbeCost
}

// DrainBufferCost returns the cost of copying one in-flight message of
// the given size into the drain buffer. The probe that discovered the
// message is charged separately (one DrainProbeCost per peer).
func (k *Kernel) DrainBufferCost(bytes uint64) vtime.Duration {
	return vtime.Duration(bytes) * drainBufferPerByteCost
}

// RestartReinitCost returns the per-rank cost of rebuilding the lower
// half on restart (bootstrap load + fresh MPI_Init).
func (k *Kernel) RestartReinitCost() vtime.Duration {
	return restartReinitCost
}

// PageScanCost returns the per-page cost of reading dirty bits out of the
// page tables during an incremental capture. The scan visits every
// upper-half page (that part stays proportional to address-space size —
// it is the cheap part); copying and hashing are charged per dirty page.
func (k *Kernel) PageScanCost() vtime.Duration {
	return pageScanCost
}

// PageHashCost returns the per-dirty-page cost of content-hashing one
// 4 KiB page for the incremental image's dedup index.
func (k *Kernel) PageHashCost() vtime.Duration {
	return pageHashCost
}

// CompressCost returns the CPU cost of feeding bytes of delta payload
// through the checkpoint-time page compressor at nsPerByte (an lz4-class
// software compressor; the storage configuration carries the rate, so
// the same kernel can model faster or slower codecs).
func (k *Kernel) CompressCost(bytes uint64, nsPerByte float64) vtime.Duration {
	if nsPerByte <= 0 {
		return 0
	}
	return vtime.Duration(float64(bytes) * nsPerByte)
}

// SbrkBehavior describes what the (real) kernel would do on an sbrk call in
// a split process, and what MANA does about it.
type SbrkBehavior int

const (
	// SbrkExtendsLowerHalf models the hazard described in §2.1: after
	// restart, the kernel's notion of "the" data segment belongs to the
	// lower-half bootstrap program, so a naive sbrk would grow lower-half
	// memory and corrupt the split.
	SbrkExtendsLowerHalf SbrkBehavior = iota
	// SbrkRedirectedToMmap is MANA's resolution: interpose on sbrk in the
	// upper-half libc and satisfy the request with mmap'd upper-half
	// regions instead.
	SbrkRedirectedToMmap
)

// SbrkBehaviorFor reports how a heap-growth request is handled.
// afterRestart indicates whether the process has been restored from a
// checkpoint image (when the kernel's brk pointer refers to the bootstrap
// program's data segment); interposed indicates whether MANA's sbrk wrapper
// is active.
func SbrkBehaviorFor(afterRestart, interposed bool) SbrkBehavior {
	if interposed {
		return SbrkRedirectedToMmap
	}
	if afterRestart {
		return SbrkExtendsLowerHalf
	}
	// Before the first checkpoint the kernel's brk still refers to the
	// original (upper-half) program, so plain sbrk is harmless; MANA still
	// interposes for uniformity, but the hazard only materialises after
	// restart.
	return SbrkRedirectedToMmap
}
