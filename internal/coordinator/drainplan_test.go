package coordinator

import (
	"strings"
	"testing"

	"mana/internal/rank"
	"mana/internal/scenario"
	"mana/internal/vtime"
)

// --- pure topological-sort properties ---------------------------------

// randomDAG builds a random acyclic drain graph: a hidden permutation
// fixes a legal completion order and edges are only added along it.
func randomDAG(rng *vtime.RNG) ([]drainNode, []drainEdge) {
	n := 2 + rng.Intn(12)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	nodes := make([]drainNode, n)
	for i := range nodes {
		nodes[i] = drainNode{comm: i + 1, seq: uint64(i*10) + uint64(rng.Intn(10))}
	}
	var edges []drainEdge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(10) < 3 {
				edges = append(edges, drainEdge{from: perm[i], to: perm[j], via: rng.Intn(64)})
			}
		}
	}
	return nodes, edges
}

// TestTopoOrderPropertyDeterministicRespectsEdges is the drain-order
// property test: across many random acyclic overlap graphs, the
// topological sort (a) succeeds, (b) is byte-identical when recomputed,
// and (c) places every edge's prerequisite collective before its
// dependent one.
func TestTopoOrderPropertyDeterministicRespectsEdges(t *testing.T) {
	rng := vtime.NewRNG(99)
	for trial := 0; trial < 300; trial++ {
		nodes, edges := randomDAG(rng)
		order1, err := topoOrder(nodes, edges)
		if err != nil {
			t.Fatalf("trial %d: unexpected cycle in DAG: %v", trial, err)
		}
		order2, err := topoOrder(nodes, edges)
		if err != nil {
			t.Fatalf("trial %d: second sort failed: %v", trial, err)
		}
		if len(order1) != len(nodes) {
			t.Fatalf("trial %d: order covers %d of %d nodes", trial, len(order1), len(nodes))
		}
		for i := range order1 {
			if order1[i] != order2[i] {
				t.Fatalf("trial %d: topo order not deterministic:\n  %v\n  %v", trial, order1, order2)
			}
		}
		pos := make(map[int]int, len(order1))
		for i, n := range order1 {
			pos[n] = i
		}
		for _, e := range edges {
			if pos[e.from] >= pos[e.to] {
				t.Fatalf("trial %d: edge %v->%v (rank %d) violated: positions %d >= %d",
					trial, nodes[e.from].label(), nodes[e.to].label(), e.via, pos[e.from], pos[e.to])
			}
		}
	}
}

// TestTopoOrderCycleNamesRanks pins the deadlock diagnostic: a cyclic
// graph must fail, and the error must name the collectives and the
// ranks whose conflicting arrival orders close the cycle.
func TestTopoOrderCycleNamesRanks(t *testing.T) {
	nodes := []drainNode{
		{comm: 3, seq: 1, arrived: []int{7}, waiting: []int{8}},
		{comm: 4, seq: 2, arrived: []int{8}, waiting: []int{7}},
	}
	edges := []drainEdge{
		{from: 0, to: 1, via: 7}, // comm 3 holds rank 7, needed by comm 4
		{from: 1, to: 0, via: 8}, // comm 4 holds rank 8, needed by comm 3
	}
	_, err := topoOrder(nodes, edges)
	if err == nil {
		t.Fatal("cycle not detected")
	}
	for _, want := range []string{"deadlock", "ranks [7 8]", "comm 3", "comm 4", "rank 7", "rank 8"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("cycle diagnostic missing %q: %v", want, err)
		}
	}
}

// --- protocol-level scenarios -----------------------------------------

// splitThenBarriers builds the mis-ordered-collectives deadlock: both
// ranks split the world twice into the same two {0,1} communicators
// (slots 1 and 2), then enter the two barriers in opposite orders.
func splitThenBarriers(id int) []scenario.Op {
	first, second := 1, 2
	if id == 1 {
		first, second = 2, 1
	}
	return []scenario.Op{
		{Kind: scenario.OpCommSplit, Comm: 0, Color: 0},
		{Kind: scenario.OpCommSplit, Comm: 0, Color: 0},
		{Kind: scenario.OpCompute, Dur: 10 * vtime.Microsecond},
		{Kind: scenario.OpBarrier, Comm: first},
		{Kind: scenario.OpBarrier, Comm: second},
	}
}

// TestMisorderedCollectivesDeadlockDiagnosed runs the cyclic scenario
// with no checkpoint at all: the event queue empties with both ranks
// stuck, and the scheduler's stall diagnostic must recognise the
// collective dependency cycle and name the ranks.
func TestMisorderedCollectivesDeadlockDiagnosed(t *testing.T) {
	cfg := smallConfig(2, 0)
	cfg.Triggers = nil
	cfg.Programs = scenario.PerRank(cfg.Ranks, splitThenBarriers)
	c := New(cfg)
	outcome, err := c.Run()
	if outcome != Failed || err == nil {
		t.Fatalf("Run = %v, %v; want failed with a deadlock error", outcome, err)
	}
	for _, want := range []string{"deadlock", "dependency cycle", "ranks [0 1]"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("deadlock diagnostic missing %q: %v", want, err)
		}
	}
}

// TestCheckpointIntentDetectsCycle requests a checkpoint while the
// cyclic scenario is wedged: the drain planner, built at checkpoint-
// intent time, must refuse to order the graph and surface the same
// rank-naming deadlock diagnostic.
func TestCheckpointIntentDetectsCycle(t *testing.T) {
	cfg := smallConfig(2, 0)
	cfg.Triggers = []Trigger{{At: vtime.Time(1 * vtime.Millisecond)}}
	cfg.Programs = scenario.PerRank(cfg.Ranks, splitThenBarriers)
	c := New(cfg)
	outcome, err := c.Run()
	if outcome != Failed || err == nil {
		t.Fatalf("Run = %v, %v; want failed with a drain-order error", outcome, err)
	}
	for _, want := range []string{"checkpoint drain cannot be ordered", "dependency cycle", "ranks [0 1]"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("drain-plan diagnostic missing %q: %v", want, err)
		}
	}
	if len(c.Records()) != 0 {
		t.Errorf("deadlocked job committed %d checkpoints, want 0", len(c.Records()))
	}
}

// overlapConfig builds a coordinator config on the overlap workload
// with a checkpoint requested once at least two collectives are
// simultaneously in flight.
func overlapConfig(ranks, steps int) Config {
	cfg := DefaultConfig()
	cfg.Ranks = ranks
	cfg.Programs = scenario.MustPrograms("overlap", scenario.Params{Ranks: ranks, Steps: steps, Seed: 7})
	cfg.Seed = 7
	cfg.Triggers = nil
	return cfg
}

// TestOverlapDrainCheckpointConsistentCut is the tentpole's acceptance
// scenario at coordinator level: ranks enter collectives on overlapping
// sub-communicators concurrently, a checkpoint is requested while at
// least two are in flight, the planner drains them in dependency order,
// and after an injected failure the restarted run ends bit-identical to
// a run that never checkpointed.
func TestOverlapDrainCheckpointConsistentCut(t *testing.T) {
	base := overlapConfig(12, 8)

	withCkpt := base
	withCkpt.Triggers = []Trigger{{At: vtime.Time(500 * vtime.Microsecond), FormingColls: 2}}
	withCkpt.FailAtCheckpoint = 1
	withCkpt.FailDelay = 100 * vtime.Microsecond

	c := New(withCkpt)
	outcome, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if outcome != Failed {
		t.Fatalf("outcome = %v, want failed (failure injection armed)", outcome)
	}
	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("checkpoints = %d, want 1", len(recs))
	}
	if recs[0].OverlapWidth < 2 {
		t.Errorf("OverlapWidth = %d, want >= 2 (checkpoint must land on simultaneously in-flight collectives)",
			recs[0].OverlapWidth)
	}
	if recs[0].DrainPlanned < recs[0].OverlapWidth {
		t.Errorf("DrainPlanned = %d < OverlapWidth = %d", recs[0].DrainPlanned, recs[0].OverlapWidth)
	}
	if recs[0].DrainEvents == 0 {
		t.Error("DrainEvents = 0, want > 0 (the drain is executed as scheduler events)")
	}
	if err := c.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	// The checkpoint landed on a consistent cut: no rank mid-collective.
	for _, r := range c.Ranks() {
		if r.State() != rank.Running && r.State() != rank.Done {
			t.Errorf("restored rank %d in state %v, want running/done", r.ID(), r.State())
		}
	}
	outcome, err = c.Run()
	if err != nil || outcome != Completed {
		t.Fatalf("post-restart run = %v, %v", outcome, err)
	}

	plain := New(base)
	if outcome, err := plain.Run(); err != nil || outcome != Completed {
		t.Fatalf("uncheckpointed run = %v, %v", outcome, err)
	}
	for i := range plain.Ranks() {
		pr, cr := plain.Ranks()[i], c.Ranks()[i]
		if pt, ct := pr.Clock().Now(), cr.Clock().Now(); pt != ct {
			t.Errorf("rank %d final vtime: uncheckpointed %v vs restarted %v", i, pt, ct)
		}
		if ps, cs := pr.Stats(), cr.Stats(); ps != cs {
			t.Errorf("rank %d stats diverge:\n  uncheckpointed %+v\n  restarted      %+v", i, ps, cs)
		}
	}
	if pf, cf := plain.FinalFingerprint(), c.FinalFingerprint(); pf != cf {
		t.Errorf("final fingerprints diverge: %016x vs %016x", pf, cf)
	}
}

// TestRestartBeforeSplitsReplaysCommIDs checkpoints before any
// comm-split has completed, fails, and restarts: the replayed splits
// must re-mint identical communicator ids and virtual handles, ending
// bit-identical to an uncheckpointed run.
func TestRestartBeforeSplitsReplaysCommIDs(t *testing.T) {
	base := overlapConfig(8, 4)

	withCkpt := base
	withCkpt.Triggers = []Trigger{{At: 0}}
	withCkpt.FailAtCheckpoint = 1
	withCkpt.FailDelay = 50 * vtime.Microsecond

	c := New(withCkpt)
	outcome, err := c.Run()
	if err != nil || outcome != Failed {
		t.Fatalf("Run = %v, %v; want failed", outcome, err)
	}
	if err := c.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	// The image predates the splits: every rank must be back to the
	// world communicator only.
	for _, r := range c.Ranks() {
		if got := r.CommCount(); got != 1 {
			t.Fatalf("restored rank %d has %d comm slots, want 1 (splits belong to the dead timeline)", r.ID(), got)
		}
	}
	outcome, err = c.Run()
	if err != nil || outcome != Completed {
		t.Fatalf("post-restart run = %v, %v", outcome, err)
	}

	plain := New(base)
	if outcome, err := plain.Run(); err != nil || outcome != Completed {
		t.Fatalf("uncheckpointed run = %v, %v", outcome, err)
	}
	for i := range plain.Ranks() {
		pr, cr := plain.Ranks()[i], c.Ranks()[i]
		if pr.CommCount() != cr.CommCount() {
			t.Errorf("rank %d comm slots: %d vs %d", i, pr.CommCount(), cr.CommCount())
			continue
		}
		for slot := 0; slot < pr.CommCount(); slot++ {
			if pr.CommID(slot) != cr.CommID(slot) {
				t.Errorf("rank %d slot %d: comm id %d vs %d (replayed split minted a different id)",
					i, slot, pr.CommID(slot), cr.CommID(slot))
			}
		}
		if ps, cs := pr.Stats(), cr.Stats(); ps != cs {
			t.Errorf("rank %d stats diverge:\n  uncheckpointed %+v\n  restarted      %+v", i, ps, cs)
		}
	}
	if pf, cf := plain.FinalFingerprint(), c.FinalFingerprint(); pf != cf {
		t.Errorf("final fingerprints diverge: %016x vs %016x", pf, cf)
	}
}

// TestDrainHoldsUnneededRanks pins the safe-point rule: while a drain
// is in progress, a rank whose next collective is not part of the plan
// is held at the boundary — its image shows the collective not yet
// entered — while the planned collective's members complete theirs.
func TestDrainHoldsUnneededRanks(t *testing.T) {
	cfg := smallConfig(4, 0)
	cfg.StragglerP = 0
	// One split: comm 1 = {0,1} (colour 0), comm 2 = {2,3} (colour 1).
	// Slot 1 on every rank names its own group's communicator.
	compute := map[int]vtime.Duration{
		0: 10 * vtime.Microsecond,
		1: 50 * vtime.Microsecond,
		2: 30 * vtime.Microsecond,
		3: 200 * vtime.Microsecond,
	}
	cfg.Programs = scenario.PerRank(cfg.Ranks, func(id int) []scenario.Op {
		return []scenario.Op{
			{Kind: scenario.OpCommSplit, Comm: 0, Color: id / 2},
			{Kind: scenario.OpCompute, Dur: compute[id]},
			{Kind: scenario.OpBarrier, Comm: 1},
			{Kind: scenario.OpCompute, Dur: 10 * vtime.Microsecond},
		}
	})
	// Request the checkpoint while rank 0 is inside the {0,1} barrier
	// (from ~20us) and before rank 2 reaches the {2,3} barrier (~36us).
	cfg.Triggers = []Trigger{{At: vtime.Time(25 * vtime.Microsecond)}}
	c := New(cfg)
	outcome, err := c.Run()
	if err != nil || outcome != Completed {
		t.Fatalf("Run = %v, %v", outcome, err)
	}
	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("checkpoints = %d, want 1", len(recs))
	}
	if recs[0].DrainPlanned != 1 || recs[0].OverlapWidth != 1 {
		t.Errorf("drain planned=%d width=%d, want 1/1 (only the {0,1} barrier was in flight)",
			recs[0].DrainPlanned, recs[0].OverlapWidth)
	}
	if err := c.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	// Ranks 0 and 1 completed their planned barrier before the images
	// were taken; rank 2 was held at its unplanned barrier boundary.
	for id, wantPC := range map[int]int{0: 3, 1: 3, 2: 2} {
		if got := c.Ranks()[id].PC(); got != wantPC {
			t.Errorf("rank %d image pc = %d, want %d", id, got, wantPC)
		}
	}
	if got := c.Ranks()[2].Stats().Collectives; got != 0 {
		t.Errorf("held rank 2 completed %d collectives before the checkpoint, want 0", got)
	}
	if outcome, err := c.Run(); err != nil || outcome != Completed {
		t.Fatalf("post-restart run = %v, %v", outcome, err)
	}
	for _, r := range c.Ranks() {
		if got := r.Stats().Collectives; got != 1 {
			t.Errorf("rank %d finished %d collectives, want 1", r.ID(), got)
		}
	}
}

// TestDrainExtendsPlanThroughBlockedChain pins needed-ness propagation:
// the planned collective waits for rank 1, rank 1 is blocked on a
// receive from rank 2, and rank 2's send only happens after its own —
// initially unplanned — barrier. The planner must pull rank 2's barrier
// into the plan (DrainPlanned grows past OverlapWidth) instead of
// holding rank 2 and stalling the drain.
func TestDrainExtendsPlanThroughBlockedChain(t *testing.T) {
	cfg := smallConfig(4, 0)
	cfg.StragglerP = 0
	cfg.Programs = scenario.PerRank(cfg.Ranks, func(id int) []scenario.Op {
		switch id {
		case 0:
			return []scenario.Op{
				{Kind: scenario.OpCommSplit, Comm: 0, Color: 0},
				{Kind: scenario.OpCompute, Dur: 5 * vtime.Microsecond},
				{Kind: scenario.OpBarrier, Comm: 1},
			}
		case 1:
			return []scenario.Op{
				{Kind: scenario.OpCommSplit, Comm: 0, Color: 0},
				{Kind: scenario.OpCompute, Dur: 10 * vtime.Microsecond},
				{Kind: scenario.OpRecv, Peer: 2},
				{Kind: scenario.OpBarrier, Comm: 1},
			}
		case 2:
			return []scenario.Op{
				{Kind: scenario.OpCommSplit, Comm: 0, Color: 1},
				{Kind: scenario.OpCompute, Dur: 30 * vtime.Microsecond},
				{Kind: scenario.OpBarrier, Comm: 1},
				{Kind: scenario.OpSend, Peer: 1, Bytes: 1024},
			}
		default:
			return []scenario.Op{
				{Kind: scenario.OpCommSplit, Comm: 0, Color: 1},
				{Kind: scenario.OpCompute, Dur: 40 * vtime.Microsecond},
				{Kind: scenario.OpBarrier, Comm: 1},
			}
		}
	})
	cfg.Triggers = []Trigger{{At: vtime.Time(20 * vtime.Microsecond)}}
	c := New(cfg)
	outcome, err := c.Run()
	if err != nil || outcome != Completed {
		t.Fatalf("Run = %v, %v", outcome, err)
	}
	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("checkpoints = %d, want 1", len(recs))
	}
	if recs[0].OverlapWidth != 1 {
		t.Errorf("OverlapWidth = %d, want 1 (only the {0,1} barrier was in flight at intent time)", recs[0].OverlapWidth)
	}
	if recs[0].DrainPlanned != 2 {
		t.Errorf("DrainPlanned = %d, want 2 (the {2,3} barrier must join the plan through the blocked-receive chain)",
			recs[0].DrainPlanned)
	}
	if got := c.Ranks()[1].Stats().MsgsRecvd; got != 1 {
		t.Errorf("rank 1 received %d messages, want 1", got)
	}
}

// TestOverlapReportByteIdentical runs the overlap scenario (checkpoint,
// failure, restart) twice and requires byte-identical reports — the
// drain planner introduces no scheduling nondeterminism.
func TestOverlapReportByteIdentical(t *testing.T) {
	run := func() string {
		cfg := overlapConfig(12, 8)
		cfg.Triggers = []Trigger{
			{At: vtime.Time(500 * vtime.Microsecond)},
			{At: vtime.Time(500 * vtime.Microsecond), FormingColls: 2},
		}
		cfg.FailAtCheckpoint = 2
		cfg.FailDelay = 100 * vtime.Microsecond
		c := New(cfg)
		outcome, err := c.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for outcome == Failed {
			if err := c.Restart(); err != nil {
				t.Fatalf("Restart: %v", err)
			}
			if outcome, err = c.Run(); err != nil {
				t.Fatalf("re-Run: %v", err)
			}
		}
		return c.Report()
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Errorf("reports differ between identical runs:\n--- run 1\n%s\n--- run 2\n%s", r1, r2)
	}
	if !strings.Contains(r1, "comm-splits executed=24") {
		t.Errorf("report missing comm-split accounting:\n%s", r1)
	}
}
