package coordinator

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mana/internal/faultplan"
	"mana/internal/scenario"
	"mana/internal/vtime"
)

// faultConfig mirrors the CLI's default scenario — the classic three
// checkpoint triggers at 5ms over the 8-rank default workload — with no
// failure configured; tests overlay their fault plans on top.
func faultConfig() Config {
	cfg := DefaultConfig()
	at := vtime.Time(5 * vtime.Millisecond)
	cfg.Triggers = []Trigger{{At: at}, {At: at, InFlight: true}, {At: at, MidCollective: true}}
	return cfg
}

// completeWithRecovery drives c like the fleet engine does: run, restart
// on failure (retrying past injected restart faults), until completion.
func completeWithRecovery(t *testing.T, c *Coordinator) {
	t.Helper()
	for attempts := 0; ; {
		outcome, err := c.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if outcome == Completed {
			return
		}
		for {
			if attempts++; attempts > 10 {
				t.Fatal("runaway restart loop")
			}
			err = c.Restart()
			if err == nil {
				break
			}
			if !errors.Is(err, ErrRestartFault) {
				t.Fatalf("Restart: %v", err)
			}
		}
	}
}

// faultFreeFingerprint runs the same config without any fault plan and
// returns its final application-state fingerprint — the recovery
// contract's reference value.
func faultFreeFingerprint(t *testing.T, cfg Config) uint64 {
	t.Helper()
	cfg.Faults = nil
	cfg.FailAtCheckpoint = 0
	c := New(cfg)
	completeWithRecovery(t, c)
	return c.FinalFingerprint()
}

// TestTornWriteFallsBackOneGeneration pins the torn-link recovery path:
// a crash mid-image-write commits a partial link, restart verification
// rejects it, and the walk falls back one full generation. The replayed
// timeline must land on the fault-free fingerprint.
func TestTornWriteFallsBackOneGeneration(t *testing.T) {
	cfg := faultConfig()
	cfg.Faults = []faultplan.Fault{
		{Anchor: faultplan.AtImageWrite, N: 3, Kind: faultplan.TornWrite},
	}
	c := New(cfg)
	completeWithRecovery(t, c)

	recs := c.Records()
	if len(recs) != 3 {
		t.Fatalf("checkpoints = %d, want 3", len(recs))
	}
	if recs[2].TornImages != 1 {
		t.Errorf("checkpoint #3 TornImages = %d, want 1", recs[2].TornImages)
	}
	if recs[2].ImageBytes >= recs[1].ImageBytes {
		t.Errorf("torn checkpoint wrote %d bytes, not less than the intact #2's %d",
			recs[2].ImageBytes, recs[1].ImageBytes)
	}
	rst := c.Restarts()
	if len(rst) != 1 {
		t.Fatalf("restarts = %d, want 1", len(rst))
	}
	r := rst[0]
	if r.FromSeq != 2 || r.FallbackDepth != 1 {
		t.Errorf("restored from #%d depth %d, want #2 depth 1", r.FromSeq, r.FallbackDepth)
	}
	if r.TornLinks != 1 || r.CorruptLinks != 0 {
		t.Errorf("torn/corrupt links = %d/%d, want 1/0", r.TornLinks, r.CorruptLinks)
	}
	if r.VerifiedPages == 0 || r.VerifyTime == 0 {
		t.Errorf("verification not accounted: pages=%d time=%v", r.VerifiedPages, r.VerifyTime)
	}
	if r.LostWork <= 0 {
		t.Errorf("LostWork = %v, want > 0 (the fallback re-executes work past checkpoint #2)", r.LostWork)
	}
	if got, want := c.FinalFingerprint(), faultFreeFingerprint(t, cfg); got != want {
		t.Errorf("final fingerprint %016x differs from fault-free %016x", got, want)
	}
}

// TestPageCorruptionDetectedOnRestart pins the silent-corruption path: a
// page-corruption fault damages the image payload without touching the
// capture-time hash memos, so nothing notices until restart verification
// recomputes the hashes and falls back past the corrupt link.
func TestPageCorruptionDetectedOnRestart(t *testing.T) {
	cfg := faultConfig()
	cfg.Faults = []faultplan.Fault{
		{Anchor: faultplan.AtImageWrite, N: 3, Kind: faultplan.PageCorruption, Rank: 0, Pages: 4},
		{Anchor: faultplan.AtCheckpointCommit, N: 3, Kind: faultplan.RankCrash, Delay: 100 * vtime.Microsecond},
	}
	c := New(cfg)
	completeWithRecovery(t, c)

	recs := c.Records()
	if len(recs) != 3 {
		t.Fatalf("checkpoints = %d, want 3", len(recs))
	}
	if recs[2].CorruptPages != 4 {
		t.Errorf("checkpoint #3 CorruptPages = %d, want 4", recs[2].CorruptPages)
	}
	rst := c.Restarts()
	if len(rst) != 1 {
		t.Fatalf("restarts = %d, want 1", len(rst))
	}
	r := rst[0]
	if r.FromSeq != 2 || r.FallbackDepth != 1 || r.CorruptLinks != 1 {
		t.Errorf("restored from #%d depth %d corrupt-links %d, want #2 / 1 / 1",
			r.FromSeq, r.FallbackDepth, r.CorruptLinks)
	}
	if got, want := c.FinalFingerprint(), faultFreeFingerprint(t, cfg); got != want {
		t.Errorf("final fingerprint %016x differs from fault-free %016x", got, want)
	}
}

// TestMidDrainCrashReplansAfterRestart pins the drain-start anchor: the
// crash lands while checkpoint #3's collective drain plan is executing,
// the partial plan dies with the timeline, and the owed checkpoint
// re-fires — rebuilding its drain plan — in the replayed timeline.
func TestMidDrainCrashReplansAfterRestart(t *testing.T) {
	cfg := faultConfig()
	cfg.Faults = []faultplan.Fault{
		{Anchor: faultplan.AtDrainStart, N: 3, Kind: faultplan.RankCrash, Delay: 10 * vtime.Microsecond},
	}
	c := New(cfg)
	completeWithRecovery(t, c)

	if got := len(c.Restarts()); got != 1 {
		t.Fatalf("restarts = %d, want 1", got)
	}
	// The crash pre-empted checkpoint #3's commit; the re-fired request
	// must still produce it, so all three checkpoints commit.
	if got := len(c.Records()); got != 3 {
		t.Errorf("checkpoints = %d, want 3: the mid-drain checkpoint must be re-planned after restart", got)
	}
	if r := c.Restarts()[0]; r.FromSeq != 2 || r.FallbackDepth != 0 {
		t.Errorf("restored from #%d depth %d, want #2 depth 0 (both committed links are intact)",
			r.FromSeq, r.FallbackDepth)
	}
	if got, want := c.FinalFingerprint(), faultFreeFingerprint(t, cfg); got != want {
		t.Errorf("final fingerprint %016x differs from fault-free %016x", got, want)
	}
}

// TestRestartFaultFallsBackDeeper pins the double-fault path: the first
// restart attempt crashes mid-restore (poisoning the chosen link), the
// retry walks past it and restores the older generation.
func TestRestartFaultFallsBackDeeper(t *testing.T) {
	cfg := faultConfig()
	cfg.Faults = []faultplan.Fault{
		{Anchor: faultplan.AtCheckpointCommit, N: 2, Kind: faultplan.RankCrash, Delay: 250 * vtime.Microsecond},
		{Anchor: faultplan.AtRestart, N: 1, Kind: faultplan.RankCrash},
	}
	c := New(cfg)
	outcome, err := c.Run()
	if err != nil || outcome != Failed {
		t.Fatalf("Run = %v, %v; want failed outcome", outcome, err)
	}
	err = c.Restart()
	if !errors.Is(err, ErrRestartFault) {
		t.Fatalf("first Restart error = %v, want ErrRestartFault", err)
	}
	if err := c.Restart(); err != nil {
		t.Fatalf("second Restart: %v", err)
	}
	completeWithRecovery(t, c)

	rst := c.Restarts()
	if len(rst) != 1 {
		t.Fatalf("restart records = %d, want 1 (failed attempts do not record)", len(rst))
	}
	r := rst[0]
	if r.FromSeq != 1 || r.FallbackDepth != 1 {
		t.Errorf("restored from #%d depth %d, want #1 depth 1 (checkpoint #2 was poisoned)",
			r.FromSeq, r.FallbackDepth)
	}
	if r.VerifiedPages == 0 {
		t.Error("verification work from the failed attempt was not carried into the record")
	}
	if got, want := c.FinalFingerprint(), faultFreeFingerprint(t, cfg); got != want {
		t.Errorf("final fingerprint %016x differs from fault-free %016x", got, want)
	}
}

// TestRetentionExhaustionNamedError pins the unrecoverable path: with
// only one generation retained and that generation torn, restart has
// nowhere to fall back and must fail with the named sentinel.
func TestRetentionExhaustionNamedError(t *testing.T) {
	cfg := faultConfig()
	cfg.RetainGenerations = 0 // keep only the newest generation
	cfg.Faults = []faultplan.Fault{
		{Anchor: faultplan.AtImageWrite, N: 2, Kind: faultplan.TornWrite},
	}
	c := New(cfg)
	outcome, err := c.Run()
	if err != nil || outcome != Failed {
		t.Fatalf("Run = %v, %v; want failed outcome", outcome, err)
	}
	err = c.Restart()
	if !errors.Is(err, ErrNoVerifiableGeneration) {
		t.Fatalf("Restart error = %v, want ErrNoVerifiableGeneration", err)
	}
	if !strings.Contains(err.Error(), "generations retained") {
		t.Errorf("error %q does not describe the retention window", err)
	}
}

// TestVirtualTimeFaultFiresOnce pins the virtual-time anchor: the crash
// fires at its absolute time, and only once — the restarted timeline
// replays through the firing point without dying again.
func TestVirtualTimeFaultFiresOnce(t *testing.T) {
	cfg := faultConfig()
	cfg.Faults = []faultplan.Fault{
		{Anchor: faultplan.AtVirtualTime, Time: vtime.Time(6 * vtime.Millisecond), Kind: faultplan.RankCrash},
	}
	c := New(cfg)
	completeWithRecovery(t, c)
	if got := len(c.Restarts()); got != 1 {
		t.Errorf("restarts = %d, want exactly 1 (the fault must not re-fire after restart)", got)
	}
	if got, want := c.FinalFingerprint(), faultFreeFingerprint(t, cfg); got != want {
		t.Errorf("final fingerprint %016x differs from fault-free %016x", got, want)
	}
}

// TestFaultPlanDeterministicAcrossWorkers is the parallel-scheduler
// contract extended to fault plans: the multi-failure recovery path must
// render byte-identical reports at any islands/workers setting.
func TestFaultPlanDeterministicAcrossWorkers(t *testing.T) {
	plan := []faultplan.Fault{
		{Anchor: faultplan.AtDrainStart, N: 3, Kind: faultplan.RankCrash, Delay: 10 * vtime.Microsecond},
		{Anchor: faultplan.AtImageWrite, N: 3, Kind: faultplan.TornWrite},
		{Anchor: faultplan.AtRestart, N: 2, Kind: faultplan.RankCrash},
	}
	run := func(islands, workers int) (string, uint64) {
		cfg := faultConfig()
		cfg.Faults = plan
		cfg.Islands = islands
		cfg.Workers = workers
		c := New(cfg)
		completeWithRecovery(t, c)
		var buf bytes.Buffer
		c.WriteReport(&buf)
		return buf.String(), c.FinalFingerprint()
	}
	serial, serialFP := run(0, 1)
	parallel, parallelFP := run(8, 4)
	if serial != parallel {
		t.Errorf("multi-failure report differs between serial and islands=8/workers=4:\n--- serial\n%s\n--- parallel\n%s",
			serial, parallel)
	}
	if serialFP != parallelFP {
		t.Errorf("fingerprints differ: serial %016x, parallel %016x", serialFP, parallelFP)
	}
}

// TestLegacyKnobMatchesPlanEquivalent pins the compatibility contract:
// the FailAtCheckpoint/FailDelay pair and the two-line plan
// faultplan.Legacy compiles to must produce byte-identical reports.
func TestLegacyKnobMatchesPlanEquivalent(t *testing.T) {
	run := func(mut func(*Config)) string {
		cfg := faultConfig()
		mut(&cfg)
		c := New(cfg)
		completeWithRecovery(t, c)
		var buf bytes.Buffer
		c.WriteReport(&buf)
		return buf.String()
	}
	legacy := run(func(cfg *Config) {
		cfg.FailAtCheckpoint = 2
		cfg.FailDelay = 250 * vtime.Microsecond
	})
	plan := faultplan.Legacy(2, 250*vtime.Microsecond)
	compiled, err := plan.Compile(8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	declarative := run(func(cfg *Config) { cfg.Faults = compiled })
	if legacy != declarative {
		t.Errorf("legacy knob and its plan equivalent diverge:\n--- legacy\n%s\n--- plan\n%s", legacy, declarative)
	}
}

// BenchmarkRestartFallback measures the recovery path end to end —
// verification cost included — at increasing fallback depth: a clean
// restart from the newest link, a one-generation fallback past a torn
// link, and a two-deep fallback where the first restart attempt itself
// crashes.
func BenchmarkRestartFallback(b *testing.B) {
	base := DefaultConfig()
	at := vtime.Time(5 * vtime.Millisecond)
	base.Triggers = []Trigger{{At: at}, {At: at, InFlight: true}, {At: at, MidCollective: true}}
	base.Programs = scenario.MustPrograms("default", scenario.Params{Ranks: 8, Steps: 30, Seed: 42})
	for _, tc := range []struct {
		name   string
		faults []faultplan.Fault
	}{
		{"depth0", []faultplan.Fault{
			{Anchor: faultplan.AtCheckpointCommit, N: 3, Kind: faultplan.RankCrash, Delay: 250 * vtime.Microsecond},
		}},
		{"depth1-torn", []faultplan.Fault{
			{Anchor: faultplan.AtImageWrite, N: 3, Kind: faultplan.TornWrite},
		}},
		{"depth2-restart-fault", []faultplan.Fault{
			{Anchor: faultplan.AtImageWrite, N: 3, Kind: faultplan.TornWrite},
			{Anchor: faultplan.AtRestart, N: 1, Kind: faultplan.RankCrash},
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := base
				cfg.Faults = tc.faults
				c := New(cfg)
				for {
					outcome, err := c.Run()
					if err != nil {
						b.Fatalf("Run: %v", err)
					}
					if outcome == Completed {
						break
					}
					for {
						err = c.Restart()
						if err == nil {
							break
						}
						if !errors.Is(err, ErrRestartFault) {
							b.Fatalf("Restart: %v", err)
						}
					}
				}
			}
		})
	}
}
