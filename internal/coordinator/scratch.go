package coordinator

import (
	"mana/internal/memsim"
	"mana/internal/rank"
	"mana/internal/vtime"
)

// Scratch holds the expensive per-run allocations a retired run leaves
// behind so the next run can reuse them: the sharded event-queue lanes,
// the per-rank bookkeeping slices, the collective rendezvous instances
// and the memsim buffer pool. It exists for fleet mode — thousands of
// simulations in one process — where cold-allocating these per run is
// the dominant cost.
//
// Ownership is move-based: New takes the storage out of the Scratch
// (leaving it empty), the run uses it exclusively, and
// Coordinator.Release moves it back reset. A Scratch therefore backs at
// most one live Coordinator; sharing one across concurrent runs is a
// caller bug. The zero point is always restored before reuse — cleared
// slices, cleared map, Reset queues, zeroed buffers — so a run on
// recycled storage is byte-identical to a cold one.
type Scratch struct {
	queues      *vtime.IslandQueues[event]
	islandOf    []int
	inCollComm  []int
	fired       []bool
	lanebufs    []laneBuf
	held        map[int]bool
	ranks       []*rank.Rank
	formingPool []*forming
	// mem is shared with every rank the run builds; unlike the slices
	// above it is internally locked and never moves — rank.ReleaseMem
	// feeds it at retirement and NewPooled draws from it at build time.
	mem *memsim.Pool
}

// NewScratch returns an empty scratch. The first run on it allocates
// cold; every later run reuses what its predecessor left behind.
func NewScratch() *Scratch {
	return &Scratch{
		held: make(map[int]bool),
		mem:  memsim.NewPool(),
	}
}

// MemStats exposes the buffer pool's allocation counters (gets, hits)
// for tests that pin warm-run reuse.
func (s *Scratch) MemStats() (gets, hits uint64) { return s.mem.Stats() }

// takeSlice moves the slice out of *p resized to n zero-valued elements,
// reusing its storage when the capacity suffices.
func takeSlice[T any](p *[]T, n int) []T {
	buf := *p
	*p = nil
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// takeQueues moves the recycled island queues out of the scratch, reset
// to k lanes with the given per-lane size hint, allocating fresh ones on
// a cold scratch.
func (s *Scratch) takeQueues(k, hint int) *vtime.IslandQueues[event] {
	q := s.queues
	s.queues = nil
	if q == nil {
		return vtime.NewIslandQueues[event](k, hint)
	}
	q.Reset(k, hint)
	return q
}

// takeLanebufs moves the window buffers out of the scratch, resized to n
// islands. Recycled buffers keep their grown msgs/arrivals capacity —
// the whole point of pooling them — but start logically empty.
func (s *Scratch) takeLanebufs(n int) []laneBuf {
	bufs := s.lanebufs
	s.lanebufs = nil
	if cap(bufs) < n {
		return make([]laneBuf, n)
	}
	bufs = bufs[:n]
	for i := range bufs {
		b := &bufs[i]
		// Stale entries sit in [len:cap] after the barrier's truncation;
		// clear the full capacity so the previous run's messages and
		// transitions do not outlive it.
		clear(b.msgs[:cap(b.msgs)])
		b.msgs = b.msgs[:0]
		clear(b.arrivals[:cap(b.arrivals)])
		b.arrivals = b.arrivals[:0]
		b.events, b.visits, b.dones = 0, 0, 0
		b.maxClock = 0
	}
	return bufs
}

// takeHeld moves the held-rank set out of the scratch, cleared.
func (s *Scratch) takeHeld() map[int]bool {
	m := s.held
	s.held = nil
	if m == nil {
		return make(map[int]bool)
	}
	clear(m)
	return m
}

// takeRanks moves the rank slice storage out of the scratch (length 0,
// capacity preserved). The retired run's rank pointers were cleared at
// Release so they do not outlive their run.
func (s *Scratch) takeRanks(n int) []*rank.Rank {
	buf := s.ranks
	s.ranks = nil
	if cap(buf) < n {
		return make([]*rank.Rank, 0, n)
	}
	return buf[:0]
}

// takeForming moves the recycled rendezvous instances out of the
// scratch. Instances enter the pool reset (removeForming's invariant),
// so they are ready for newForming as-is.
func (s *Scratch) takeForming() []*forming {
	f := s.formingPool
	s.formingPool = nil
	return f
}

// Release moves the run's pooled storage back into the Scratch it was
// built from and retires the coordinator: every rank's memsim buffers
// return to the shared pool and the coordinator must not be used again.
// A run built without a Scratch only releases rank memory (a no-op
// without a memsim pool). Callers should Release only runs that ended
// cleanly (Completed, or Failed awaiting no further Restart); a run
// abandoned mid-flight should simply be dropped.
func (c *Coordinator) Release() {
	for _, r := range c.ranks {
		r.ReleaseMem()
	}
	s := c.cfg.Scratch
	if s == nil {
		return
	}
	c.queues.Clear()
	s.queues = c.queues
	s.islandOf = c.islandOf
	s.inCollComm = c.inCollComm
	s.fired = c.fired
	s.lanebufs = c.lanebufs
	clear(c.held)
	s.held = c.held
	clear(c.ranks)
	s.ranks = c.ranks[:0]
	// Only instances already reset by removeForming are recyclable;
	// in-flight rendezvous (possible on a Failed run) die with the run.
	s.formingPool = c.formingPool
	c.queues = nil
	c.ranks = nil
	c.cfg.Scratch = nil
}
