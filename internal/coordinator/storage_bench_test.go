package coordinator

import (
	"fmt"
	"testing"

	"mana/internal/storage"
	"mana/internal/vtime"
)

// benchStorageRun executes one default incremental workload under the
// given storage config and returns the committed checkpoint records.
func benchStorageRun(b *testing.B, st storage.Config) []CheckpointRecord {
	b.Helper()
	cfg := faultConfig()
	cfg.Incremental = true
	cfg.FullImageEvery = 4
	cfg.Storage = st
	c := New(cfg)
	if _, err := c.Run(); err != nil {
		b.Fatalf("Run: %v", err)
	}
	return c.Records()
}

// BenchmarkCheckpointCommit prices the default incremental workload
// under each built-in storage profile. ns/op is the simulator's
// wall-clock cost; max-write-ns is the model's slowest checkpoint
// write time — the acceptance metric: staged and staged-compressed
// must land measurably below direct's contended PFS writes.
func BenchmarkCheckpointCommit(b *testing.B) {
	for _, profile := range []string{"direct", "staged", "staged-compressed"} {
		b.Run(profile, func(b *testing.B) {
			spec, ok := storage.Profile(profile)
			if !ok {
				b.Fatalf("profile %q missing", profile)
			}
			st, err := storage.Compile(spec)
			if err != nil {
				b.Fatalf("compile %q: %v", profile, err)
			}
			b.ReportAllocs()
			var maxWrite vtime.Duration
			for i := 0; i < b.N; i++ {
				maxWrite = 0
				for _, rec := range benchStorageRun(b, st) {
					if rec.MaxWriteTime > maxWrite {
						maxWrite = rec.MaxWriteTime
					}
				}
			}
			b.ReportMetric(float64(maxWrite), "max-write-ns")
		})
	}
}

// BenchmarkCompressionPayoff sweeps the per-byte compression CPU cost
// over the staged pipeline. The byte saving is fixed by the region
// ratios while the CPU bill scales with cost, so the sweep reads as a
// crossover: compression pays off while compress-cpu-ns stays below the
// PFS drain time the saved bytes would have taken.
func BenchmarkCompressionPayoff(b *testing.B) {
	// Zero would compile to the model default, so the sweep starts just
	// above free.
	for _, cost := range []float64{0.1, 0.3, 1, 3, 10} {
		b.Run(fmt.Sprintf("cost=%gns", cost), func(b *testing.B) {
			spec, ok := storage.Profile("staged-compressed")
			if !ok {
				b.Fatal("staged-compressed profile missing")
			}
			spec.Compression.CostNsPerByte = cost
			st, err := storage.Compile(spec)
			if err != nil {
				b.Fatalf("compile: %v", err)
			}
			b.ReportAllocs()
			var cpu vtime.Duration
			var saved uint64
			for i := 0; i < b.N; i++ {
				cpu, saved = 0, 0
				for _, rec := range benchStorageRun(b, st) {
					cpu += rec.CompressTime
					saved += rec.CompressSavedBytes
				}
			}
			b.ReportMetric(float64(cpu), "compress-cpu-ns")
			b.ReportMetric(float64(saved), "saved-bytes")
		})
	}
}
