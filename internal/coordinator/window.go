package coordinator

import (
	"fmt"
	"sort"
	"sync"

	"mana/internal/netsim"
	"mana/internal/rank"
	"mana/internal/vtime"
)

// This file is the conservative parallel window executor. A window
// lets every island's worker drain its own event lane concurrently up
// to an exclusive horizon
//
//	horizon = min(T_min + lookahead, G)
//
// where T_min is the earliest island-lane event and G the earliest
// global-lane event. The two bounds carry the two correctness
// arguments:
//
//   - Lookahead: an event executed at time t >= T_min can only affect
//     another island through a cross-island message, which arrives no
//     earlier than t + lookahead >= horizon (netsim guarantees every
//     cross-island hop costs at least CrossLookahead, and the partition
//     never splits a topology group). Receives are arrival-gated —
//     netsim.Recv only yields a message once the receiver's virtual
//     time reaches its arrival — so a message enqueued mid-window by
//     another worker is indistinguishable from one enqueued at the
//     barrier: no worker ever observes an effect another worker is
//     still producing. Cross-island sends are buffered and merged at
//     the barrier, all at times >= horizon.
//
//   - Global bound: collective completions, triggers and the failure
//     event mutate cross-island state, so they execute only at serial
//     points. The horizon never passes the global lane's head, so a
//     window processes exactly the island events a serial run would
//     have processed before that global event.
//
// Within a window each lane pops in its own (time, seq) order — the
// serial order restricted to that lane. Events from different lanes at
// equal times may interleave differently than serially, but every
// cross-lane-visible effect a window can produce is commutative at
// equal times (per-pair FIFO message queues, sum/max counters,
// set-defined collective rendezvous), which is what keeps reports
// byte-identical to the serial scheduler for any worker count.
type laneBuf struct {
	// msgs buffers cross-island messages sent from this island, in
	// emission order; the barrier pushes each onto its destination lane.
	msgs []*netsim.Message
	// arrivals buffers this island's collective arrivals; the barrier
	// replays them through joinCollective in global time order.
	arrivals []pendingArrival
	// dones counts ranks whose scripts ended during the window.
	dones int
	// events/visits/maxClock accumulate this lane's share of the
	// scheduler counters, folded into the coordinator at the barrier.
	events   uint64
	visits   uint64
	maxClock vtime.Time
}

// pendingArrival is one buffered collective arrival: the event time it
// happened at (for the deterministic barrier replay order) and the
// transition the rank produced.
type pendingArrival struct {
	at     vtime.Time
	rankID int
	tr     rank.Transition
}

// parallelEligible reports whether the job is in a phase where a
// parallel window preserves serial semantics: parallelism configured,
// and no scheduler state that demands per-event serial attention — a
// pending or draining checkpoint (drain planning holds ranks one event
// at a time), an armed condition trigger (its condition must be
// re-checked after every single event), or an unfired trigger (which
// will arm one). Checkpoint-heavy phases therefore run serially and
// only the post-checkpoint tail parallelises; the window machinery
// targets the long trigger-free stretches that dominate large runs.
func (c *Coordinator) parallelEligible() bool {
	return c.workers > 1 && c.islands > 1 && c.lookahead > 0 &&
		len(c.pending) == 0 && !c.draining && len(c.armed) == 0 && c.unfired == 0
}

// runWindow executes one conservative window. It returns false without
// processing anything when no island event precedes the horizon (the
// next event is on the global lane — the caller pops it serially).
func (c *Coordinator) runWindow() bool {
	var tmin vtime.Time
	have := false
	for i := 0; i < c.islands; i++ {
		if t, ok := c.queues.Lane(i).PeekTime(); ok && (!have || t < tmin) {
			tmin, have = t, true
		}
	}
	if !have {
		return false
	}
	horizon := tmin.Add(c.lookahead)
	if g, ok := c.queues.Lane(c.globalLane()).PeekTime(); ok && g < horizon {
		horizon = g
	}
	if horizon <= tmin {
		return false
	}

	c.queues.BeginWindow()
	c.inWindow = true
	var wg sync.WaitGroup
	for w := 1; w < c.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for lane := w; lane < c.islands; lane += c.workers {
				c.drainLane(lane, horizon)
			}
		}(w)
	}
	for lane := 0; lane < c.islands; lane += c.workers {
		c.drainLane(lane, horizon)
	}
	wg.Wait()
	c.inWindow = false
	c.queues.EndWindow()
	c.mergeWindow()
	return true
}

// drainLane pops and dispatches one island lane's events strictly below
// the horizon. It runs on the worker goroutine owning the lane; all
// state it touches is the lane's own (its ranks, its laneBuf, its heap)
// or internally synchronised (the network).
func (c *Coordinator) drainLane(lane int, horizon vtime.Time) {
	q := c.queues.Lane(lane)
	buf := &c.lanebufs[lane]
	for {
		t, ok := q.PeekTime()
		if !ok || t >= horizon {
			return
		}
		t, ev, _ := q.Pop()
		buf.events++
		c.dispatchWindow(lane, buf, t, ev)
	}
}

// dispatchWindow executes one island event inside a window. Only ready
// and delivery events live on island lanes; their cross-island effects
// (collective arrivals, done accounting, cross-island sends via
// ScheduleDelivery) are buffered on the laneBuf for the barrier.
func (c *Coordinator) dispatchWindow(lane int, buf *laneBuf, t vtime.Time, ev event) {
	switch ev.kind {
	case evRankReady:
		r := c.ranks[ev.rank]
		if r.State() != rank.Running {
			return // stale: the timeline this event belonged to is gone
		}
		buf.visits++
		tr := r.Execute(c.net)
		switch tr.Kind {
		case rank.Advanced:
			c.noteProgressWindow(lane, buf, r)
		case rank.BlockedOnRecv:
			// Zero work until a delivery wakes it. No drain is ever in
			// progress inside a window, so no hold/starvation logic.
		case rank.JoinedCollective:
			if now := r.Clock().Now(); now > buf.maxClock {
				buf.maxClock = now
			}
			buf.arrivals = append(buf.arrivals, pendingArrival{at: t, rankID: r.ID(), tr: tr})
		}
	case evDelivery:
		m := ev.msg
		r := c.ranks[m.Dst]
		if peer, ok := r.BlockedOn(); ok && peer == m.Src {
			buf.visits++
			if r.Wake(c.net, m.Arrive) {
				c.noteProgressWindow(lane, buf, r)
			}
		}
	default:
		panic(fmt.Sprintf("coordinator: event kind %d on island lane %d", ev.kind, lane))
	}
}

// noteProgressWindow is afterRankProgress inside a window: clock
// high-water and done accounting go to the laneBuf, and the next ready
// event is pushed onto the rank's own lane from its window seq block.
func (c *Coordinator) noteProgressWindow(lane int, buf *laneBuf, r *rank.Rank) {
	if now := r.Clock().Now(); now > buf.maxClock {
		buf.maxClock = now
	}
	if r.State() == rank.Done {
		buf.dones++
		return
	}
	if t, ok := r.NextReady(); ok {
		c.queues.WorkerPush(lane, t, event{kind: evRankReady, rank: r.ID()})
	}
}

// mergeWindow is the barrier: it folds every lane's buffered effects
// back into coordinator state in a deterministic order — counters and
// done counts first (sums and maxes, order-free), then cross-island
// deliveries lane by lane in emission order, then collective arrivals
// replayed through joinCollective in (time, island) order, then one
// participation-bar re-check over the forming collectives (a rank that
// finished its script during the window lowers its communicators'
// bars, exactly what noteDone does serially). Every order used here
// depends only on the partition and the event times, never on worker
// count or goroutine timing.
func (c *Coordinator) mergeWindow() {
	arrivals := 0
	for lane := range c.lanebufs {
		buf := &c.lanebufs[lane]
		c.events += buf.events
		c.rankVisits += buf.visits
		c.noteClock(buf.maxClock)
		c.doneCount += buf.dones
		arrivals += len(buf.arrivals)
		buf.events, buf.visits, buf.maxClock, buf.dones = 0, 0, 0, 0
	}
	for lane := range c.lanebufs {
		buf := &c.lanebufs[lane]
		for _, m := range buf.msgs {
			c.queues.Push(c.islandOf[m.Dst], m.Arrive, event{kind: evDelivery, msg: m})
		}
		buf.msgs = buf.msgs[:0]
	}
	if arrivals > 0 {
		merged := make([]pendingArrival, 0, arrivals)
		for lane := range c.lanebufs {
			buf := &c.lanebufs[lane]
			merged = append(merged, buf.arrivals...)
			buf.arrivals = buf.arrivals[:0]
		}
		// Stable sort: equal times keep lane order (lanes were appended
		// ascending), and within a lane the buffered order is already
		// the lane's execution order.
		sort.SliceStable(merged, func(i, j int) bool { return merged[i].at < merged[j].at })
		for _, a := range merged {
			c.joinCollective(c.ranks[a.rankID], a.tr)
		}
	}
	for _, f := range c.collList {
		c.maybeScheduleCollectiveDone(f)
	}
}
