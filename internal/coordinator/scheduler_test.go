package coordinator

import (
	"runtime"
	"testing"

	"mana/internal/scenario"
	"mana/internal/vtime"
)

// idleHeavyConfig builds the scheduler-scaling scenario: rank 0 is the
// only busy rank, alternating compute phases with one send to each other
// rank; every other rank posts a single receive and then blocks until
// its message arrives. Under the old full-scan loop every iteration
// visited all N ranks even though N-1 of them were blocked; under event
// dispatch the blocked ranks cost nothing until their delivery events
// fire.
func idleHeavyConfig(ranks int) Config {
	cfg := DefaultConfig()
	cfg.Ranks = ranks
	cfg.StragglerP = 0
	cfg.Triggers = nil
	cfg.Programs = scenario.PerRank(cfg.Ranks, func(id int) []scenario.Op {
		if id == 0 {
			script := make([]scenario.Op, 0, 2*(ranks-1))
			for d := 1; d < ranks; d++ {
				script = append(script,
					scenario.Op{Kind: scenario.OpCompute, Dur: 1 * vtime.Microsecond},
					scenario.Op{Kind: scenario.OpSend, Peer: d, Bytes: 1024, Tag: d},
				)
			}
			return script
		}
		return []scenario.Op{{Kind: scenario.OpRecv, Peer: 0, Tag: id}}
	})
	return cfg
}

// TestBlockedRanksConsumeZeroSchedulerWork pins the core scaling
// property down to an exact visit count: a blocked rank is touched
// exactly twice — once when it posts the receive and blocks, once when
// the delivery event wakes it — no matter how many events the busy rank
// generates in between.
func TestBlockedRanksConsumeZeroSchedulerWork(t *testing.T) {
	const computePhases = 100
	cfg := DefaultConfig()
	cfg.Ranks = 3
	cfg.StragglerP = 0
	cfg.Triggers = nil
	cfg.Programs = scenario.PerRank(cfg.Ranks, func(id int) []scenario.Op {
		if id == 0 {
			script := make([]scenario.Op, 0, computePhases+2)
			for i := 0; i < computePhases; i++ {
				script = append(script, scenario.Op{Kind: scenario.OpCompute, Dur: 1 * vtime.Microsecond})
			}
			script = append(script,
				scenario.Op{Kind: scenario.OpSend, Peer: 1, Bytes: 64},
				scenario.Op{Kind: scenario.OpSend, Peer: 2, Bytes: 64},
			)
			return script
		}
		return []scenario.Op{{Kind: scenario.OpRecv, Peer: 0}}
	})
	c := New(cfg)
	outcome, err := c.Run()
	if err != nil || outcome != Completed {
		t.Fatalf("Run = %v, %v", outcome, err)
	}
	// rank 0: computePhases + 2 sends; ranks 1 and 2: one blocked receive
	// attempt + one wake each.
	want := uint64(computePhases+2) + 2 + 2
	if got := c.RankVisits(); got != want {
		t.Errorf("rank visits = %d, want exactly %d (blocked ranks must consume zero scheduler work)", got, want)
	}
}

// TestIdleHeavy4096Ranks is the acceptance scenario for the event-driven
// scheduler: 4096 ranks, all but one blocked in a receive, must complete
// well within test timeouts and with at least 10x fewer rank visits than
// the old O(ranks)-per-iteration full scan would have spent.
func TestIdleHeavy4096Ranks(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-rank scenario skipped in -short mode")
	}
	const ranks = 4096
	c := New(idleHeavyConfig(ranks))
	outcome, err := c.Run()
	if err != nil || outcome != Completed {
		t.Fatalf("Run = %v, %v", outcome, err)
	}
	for _, r := range c.Ranks()[1:] {
		if r.Stats().MsgsRecvd != 1 {
			t.Fatalf("rank %d received %d messages, want 1", r.ID(), r.Stats().MsgsRecvd)
		}
	}
	// The old scheduler executed at most one op per rank per iteration
	// and visited every rank on every iteration, so it needed at least
	// (busiest rank's op count) x ranks visits for the same virtual-time
	// span. That is a conservative lower bound: iterations without
	// progress (blocked receives) scanned all ranks too.
	busiest := uint64(2 * (ranks - 1)) // rank 0's script length
	oldScanVisits := busiest * uint64(ranks)
	got := c.RankVisits()
	if got*10 > oldScanVisits {
		t.Errorf("rank visits = %d; old full scan needed >= %d; want at least a 10x reduction", got, oldScanVisits)
	}
	t.Logf("events=%d rank-visits=%d (old full-scan lower bound %d, reduction %.0fx)",
		c.EventsDispatched(), got, oldScanVisits, float64(oldScanVisits)/float64(got))
}

// benchScheduler measures the event loop end to end on the idle-heavy
// scenario at a given scale. Setup (rank construction, address-space
// bookkeeping) is excluded from the timing so the numbers track
// scheduler work, which is the quantity that must scale with events
// rather than ranks.
//
// maxAllocsPerEvent, when positive, asserts a ceiling on steady-state
// allocations per dispatched event inside Run: the event loop reuses its
// rendezvous scratch and queue storage, so the only per-event allocation
// left is the network message a send injects. The assertion pins that —
// a regression that starts allocating per event fails the benchmark
// rather than silently shifting the numbers.
func benchScheduler(b *testing.B, ranks int, maxAllocsPerEvent float64) {
	b.ReportAllocs()
	var ms runtime.MemStats
	var runAllocs, runEvents uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := New(idleHeavyConfig(ranks))
		// Collect construction garbage outside the timed section: rank
		// setup allocates far more than the event loop does, and a GC
		// cycle triggered mid-Run would charge that cleanup to the
		// scheduler numbers.
		runtime.GC()
		runtime.ReadMemStats(&ms)
		startAllocs := ms.Mallocs
		b.StartTimer()
		outcome, err := c.Run()
		b.StopTimer()
		runtime.ReadMemStats(&ms)
		runAllocs += ms.Mallocs - startAllocs
		runEvents += c.EventsDispatched()
		b.StartTimer()
		if err != nil || outcome != Completed {
			b.Fatalf("Run = %v, %v", outcome, err)
		}
		if i == 0 {
			b.ReportMetric(float64(c.RankVisits()), "rank-visits")
			b.ReportMetric(float64(c.EventsDispatched()), "events")
		}
	}
	b.StopTimer()
	if perEvent := float64(runAllocs) / float64(runEvents); maxAllocsPerEvent > 0 && perEvent > maxAllocsPerEvent {
		b.Errorf("steady-state allocations = %.2f/event (%d allocs over %d events), want <= %.2f/event",
			perEvent, runAllocs, runEvents, maxAllocsPerEvent)
	}
}

func BenchmarkScheduler64Ranks(b *testing.B) { benchScheduler(b, 64, 0) }

// benchOverlapDrain measures a checkpointed run whose collectives either
// overlap (staggered sub-communicator layouts, checkpoint requested with
// at least two collectives in flight — the drain planner must
// topologically sort a real dependency graph) or serialise (the
// bit-identical step structure with every collective retargeted to the
// world communicator, so at most one can ever be in flight). The pair
// tracks the drain planner's cost from day one: same op counts, same
// compute jitter, different overlap width.
func benchOverlapDrain(b *testing.B, overlap bool) {
	b.ReportAllocs()
	const ranks, steps = 64, 6
	wl := scenario.MustPrograms("overlap", scenario.Params{Ranks: ranks, Steps: steps, Seed: 11, Group: 8})
	mkConfig := func() Config {
		cfg := DefaultConfig()
		cfg.Ranks = ranks
		cfg.StragglerP = 0
		cfg.Seed = 11
		if overlap {
			cfg.Programs = wl
			cfg.Triggers = []Trigger{{At: vtime.Time(300 * vtime.Microsecond), FormingColls: 2}}
			return cfg
		}
		cfg.Programs = scenario.PerRank(ranks, func(id int) []scenario.Op {
			ops := wl[id]
			serial := make([]scenario.Op, 0, len(ops)-2)
			for _, op := range ops[2:] { // drop the comm-splits
				op.Comm = 0 // every collective runs over the world communicator
				serial = append(serial, op)
			}
			return serial
		})
		cfg.Triggers = []Trigger{{At: vtime.Time(300 * vtime.Microsecond), MidCollective: true}}
		return cfg
	}
	var rec CheckpointRecord
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := New(mkConfig())
		runtime.GC()
		b.StartTimer()
		outcome, err := c.Run()
		if err != nil || outcome != Completed {
			b.Fatalf("Run = %v, %v", outcome, err)
		}
		if len(c.Records()) != 1 {
			b.Fatalf("checkpoints = %d, want 1", len(c.Records()))
		}
		rec = c.Records()[0]
	}
	if overlap && rec.OverlapWidth < 2 {
		b.Fatalf("OverlapWidth = %d, want >= 2 — the overlap variant stopped overlapping", rec.OverlapWidth)
	}
	if !overlap && rec.OverlapWidth > 1 {
		b.Fatalf("OverlapWidth = %d, want <= 1 — the serial variant stopped serialising", rec.OverlapWidth)
	}
	b.ReportMetric(float64(rec.DrainPlanned), "drain-planned")
	b.ReportMetric(float64(rec.OverlapWidth), "overlap-width")
	b.ReportMetric(float64(rec.DrainEvents), "drain-events")
}

func BenchmarkOverlapDrain(b *testing.B) {
	b.Run("overlap", func(b *testing.B) { benchOverlapDrain(b, true) })
	b.Run("serial", func(b *testing.B) { benchOverlapDrain(b, false) })
}

// BenchmarkScheduler512Ranks carries the allocs/op assertion: roughly
// half the events are sends (one netsim.Message allocation each), so a
// healthy steady state sits near 0.5 allocations per event; 1.0 leaves
// room for map growth while still catching any new per-event allocation.
func BenchmarkScheduler512Ranks(b *testing.B)  { benchScheduler(b, 512, 1.0) }
func BenchmarkScheduler4096Ranks(b *testing.B) { benchScheduler(b, 4096, 0) }

// islandBenchConfig builds the island-scaling scenario: one topology
// group per island, a send/recv ring inside each group, and a leader
// exchange between neighbouring groups every fourth step. Unlike the
// idle-heavy scenario (whose single busy rank is inherently serial),
// every island carries equal load, so the workload parallelises across
// workers while the cross-group lookahead keeps windows wide. The ops
// are pure message traffic — no compute phases — so 65536-rank runs do
// not materialise 4 GiB of per-rank state regions.
func islandBenchConfig(ranks, islands, workers int) Config {
	const steps = 8
	groupSize := ranks / islands
	cfg := DefaultConfig()
	cfg.Ranks = ranks
	cfg.StragglerP = 0
	cfg.Triggers = nil
	cfg.Net.GroupSize = groupSize
	cfg.Net.CrossGroupLatency = 10 * vtime.Microsecond
	cfg.Islands = islands
	cfg.Workers = workers
	nGroups := ranks / groupSize
	cfg.Programs = scenario.PerRank(ranks, func(id int) []scenario.Op {
		g := id / groupSize
		base := g * groupSize
		next := base + (id-base+1)%groupSize
		prev := base + (id-base+groupSize-1)%groupSize
		ops := make([]scenario.Op, 0, 2*steps+4)
		for s := 0; s < steps; s++ {
			ops = append(ops,
				scenario.Op{Kind: scenario.OpSend, Peer: next, Bytes: 256, Tag: s},
				scenario.Op{Kind: scenario.OpRecv, Peer: prev, Tag: s},
			)
			if id == base && nGroups > 1 && s%4 == 3 {
				nextLeader := ((g + 1) % nGroups) * groupSize
				prevLeader := ((g + nGroups - 1) % nGroups) * groupSize
				ops = append(ops,
					scenario.Op{Kind: scenario.OpSend, Peer: nextLeader, Bytes: 128, Tag: 1000 + s},
					scenario.Op{Kind: scenario.OpRecv, Peer: prevLeader, Tag: 1000 + s},
				)
			}
		}
		return ops
	})
	return cfg
}

// benchIslands measures the island scheduler end to end, serial or
// parallel, with the same steady-state allocation assertion as
// benchScheduler: queue storage and window scratch are reused across
// events and windows, so per-event allocations stay bounded by the
// network messages the workload injects.
func benchIslands(b *testing.B, ranks, islands, workers int, maxAllocsPerEvent float64) {
	b.ReportAllocs()
	var ms runtime.MemStats
	var runAllocs, runEvents uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := New(islandBenchConfig(ranks, islands, workers))
		runtime.GC()
		runtime.ReadMemStats(&ms)
		startAllocs := ms.Mallocs
		b.StartTimer()
		outcome, err := c.Run()
		b.StopTimer()
		runtime.ReadMemStats(&ms)
		runAllocs += ms.Mallocs - startAllocs
		runEvents += c.EventsDispatched()
		b.StartTimer()
		if err != nil || outcome != Completed {
			b.Fatalf("Run = %v, %v", outcome, err)
		}
		if i == 0 {
			b.ReportMetric(float64(c.RankVisits()), "rank-visits")
			b.ReportMetric(float64(c.EventsDispatched()), "events")
		}
	}
	b.StopTimer()
	if perEvent := float64(runAllocs) / float64(runEvents); maxAllocsPerEvent > 0 && perEvent > maxAllocsPerEvent {
		b.Errorf("steady-state allocations = %.2f/event (%d allocs over %d events), want <= %.2f/event",
			perEvent, runAllocs, runEvents, maxAllocsPerEvent)
	}
}

// BenchmarkScheduler65536Ranks pins the 64Ki-rank scale target. The
// serial variant carries the allocs/op assertion (roughly half the
// events are sends at one netsim.Message allocation each); the 4-worker
// variant records the parallel wall-clock on the same partition, so the
// BENCH_sched.json artifact tracks the serial-vs-parallel trajectory.
func BenchmarkScheduler65536Ranks(b *testing.B) { benchIslands(b, 65536, 16, 1, 1.0) }
func BenchmarkScheduler65536Ranks4Workers(b *testing.B) {
	benchIslands(b, 65536, 16, 4, 0)
}
