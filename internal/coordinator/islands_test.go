package coordinator

import (
	"runtime"
	"testing"
	"time"

	"mana/internal/scenario"
	"mana/internal/vtime"
)

// groupedPrograms builds the island-scheduler workload: ranks exchange
// in a ring within their topology group (intra-island traffic), group
// leaders exchange with the neighbouring groups' leaders every fourth
// step (cross-island traffic, which must respect the lookahead), and —
// when barriers is set — the whole world synchronises every fifth step
// (global-lane traffic, which bounds every window).
func groupedPrograms(ranks, groupSize, steps int, barriers bool) []scenario.Program {
	nGroups := ranks / groupSize
	return scenario.PerRank(ranks, func(id int) []scenario.Op {
		g := id / groupSize
		base := g * groupSize
		next := base + (id-base+1)%groupSize
		prev := base + (id-base+groupSize-1)%groupSize
		ops := make([]scenario.Op, 0, 4*steps)
		for s := 0; s < steps; s++ {
			ops = append(ops,
				scenario.Op{Kind: scenario.OpCompute, Dur: 2 * vtime.Microsecond},
				scenario.Op{Kind: scenario.OpSend, Peer: next, Bytes: 256, Tag: s},
				scenario.Op{Kind: scenario.OpRecv, Peer: prev, Tag: s},
			)
			if id == base && nGroups > 1 && s%4 == 3 {
				nextLeader := ((g + 1) % nGroups) * groupSize
				prevLeader := ((g + nGroups - 1) % nGroups) * groupSize
				ops = append(ops,
					scenario.Op{Kind: scenario.OpSend, Peer: nextLeader, Bytes: 128, Tag: 1000 + s},
					scenario.Op{Kind: scenario.OpRecv, Peer: prevLeader, Tag: 1000 + s},
				)
			}
			if barriers && s%5 == 4 {
				ops = append(ops, scenario.Op{Kind: scenario.OpBarrier})
			}
		}
		return ops
	})
}

func groupedConfig(ranks, groupSize, islands, workers, steps int, barriers bool) Config {
	cfg := DefaultConfig()
	cfg.Ranks = ranks
	cfg.StragglerP = 0
	cfg.Triggers = nil
	cfg.Net.GroupSize = groupSize
	cfg.Net.CrossGroupLatency = 10 * vtime.Microsecond
	cfg.Islands = islands
	cfg.Workers = workers
	cfg.Programs = groupedPrograms(ranks, groupSize, steps, barriers)
	return cfg
}

// runToCompletion drives a job through every failure/restart cycle and
// returns its report and final fingerprint.
func runToCompletion(t *testing.T, cfg Config) (string, uint64) {
	t.Helper()
	c := New(cfg)
	for {
		outcome, err := c.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if outcome == Completed {
			return c.Report(), c.FinalFingerprint()
		}
		if err := c.Restart(); err != nil {
			t.Fatalf("Restart: %v", err)
		}
	}
}

// TestIslandPartitionInvariance pins the merge layer at the coordinator
// level: the island count must never change observable output, because
// serial mode assigns sequence numbers from one shared counter in push
// order regardless of which lane each event lands on.
func TestIslandPartitionInvariance(t *testing.T) {
	base := groupedConfig(64, 8, 1, 1, 10, true)
	wantReport, wantFP := runToCompletion(t, base)
	for _, islands := range []int{2, 4, 8, 64} {
		cfg := base
		cfg.Islands = islands
		report, fp := runToCompletion(t, cfg)
		if report != wantReport {
			t.Errorf("islands=%d: report differs from single-island run", islands)
		}
		if fp != wantFP {
			t.Errorf("islands=%d: fingerprint %016x, want %016x", islands, fp, wantFP)
		}
	}

	// The default scenario exercises triggers, checkpoints, failure and
	// restart on top of the partition.
	ckpt := DefaultConfig()
	ckpt.Triggers = []Trigger{{At: vtime.Time(300 * vtime.Microsecond)}}
	ckpt.FailAtCheckpoint = 1
	wantReport, wantFP = runToCompletion(t, ckpt)
	ckpt.Islands = 4
	report, fp := runToCompletion(t, ckpt)
	if report != wantReport || fp != wantFP {
		t.Errorf("default scenario: islands=4 diverged from islands=1")
	}
}

// TestWorkerCountDeterminism is the tentpole invariant: byte-identical
// reports for any worker count, on grouped and flat fabrics, with and
// without global-lane traffic (barriers) interleaved into the windows.
func TestWorkerCountDeterminism(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"grouped", groupedConfig(128, 16, 8, 1, 12, false)},
		{"grouped-barriers", groupedConfig(128, 16, 8, 1, 12, true)},
		{"flat", func() Config {
			cfg := groupedConfig(128, 16, 8, 1, 12, true)
			cfg.Net.GroupSize = 0 // contiguous default partition, base-latency lookahead
			cfg.Net.CrossGroupLatency = 0
			return cfg
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantReport, wantFP := runToCompletion(t, tc.cfg)
			for _, workers := range []int{2, 4, 8} {
				cfg := tc.cfg
				cfg.Workers = workers
				report, fp := runToCompletion(t, cfg)
				if report != wantReport {
					t.Errorf("workers=%d: report differs from serial run", workers)
				}
				if fp != wantFP {
					t.Errorf("workers=%d: fingerprint %016x, want %016x", workers, fp, wantFP)
				}
			}
		})
	}
}

// TestWorkerDeterminismWithCheckpointRestart drives the full protocol —
// trigger, checkpoint, failure, restart, replay — under parallel
// workers. Checkpoint phases run serially by construction; the windows
// cover the post-checkpoint tail and the whole replay, and the reports
// must still match the serial scheduler byte for byte.
func TestWorkerDeterminismWithCheckpointRestart(t *testing.T) {
	base := groupedConfig(64, 8, 8, 1, 10, true)
	base.Triggers = []Trigger{{At: vtime.Time(20 * vtime.Microsecond)}}
	base.FailAtCheckpoint = 1
	base.FailDelay = 100 * vtime.Microsecond
	wantReport, wantFP := runToCompletion(t, base)
	par := base
	par.Workers = 4
	report, fp := runToCompletion(t, par)
	if report != wantReport {
		t.Errorf("workers=4: checkpoint/restart report differs from serial run")
	}
	if fp != wantFP {
		t.Errorf("workers=4: fingerprint %016x, want %016x", fp, wantFP)
	}
}

// TestWorkerDeterminismLibrarySpec runs a library scenario (stencil:
// comm-splits, sub-communicator collectives, p2p halo exchange) under
// parallel workers against the serial scheduler.
func TestWorkerDeterminismLibrarySpec(t *testing.T) {
	mk := func(workers int) Config {
		cfg := DefaultConfig()
		cfg.Ranks = 64
		cfg.StragglerP = 0
		cfg.Triggers = nil
		cfg.Programs = scenario.MustPrograms("stencil", scenario.Params{Ranks: 64, Steps: 8, Seed: 7, Group: 8})
		cfg.Net.GroupSize = 8
		cfg.Net.CrossGroupLatency = 5 * vtime.Microsecond
		cfg.Islands = 8
		cfg.Workers = workers
		return cfg
	}
	wantReport, wantFP := runToCompletion(t, mk(1))
	report, fp := runToCompletion(t, mk(4))
	if report != wantReport {
		t.Errorf("stencil: workers=4 report differs from serial run")
	}
	if fp != wantFP {
		t.Errorf("stencil: fingerprint %016x, want %016x", fp, wantFP)
	}
}

// TestParallelSpeedup is the acceptance gate for the tentpole: on a
// 64Ki-rank, 16-island scenario, 4 workers must complete at least 2x
// faster than the serial scheduler. It needs real cores to mean
// anything, so it skips on small machines (the 1-vs-N determinism
// tests above still run everywhere).
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("65536-rank speedup scenario skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful 4-worker speedup, have %d", runtime.NumCPU())
	}
	run := func(workers int) time.Duration {
		cfg := islandBenchConfig(65536, 16, workers)
		c := New(cfg)
		start := time.Now()
		outcome, err := c.Run()
		elapsed := time.Since(start)
		if err != nil || outcome != Completed {
			t.Fatalf("Run(workers=%d) = %v, %v", workers, outcome, err)
		}
		return elapsed
	}
	run(1) // warm the page cache and allocator before timing
	serial := run(1)
	parallel := run(4)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial=%v parallel(4 workers)=%v speedup=%.2fx", serial, parallel, speedup)
	if speedup < 2.0 {
		t.Errorf("4-worker speedup = %.2fx, want >= 2x", speedup)
	}
}
