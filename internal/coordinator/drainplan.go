// Drain planner: the topological-sort collective drain of
// arXiv:2408.02218 ("Enabling Practical Transparent Checkpointing for
// MPI: A Topological Sort Approach", §4), applied to the simulator's
// event-driven coordinator.
//
// When a checkpoint request arrives while collectives are in flight, the
// two-phase protocol (paper §3.2) must first reach a state in which no
// rank is inside a collective. With a single world communicator that is
// just "wait for the collective to finish"; with sub-communicators,
// several collectives on *overlapping* communicators can be partially
// arrived at once, and they can only complete in an order consistent
// with their shared ranks: if rank r is waiting inside collective C' and
// is also a not-yet-arrived member of collective C, then C' must
// complete before C can. The planner builds exactly that graph — nodes
// are in-flight collectives, edges are induced by shared ranks — and
// topologically sorts it. A cycle means two ranks ordered the same pair
// of collectives differently, which is an application deadlock with or
// without a checkpoint, and is reported as such, naming the ranks and
// collectives involved.
//
// The drain itself is executed as ordinary scheduler events: ranks the
// plan still needs keep executing (entering planned collectives,
// feeding blocked receivers), while ranks the plan does not need are
// held at their next collective boundary — their safe point — until the
// checkpoint commits. Collectives that become in-flight while the drain
// runs (a needed rank must pass through them to reach a planned one)
// join the plan; "needed" propagates through blocked-receive chains so
// a held sender can never starve a planned collective.
package coordinator

import (
	"fmt"
	"sort"
	"strings"

	"mana/internal/faultplan"
	"mana/internal/netsim"
	"mana/internal/rank"
	"mana/internal/scenario"
)

// drainNode is one in-flight collective in the dependency graph: the
// rendezvous forming on communicator comm (instance seq), with the
// arrived ranks waiting inside it and the live members still expected.
type drainNode struct {
	comm    int
	seq     uint64
	kind    netsim.CollectiveKind
	arrived []int
	waiting []int
}

// label renders the node for diagnostics and plan listings.
func (n drainNode) label() string {
	return fmt.Sprintf("comm %d %v (#%d)", n.comm, n.kind, n.seq)
}

// drainEdge records "from must complete before to can": rank via is
// waiting inside node from and is a not-yet-arrived member of node to.
type drainEdge struct {
	from, to int // indexes into the node slice
	via      int // the shared rank inducing the edge
}

// topoOrder returns node indexes in a dependency-respecting order:
// every edge's from-node appears before its to-node. The order is
// deterministic — among nodes whose dependencies are satisfied, the
// oldest collective instance (smallest seq) drains first. A cycle in
// the graph is an application deadlock; the returned error names the
// collectives and the ranks whose conflicting arrival orders close the
// cycle.
func topoOrder(nodes []drainNode, edges []drainEdge) ([]int, error) {
	indeg := make([]int, len(nodes))
	succ := make([][]int, len(nodes))
	for _, e := range edges {
		indeg[e.to]++
		succ[e.from] = append(succ[e.from], e.to)
	}
	// ready holds the drainable nodes; popping the smallest seq first
	// keeps the order deterministic and FIFO-fair across instances.
	var ready []int
	for i := range nodes {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, len(nodes))
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			if nodes[ready[i]].seq < nodes[ready[best]].seq {
				best = i
			}
		}
		n := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, n)
		for _, s := range succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) == len(nodes) {
		return order, nil
	}
	return nil, cycleError(nodes, edges, indeg)
}

// cycleError extracts one cycle among the nodes Kahn's algorithm could
// not drain and renders the deadlock it proves: for every edge on the
// cycle, which rank is waiting inside which collective while another
// collective cannot complete without it.
func cycleError(nodes []drainNode, edges []drainEdge, indeg []int) error {
	remaining := make(map[int]bool)
	for i := range nodes {
		if indeg[i] > 0 {
			remaining[i] = true
		}
	}
	// pred[i] is one incoming edge of node i from another remaining
	// node; walking predecessors from any remaining node must revisit a
	// node, closing a cycle.
	pred := make(map[int]drainEdge)
	for _, e := range edges {
		if remaining[e.from] && remaining[e.to] {
			if _, ok := pred[e.to]; !ok {
				pred[e.to] = e
			}
		}
	}
	start := -1
	for i := range nodes {
		if remaining[i] {
			start = i
			break
		}
	}
	seen := make(map[int]int) // node -> position in walk
	var walk []int
	at := start
	for {
		if pos, ok := seen[at]; ok {
			walk = walk[pos:]
			break
		}
		seen[at] = len(walk)
		walk = append(walk, at)
		at = pred[at].from
	}
	// walk now holds the cycle in predecessor direction; report it in
	// completion-dependency direction (from must finish before to).
	var parts []string
	var ranksInvolved []int
	for _, n := range walk {
		e := pred[n]
		parts = append(parts, fmt.Sprintf("%s cannot complete: rank %d is waiting inside %s",
			nodes[e.to].label(), e.via, nodes[e.from].label()))
		ranksInvolved = append(ranksInvolved, e.via)
	}
	sort.Ints(ranksInvolved)
	return fmt.Errorf("collective dependency cycle between ranks %v — %s — the job is deadlocked",
		ranksInvolved, strings.Join(parts, "; "))
}

// drainPlan is the state of one in-progress dependency-ordered drain.
// The topological sort itself is consumed at plan-build time — it
// proves the graph acyclic (or yields the deadlock diagnostic); the
// drain then executes through the needed/waiting sets below, and
// collectives complete in an order consistent with the graph because
// every edge's prerequisite releases the shared rank that feeds its
// dependent.
type drainPlan struct {
	// needed counts, per rank, how many planned collectives are still
	// waiting for that rank to arrive; a rank with a positive count must
	// keep executing. Needed-ness also propagates (sticky) through
	// blocked-receive chains: a rank a needed rank is blocked on is
	// itself needed, whatever its own collective membership.
	needed map[int]int
	// planned counts every collective the plan has covered, including
	// ones that entered while the drain ran; width is the number of
	// simultaneously in-flight collectives when the plan was built.
	planned int
	width   int
}

// waitingMembers returns the live members of a forming collective's
// communicator that have not yet arrived, in member (sorted rank)
// order. This is the single definition of "whom a collective still
// waits for" — the drain graph, the plan's needed set and drain-time
// plan extensions all derive from it.
func (c *Coordinator) waitingMembers(f *forming) []int {
	arrived := make(map[int]bool, len(f.ranks))
	for _, id := range f.ranks {
		arrived[id] = true
	}
	var waiting []int
	for _, m := range c.comms[f.commID].members {
		if arrived[m] || c.ranks[m].State() == rank.Done {
			continue
		}
		waiting = append(waiting, m)
	}
	return waiting
}

// buildDrainGraph snapshots the in-flight collectives into dependency
// graph form. Nodes follow collList (instance order), so the graph —
// and everything derived from it — is deterministic.
func (c *Coordinator) buildDrainGraph() ([]drainNode, []drainEdge) {
	nodes := make([]drainNode, 0, len(c.collList))
	byComm := make(map[int]int, len(c.collList))
	for _, f := range c.collList {
		nodes = append(nodes, drainNode{
			comm:    f.commID,
			seq:     f.seq,
			kind:    f.kind,
			arrived: append([]int(nil), f.ranks...),
			waiting: c.waitingMembers(f),
		})
		byComm[f.commID] = len(nodes) - 1
	}
	var edges []drainEdge
	for to := range nodes {
		for _, m := range nodes[to].waiting {
			if k := c.inCollComm[m]; k >= 0 && k != nodes[to].comm {
				edges = append(edges, drainEdge{from: byComm[k], to: to, via: m})
			}
		}
	}
	return nodes, edges
}

// beginDrain is called when a checkpoint request is pending and the job
// is not at a safe point: it builds and sorts the dependency graph,
// fails on a cycle (the deadlock diagnostic), and switches the
// scheduler into drain mode.
func (c *Coordinator) beginDrain() error {
	nodes, edges := c.buildDrainGraph()
	if _, err := topoOrder(nodes, edges); err != nil {
		return fmt.Errorf("coordinator: checkpoint drain cannot be ordered: %w", err)
	}
	c.plan = &drainPlan{
		needed:  make(map[int]int),
		planned: len(nodes),
		width:   len(nodes),
	}
	c.draining = true
	c.drainStartEvents = c.events
	for i := range nodes {
		f := c.colls[nodes[i].comm]
		f.planned = true
		f.waiting = make(map[int]bool, len(nodes[i].waiting))
		for _, m := range nodes[i].waiting {
			f.waiting[m] = true
		}
	}
	for i := range nodes {
		for _, m := range nodes[i].waiting {
			c.markNeeded(m)
		}
	}
	// Drain-start faults anchored to the upcoming checkpoint fire now:
	// the crash event lands Delay after the plan was built, killing the
	// job while the topo order is partially executed. Restart discards
	// the partial plan (abandonDrain) and the replayed timeline re-plans
	// from its own collective state. The event lives on the global lane,
	// so parallel windows never run past it.
	seq := len(c.records) + 1
	for i, f := range c.faults {
		if !c.faultFired[i] && f.Anchor == faultplan.AtDrainStart && f.N == seq {
			c.faultFired[i] = true
			c.queues.Push(c.globalLane(), c.maxClock.Add(f.Delay), event{kind: evFail, trigger: i})
		}
	}
	return nil
}

// endDrain leaves drain mode after the checkpoint committed, releasing
// every rank held at its collective boundary (in rank order, so the
// re-seeded ready events keep deterministic FIFO order).
func (c *Coordinator) endDrain() {
	c.draining = false
	c.plan = nil
	for id := 0; id < c.cfg.Ranks; id++ {
		if c.held[id] {
			delete(c.held, id)
			c.scheduleReady(c.ranks[id])
		}
	}
}

// abandonDrain discards drain state without rescheduling anything; the
// caller (Restart) re-seeds the event queue wholesale.
func (c *Coordinator) abandonDrain() {
	c.draining = false
	c.plan = nil
	for id := range c.held {
		delete(c.held, id)
	}
}

// markNeeded records that the drain cannot finish until this rank makes
// progress. On the first mark the need propagates: a held rank is
// released (it will enter — and thereby plan — its next collective),
// and a rank blocked on a receive makes its sender needed too, so a
// chain of blocked ranks can never strand a planned collective behind a
// held sender.
func (c *Coordinator) markNeeded(id int) {
	first := c.plan.needed[id] == 0
	c.plan.needed[id]++
	if !first {
		return
	}
	if c.held[id] {
		delete(c.held, id)
		c.scheduleReady(c.ranks[id])
	}
	if peer, ok := c.ranks[id].BlockedOn(); ok && c.plan.needed[peer] == 0 {
		c.markNeeded(peer)
	}
}

// shouldHold decides whether a ready rank has reached its safe point
// for the in-progress drain: it is about to enter a collective that is
// neither forming (all forming collectives are planned while draining)
// nor needed by the plan through this rank. Held ranks consume no
// scheduler work until the checkpoint commits. Transitive point-to-
// point dependencies never reach this decision wrongly: a rank some
// needed rank is blocked on was already marked needed, either when the
// mark propagated through the blocked chain (markNeeded) or when the
// needed rank blocked during the drain (the dispatcher's
// BlockedOnRecv case).
func (c *Coordinator) shouldHold(r *rank.Rank) bool {
	op := r.Op()
	switch op.Kind {
	case scenario.OpBarrier, scenario.OpAllreduce, scenario.OpCommSplit:
	default:
		return false
	}
	if f := c.colls[r.CommID(op.Comm)]; f != nil && f.planned {
		return false
	}
	return c.plan.needed[r.ID()] == 0
}

// extendPlan admits a collective that became in-flight while the drain
// ran: a needed rank had to pass through it on the way to a planned
// one, so it too must complete before the checkpoint can land. Its
// not-yet-arrived live members become needed in turn.
func (c *Coordinator) extendPlan(f *forming) {
	f.planned = true
	c.plan.planned++
	waiting := c.waitingMembers(f)
	f.waiting = make(map[int]bool, len(waiting))
	for _, m := range waiting {
		f.waiting[m] = true
		c.markNeeded(m)
	}
}
