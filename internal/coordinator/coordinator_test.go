package coordinator

import (
	"strings"
	"sync"
	"testing"

	"mana/internal/kernelsim"
	"mana/internal/netsim"
	"mana/internal/scenario"
	"mana/internal/virtid"
	"mana/internal/vtime"
)

func smallConfig(ranks, steps int) Config {
	cfg := DefaultConfig()
	cfg.Ranks = ranks
	cfg.Programs = scenario.MustPrograms("default", scenario.Params{Ranks: ranks, Steps: steps, Seed: 7})
	cfg.Seed = 7
	return cfg
}

// TestDrainReachesZeroBeforeSnapshot stages a checkpoint request while a
// message is in flight and verifies the two-phase protocol buffers it at
// the receiver — leaving the network quiescent before any image is taken
// — and that the buffered message still reaches the application.
func TestDrainReachesZeroBeforeSnapshot(t *testing.T) {
	cfg := smallConfig(2, 0)
	cfg.StragglerP = 0
	cfg.Triggers = []Trigger{{At: 0, InFlight: true}}
	cfg.Programs = scenario.PerRank(cfg.Ranks, func(id int) []scenario.Op {
		if id == 0 {
			return []scenario.Op{{Kind: scenario.OpSend, Peer: 1, Bytes: 4096, Tag: 1}}
		}
		return []scenario.Op{
			{Kind: scenario.OpCompute, Dur: 1 * vtime.Millisecond},
			{Kind: scenario.OpRecv, Peer: 0, Tag: 1},
		}
	})
	c := New(cfg)
	outcome, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if outcome != Completed {
		t.Fatalf("outcome = %v, want completed", outcome)
	}
	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("checkpoints = %d, want 1", len(recs))
	}
	if recs[0].DrainedMsgs != 1 || recs[0].DrainedBytes != 4096 {
		t.Errorf("drained %d msgs / %d bytes, want 1 / 4096 — the in-flight message must be buffered",
			recs[0].DrainedMsgs, recs[0].DrainedBytes)
	}
	if got := c.Net().InFlight(); got != 0 {
		t.Errorf("in-flight after run = %d, want 0", got)
	}
	if got := c.Ranks()[1].Stats().MsgsRecvd; got != 1 {
		t.Errorf("receiver consumed %d messages, want 1 (drained message must reach the app)", got)
	}
	// The drained message is part of the image: restarting from it must
	// still deliver the message exactly once.
	if err := c.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if got := c.Ranks()[1].InboxLen(); got != 1 {
		t.Fatalf("restored inbox = %d messages, want 1", got)
	}
	outcome, err = c.Run()
	if err != nil || outcome != Completed {
		t.Fatalf("post-restart run = %v, %v", outcome, err)
	}
	if got := c.Ranks()[1].Stats().MsgsRecvd; got != 1 {
		t.Errorf("after replay receiver consumed %d messages, want exactly 1", got)
	}
}

// TestMidCollectiveCheckpointDeferred requests a checkpoint while an
// allreduce is partially arrived and verifies the protocol defers the
// checkpoint until the collective completes.
func TestMidCollectiveCheckpointDeferred(t *testing.T) {
	cfg := smallConfig(4, 0)
	cfg.StragglerP = 0
	cfg.Triggers = []Trigger{{At: 0, MidCollective: true}}
	cfg.Programs = scenario.PerRank(cfg.Ranks, func(id int) []scenario.Op {
		return []scenario.Op{
			// Skewed compute so ranks arrive at the collective at
			// different times.
			{Kind: scenario.OpCompute, Dur: vtime.Duration(id+1) * vtime.Millisecond},
			{Kind: scenario.OpAllreduce, Bytes: 8192},
			{Kind: scenario.OpCompute, Dur: 1 * vtime.Millisecond},
		}
	})
	c := New(cfg)
	outcome, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if outcome != Completed {
		t.Fatalf("outcome = %v, want completed", outcome)
	}
	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("checkpoints = %d, want 1", len(recs))
	}
	rec := recs[0]
	if !rec.MidCollective {
		t.Error("record not marked mid-collective")
	}
	if rec.DeferredFor <= 0 {
		t.Errorf("DeferredFor = %v, want > 0 (checkpoint must wait out the allreduce)", rec.DeferredFor)
	}
	// Every rank must have completed the collective before its image was
	// taken: the image PCs must all be past the allreduce op.
	if err := c.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	for _, r := range c.Ranks() {
		if r.PC() < 2 {
			t.Errorf("rank %d image pc = %d, want >= 2 (past the collective)", r.ID(), r.PC())
		}
		if r.Stats().Collectives != 1 {
			t.Errorf("rank %d image collectives = %d, want 1", r.ID(), r.Stats().Collectives)
		}
	}
}

// TestCheckpointAtSafePointImmediate verifies a request that arrives with
// no collective in progress is serviced without deferral.
func TestCheckpointAtSafePointImmediate(t *testing.T) {
	cfg := smallConfig(4, 6)
	cfg.Triggers = []Trigger{{At: 0}}
	c := New(cfg)
	if _, err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("checkpoints = %d, want 1", len(recs))
	}
	if recs[0].MidCollective {
		t.Error("request at t=0 cannot be mid-collective")
	}
	if recs[0].DeferredFor != 0 {
		t.Errorf("DeferredFor = %v, want 0", recs[0].DeferredFor)
	}
}

// TestRestartBitIdenticalToUncheckpointedRun is the paper's core
// transparency claim, pinned down: checkpoint twice (once mid-collective),
// fail, restart from the last image, run to completion — and end with
// exactly the virtual times, stats and memory contents of a run that
// never checkpointed at all.
func TestRestartBitIdenticalToUncheckpointedRun(t *testing.T) {
	base := smallConfig(8, 12)

	withCkpt := base
	withCkpt.Triggers = []Trigger{
		{At: vtime.Time(1 * vtime.Millisecond)},
		{At: vtime.Time(1 * vtime.Millisecond), MidCollective: true},
	}
	withCkpt.FailAtCheckpoint = 2
	withCkpt.FailDelay = 100 * vtime.Microsecond

	c := New(withCkpt)
	outcome, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if outcome != Failed {
		t.Fatalf("outcome = %v, want failed (failure injection armed)", outcome)
	}
	if len(c.Records()) != 2 {
		t.Fatalf("checkpoints before failure = %d, want 2", len(c.Records()))
	}
	if !c.Records()[1].MidCollective {
		t.Error("second checkpoint should have been requested mid-collective")
	}
	if err := c.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	outcome, err = c.Run()
	if err != nil || outcome != Completed {
		t.Fatalf("post-restart run = %v, %v", outcome, err)
	}

	plain := New(base)
	outcome, err = plain.Run()
	if err != nil || outcome != Completed {
		t.Fatalf("uncheckpointed run = %v, %v", outcome, err)
	}

	for i := range plain.Ranks() {
		pr, cr := plain.Ranks()[i], c.Ranks()[i]
		if pt, ct := pr.Clock().Now(), cr.Clock().Now(); pt != ct {
			t.Errorf("rank %d final vtime: uncheckpointed %v vs restarted %v", i, pt, ct)
		}
		if ps, cs := pr.Stats(), cr.Stats(); ps != cs {
			t.Errorf("rank %d stats diverge:\n  uncheckpointed %+v\n  restarted      %+v", i, ps, cs)
		}
	}
	if pf, cf := plain.FinalFingerprint(), c.FinalFingerprint(); pf != cf {
		t.Errorf("final fingerprints diverge: %016x vs %016x", pf, cf)
	}
}

// TestReportByteIdentical runs the full fail-and-restart scenario twice
// and requires byte-identical reports.
func TestReportByteIdentical(t *testing.T) {
	run := func() string {
		cfg := smallConfig(8, 12)
		cfg.Triggers = []Trigger{
			{At: vtime.Time(1 * vtime.Millisecond)},
			{At: vtime.Time(1 * vtime.Millisecond), InFlight: true},
			{At: vtime.Time(1 * vtime.Millisecond), MidCollective: true},
		}
		cfg.FailAtCheckpoint = 3
		cfg.FailDelay = 100 * vtime.Microsecond
		c := New(cfg)
		outcome, err := c.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for outcome == Failed {
			if err := c.Restart(); err != nil {
				t.Fatalf("Restart: %v", err)
			}
			if outcome, err = c.Run(); err != nil {
				t.Fatalf("re-Run: %v", err)
			}
		}
		return c.Report()
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Errorf("reports differ between identical runs:\n--- run 1\n%s\n--- run 2\n%s", r1, r2)
	}
	if !strings.Contains(r1, "restarts: 1") {
		t.Errorf("report missing restart section:\n%s", r1)
	}
	if !strings.Contains(r1, "mid-collective=true") {
		t.Errorf("report missing mid-collective checkpoint:\n%s", r1)
	}
}

// TestRestartDiscardsPendingRequests pins down a rollback subtlety: a
// checkpoint request fired in the pre-failure timeline dies with that
// timeline — its scheduler state (clocks, collective progress) no
// longer exists after the rollback — but the checkpoint it promised is
// still owed. The failure lands while a collective is still in progress
// (so the request is pending, not yet serviced); after restart the
// stale request itself must not commit, and instead its trigger is
// un-consumed so the checkpoint re-fires from the replayed timeline's
// own state.
func TestRestartDiscardsPendingRequests(t *testing.T) {
	cfg := smallConfig(4, 0)
	cfg.StragglerP = 0
	cfg.Triggers = []Trigger{
		{At: 0},
		// Fires mid-collective before the failure; ranks must finish the
		// collective before it can be serviced, and the failure event
		// lands first (rank 3's blocking receive keeps it away from the
		// collective past the failure time).
		{At: 0, MidCollective: true},
	}
	cfg.FailAtCheckpoint = 1
	// Checkpoint #1 commits at virtual time 0; ranks 1 and 2 enter the
	// allreduce at exactly 1ms (after their compute phases) while rank 3
	// is still blocked on its receive (the matching send only arrives at
	// ~1.0035ms), so a failure at 1.001ms lands mid-collective with the
	// deferred request still pending.
	cfg.FailDelay = 1001 * vtime.Microsecond
	cfg.Programs = scenario.PerRank(cfg.Ranks, func(id int) []scenario.Op {
		// Rank 3 blocks on a receive that rank 0 only satisfies after its
		// own compute phase, so ranks 1 and 2 sit inside the allreduce —
		// partially arrived — when the failure event fires.
		switch id {
		case 0:
			return []scenario.Op{
				{Kind: scenario.OpCompute, Dur: 1 * vtime.Millisecond},
				{Kind: scenario.OpSend, Peer: 3, Bytes: 1024},
				{Kind: scenario.OpAllreduce, Bytes: 1024},
			}
		case 3:
			return []scenario.Op{
				{Kind: scenario.OpRecv, Peer: 0},
				{Kind: scenario.OpAllreduce, Bytes: 1024},
			}
		default:
			return []scenario.Op{
				{Kind: scenario.OpCompute, Dur: 1 * vtime.Millisecond},
				{Kind: scenario.OpAllreduce, Bytes: 1024},
			}
		}
	})
	c := New(cfg)
	outcome, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if outcome != Failed {
		t.Fatalf("outcome = %v, want failed", outcome)
	}
	if len(c.pending) == 0 {
		t.Fatal("test setup: expected a pending request at failure time " +
			"(mid-collective trigger should have fired during the countdown)")
	}
	if err := c.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	outcome, err = c.Run()
	if err != nil || outcome != Completed {
		t.Fatalf("post-restart run = %v, %v", outcome, err)
	}
	if got := len(c.Records()); got != 2 {
		t.Errorf("checkpoints = %d, want 2: the owed mid-collective checkpoint must re-fire after restart", got)
	}
	// The re-fired request must be serviced from the new timeline's own
	// state, not the abandoned one's: its request time cannot precede
	// the restart's resume clock.
	resume := c.Restarts()[0].ResumeClock
	for _, rec := range c.Records()[1:] {
		if rec.RequestedAt < resume {
			t.Errorf("checkpoint #%d requested@%v, before the restart resumed at %v: stale request leaked across the rollback",
				rec.Seq, rec.RequestedAt, resume)
		}
	}
	for _, rec := range c.Records() {
		if rec.DeferredFor < 0 {
			t.Errorf("checkpoint #%d has negative deferral %v", rec.Seq, rec.DeferredFor)
		}
	}
}

// TestRestartWithoutCheckpointFails covers the error path.
func TestRestartWithoutCheckpointFails(t *testing.T) {
	c := New(smallConfig(2, 2))
	if err := c.Restart(); err == nil {
		t.Error("Restart with no committed checkpoint should fail")
	}
}

// TestConcurrentClockObserversRaceClean reads rank clocks from a helper
// goroutine while the scheduler runs, mirroring MANA's checkpoint helper
// thread; under -race this pins down the locking contract.
func TestConcurrentClockObserversRaceClean(t *testing.T) {
	cfg := smallConfig(4, 10)
	cfg.Triggers = []Trigger{{At: vtime.Time(500 * vtime.Microsecond)}}
	c := New(cfg)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				for _, r := range c.Ranks() {
					_ = r.Clock().Now()
				}
				_ = c.Net().InFlight()
			}
		}
	}()
	if _, err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	close(done)
	wg.Wait()
}

// TestSortedPairsDeterministic covers the report helper.
func TestSortedPairsDeterministic(t *testing.T) {
	counters := netsim.Counters{
		{Src: 2, Dst: 0}: {Sent: 1},
		{Src: 0, Dst: 1}: {Sent: 1},
		{Src: 0, Dst: 0}: {Sent: 1},
	}
	pairs := SortedPairs(counters)
	want := []netsim.Pair{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}, {Src: 2, Dst: 0}}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pairs[%d] = %+v, want %+v", i, pairs[i], want[i])
		}
	}
}

// TestKernelPersonalityAffectsOverheadNotResults verifies the two kernel
// personalities produce different MANA overhead but identical message
// counts — the cost model changes timing, not behaviour.
func TestKernelPersonalityAffectsOverheadNotResults(t *testing.T) {
	mk := func(p kernelsim.Personality) *Coordinator {
		cfg := smallConfig(4, 8)
		cfg.Personality = p
		c := New(cfg)
		if _, err := c.Run(); err != nil {
			t.Fatalf("Run(%v): %v", p, err)
		}
		return c
	}
	unp := mk(kernelsim.Unpatched)
	pat := mk(kernelsim.Patched)
	for i := range unp.Ranks() {
		u, p := unp.Ranks()[i].Stats(), pat.Ranks()[i].Stats()
		if u.ManaOverhead <= p.ManaOverhead {
			t.Errorf("rank %d: unpatched overhead %v should exceed patched %v", i, u.ManaOverhead, p.ManaOverhead)
		}
		if u.MsgsSent != p.MsgsSent || u.Collectives != p.Collectives {
			t.Errorf("rank %d: personalities changed behaviour: %+v vs %+v", i, u, p)
		}
	}
}

// BenchmarkRun measures the scheduler + checkpoint engine end to end; the
// Makefile's bench target tracks this as the hot path for future scaling
// work.
func BenchmarkRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := smallConfig(8, 12)
		cfg.Triggers = []Trigger{{At: vtime.Time(1 * vtime.Millisecond)}}
		c := New(cfg)
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestVirtidTableRebuiltDeterministicallyOnRestart stages a checkpoint
// that lands while a nonblocking request is outstanding: rank 0 isends
// and blocks in a receive before its wait, and the in-flight trigger
// fires the checkpoint in exactly that window. After the injected
// failure and restart, the restored rank must hold the live request —
// resolving in a freshly rebuilt table — and the replayed run must end
// bit-identical to an uncheckpointed one, request accounting included.
func TestVirtidTableRebuiltDeterministicallyOnRestart(t *testing.T) {
	base := smallConfig(2, 0)
	script := func(id int) []scenario.Op {
		if id == 0 {
			return []scenario.Op{
				{Kind: scenario.OpIsend, Peer: 1, Bytes: 2048, Tag: 7},
				{Kind: scenario.OpRecv, Peer: 1, Tag: 8},
				{Kind: scenario.OpWait},
			}
		}
		return []scenario.Op{
			{Kind: scenario.OpCompute, Dur: 50 * vtime.Microsecond},
			{Kind: scenario.OpRecv, Peer: 0, Tag: 7},
			{Kind: scenario.OpSend, Peer: 0, Bytes: 2048, Tag: 8},
		}
	}
	base.Programs = scenario.PerRank(base.Ranks, script)

	cfg := base
	cfg.Triggers = []Trigger{{At: 0, InFlight: true}}
	cfg.FailAtCheckpoint = 1
	cfg.FailDelay = 10 * vtime.Microsecond

	c := New(cfg)
	outcome, err := c.Run()
	if err != nil || outcome != Failed {
		t.Fatalf("Run = %v, %v; want failed (failure injection armed)", outcome, err)
	}
	if len(c.Records()) != 1 {
		t.Fatalf("checkpoints = %d, want 1", len(c.Records()))
	}
	if err := c.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}

	// Immediately after restart: rank 0's live request must have survived
	// through the image into a rebuilt table.
	r0 := c.Ranks()[0]
	pending := r0.PendingRequests()
	if len(pending) != 1 {
		t.Fatalf("restored pending requests = %d, want 1 (checkpoint landed between isend and wait)", len(pending))
	}
	if _, ok := r0.Virtid().Lookup(virtid.Request, pending[0]); !ok {
		t.Error("restored live request does not resolve in the rebuilt table")
	}
	if got := r0.Virtid().Len(virtid.Request); got != 1 {
		t.Errorf("rebuilt request table has %d entries, want 1", got)
	}

	outcome, err = c.Run()
	if err != nil || outcome != Completed {
		t.Fatalf("post-restart run = %v, %v", outcome, err)
	}

	plain := New(base)
	if outcome, err := plain.Run(); err != nil || outcome != Completed {
		t.Fatalf("uncheckpointed run = %v, %v", outcome, err)
	}
	for i := range plain.Ranks() {
		if ps, cs := plain.Ranks()[i].Stats(), c.Ranks()[i].Stats(); ps != cs {
			t.Errorf("rank %d stats diverge (lookup accounting included):\n  uncheckpointed %+v\n  restarted      %+v", i, ps, cs)
		}
	}
	if pf, cf := plain.FinalFingerprint(), c.FinalFingerprint(); pf != cf {
		t.Errorf("final fingerprints diverge: %016x vs %016x", pf, cf)
	}
	// Every rank's table ends in the same terminal state as the
	// uncheckpointed run's: requests all retired, comm and datatype live.
	for i, cr := range c.Ranks() {
		if got := cr.Virtid().Len(virtid.Request); got != 0 {
			t.Errorf("rank %d ends with %d live requests, want 0", i, got)
		}
		if cr.Virtid().Len(virtid.Comm) != 1 || cr.Virtid().Len(virtid.Datatype) != 1 {
			t.Errorf("rank %d lost its init-time handles", i)
		}
	}
}

// TestLookupStatsAggregation pins the report's virtid accounting: the
// aggregate is the plain sum of per-rank counters, and the mutex and
// sharded implementations perform identical lookup counts (only the
// modelled cost differs).
func TestLookupStatsAggregation(t *testing.T) {
	run := func(impl virtid.Impl) *Coordinator {
		cfg := smallConfig(4, 8)
		cfg.Virtid = impl
		c := New(cfg)
		if outcome, err := c.Run(); err != nil || outcome != Completed {
			t.Fatalf("%v run = %v, %v", impl, outcome, err)
		}
		return c
	}
	mutex, sharded := run(virtid.ImplMutex), run(virtid.ImplSharded)
	ml, sl := mutex.LookupStats(), sharded.LookupStats()
	if ml.HandleLookups == 0 {
		t.Fatal("workload performed no handle lookups")
	}
	if ml.HandleLookups != sl.HandleLookups || ml.CommLookups != sl.CommLookups ||
		ml.DatatypeLookups != sl.DatatypeLookups || ml.RequestLookups != sl.RequestLookups {
		t.Errorf("lookup counts differ across implementations: mutex %+v vs sharded %+v", ml, sl)
	}
	if ml.HandleLookups != ml.CommLookups+ml.DatatypeLookups+ml.RequestLookups {
		t.Errorf("total %d != sum of per-kind counts %+v", ml.HandleLookups, ml)
	}
	if ml.LookupTime <= sl.LookupTime {
		t.Errorf("mutex modelled lookup time %v should exceed sharded %v", ml.LookupTime, sl.LookupTime)
	}
	wantMutex := vtime.Duration(ml.HandleLookups) * virtid.MutexLookupCost
	if ml.LookupTime != wantMutex {
		t.Errorf("mutex LookupTime = %v, want %v (lookups x calibrated cost)", ml.LookupTime, wantMutex)
	}
}
