package coordinator

import (
	"io"
	"testing"
)

// completedRun returns a finished default run to render reports from.
func completedRun(tb testing.TB) *Coordinator {
	tb.Helper()
	c := New(DefaultConfig())
	if _, err := c.Run(); err != nil {
		tb.Fatalf("Run: %v", err)
	}
	return c
}

// TestWriteReportAllocsPinned pins the point of the io.Writer refactor:
// streaming the report must allocate no more than building the string —
// rendering straight into a sink (a hash, a file, a pooled buffer)
// never pays for intermediate string assembly.
func TestWriteReportAllocsPinned(t *testing.T) {
	c := completedRun(t)
	stream := testing.AllocsPerRun(20, func() { c.WriteReport(io.Discard) })
	str := testing.AllocsPerRun(20, func() { _ = c.Report() })
	t.Logf("WriteReport(io.Discard): %.0f allocs/op, Report(): %.0f allocs/op", stream, str)
	if stream > str {
		t.Errorf("WriteReport allocates %.0f/op, more than Report's %.0f/op", stream, str)
	}
}

// BenchmarkWriteReport prices both render paths.
func BenchmarkWriteReport(b *testing.B) {
	c := completedRun(b)
	b.Run("writer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.WriteReport(io.Discard)
		}
	})
	b.Run("string", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = c.Report()
		}
	})
}
