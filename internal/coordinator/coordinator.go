// Package coordinator implements MANA's checkpoint coordination protocol
// (paper §3.1–3.2) over the simulated rank runtime.
//
// The coordinator drives an event-driven virtual-time scheduler: every
// state transition in the job — a rank becoming ready to execute its next
// scripted operation, a point-to-point message arriving, a collective
// completing, a checkpoint trigger coming due, an injected failure — is
// an event on a deterministic (time, seq)-ordered queue. Ranks that are
// blocked in a receive or waiting in a collective have no queued events
// and therefore consume zero scheduler work, which is what lets the
// simulator scale to thousands of mostly idle ranks.
//
// Events live on a sharded vtime.IslandQueues: ranks are partitioned
// into islands (netsim topology groups when configured, contiguous
// blocks otherwise), each island owning one event-queue lane for its
// ranks' ready and delivery events, plus one global lane for the
// events that touch cross-island state (collective completions,
// checkpoint triggers, failure injection). With Config.Workers <= 1 the
// lanes are merged into the exact single-queue order and popped one at
// a time; with Workers > 1 the scheduler interleaves that serial mode
// with conservative parallel windows (see window.go) in which each
// island's worker drains its own lane up to a lookahead horizon derived
// from the minimum cross-island network latency. Cross-island effects
// are buffered per island and merged at the window barrier in a
// deterministic order, so reports are byte-identical for any worker
// count, island count and GOMAXPROCS — the property the 1-vs-N-worker
// CI smoke pins.
//
// Checkpoint requests are serviced with the paper's two-phase protocol:
//
//	Phase 1 (quiesce): broadcast checkpoint intent to every rank. Ranks
//	stop starting new operations at their next call boundary (no ready
//	events are dispatched past a pending request). If any rank is
//	inside a collective, all ranks keep executing until that collective
//	completes — a checkpoint never lands mid-collective. Then the
//	in-flight point-to-point messages are drained: the per-pair
//	send/receive counters are compared and every outstanding message is
//	received into the destination rank's buffer, until the counters
//	agree that the network is quiescent.
//
//	Phase 2 (commit): a per-rank pipeline — capture, dedup, write. Each
//	rank captures its image (full on the first checkpoint and on the
//	Config.FullImageEvery cadence, otherwise an incremental delta
//	carrying only the pages dirtied since the previous checkpoint, with
//	pages rewritten to identical contents deduplicated against the last
//	committed generation), is charged the page-table scan and per-page
//	hash costs of the capture, and then the image write time per dirty
//	byte actually carried (with the §3.4 parallel-filesystem straggler
//	model), all to its checkpoint-overhead account.
//
// Restart discards every rank's lower half, bootstraps a fresh one,
// replays the saved upper-half region maps, restores clocks and network
// counters, clears the event queue (events of the abandoned timeline die
// with it) and re-seeds ready events from the restored state. Because
// checkpoint activity is accounted outside the application clocks, a
// restarted run reaches bit-identical virtual-time results to an
// uncheckpointed one — the property the determinism tests pin down.
package coordinator

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"

	"mana/internal/faultplan"
	"mana/internal/kernelsim"
	"mana/internal/memsim"
	"mana/internal/netsim"
	"mana/internal/rank"
	"mana/internal/scenario"
	"mana/internal/storage"
	"mana/internal/virtid"
	"mana/internal/vtime"
)

// Trigger schedules one checkpoint request.
type Trigger struct {
	// At requests the checkpoint once virtual time reaches this point.
	At vtime.Time
	// MidCollective, when set, instead requests the checkpoint at the
	// first moment (not before At) at which a collective is partially
	// arrived — some but not all ranks inside it. This exercises the
	// protocol's deferral path deterministically.
	MidCollective bool
	// InFlight, when set, instead requests the checkpoint at the first
	// moment (not before At) at which point-to-point messages are in
	// flight — sent but not yet received — so the drain phase has real
	// work to do.
	InFlight bool
	// FormingColls, when positive, instead requests the checkpoint at
	// the first moment (not before At) at which at least this many
	// collectives are simultaneously in flight, so the drain planner has
	// a non-trivial dependency graph to sort.
	FormingColls int
}

// Config parameterises one simulated job.
type Config struct {
	// Ranks is the number of simulated MPI ranks.
	Ranks int
	// Personality selects the kernel cost model for every node.
	Personality kernelsim.Personality
	// Virtid selects the handle-virtualisation table implementation every
	// rank uses on its per-call hot path (and thereby the calibrated
	// per-lookup cost the kernel model charges).
	Virtid virtid.Impl
	// Net is the interconnect cost model.
	Net netsim.Params
	// Programs carries one op stream per rank (index = rank id), compiled
	// from a scenario spec, read from a recorded trace, or — in tests —
	// built directly (scenario.PerRank) to stage precise protocol
	// situations. New panics unless len(Programs) == Ranks.
	Programs []scenario.Program
	// Storage is the two-tier checkpoint I/O model (internal/storage):
	// a contended aggregate-bandwidth PFS, optional per-node burst-buffer
	// staging with asynchronous drain, and optional delta-page
	// compression. BaseConfig sets the direct contended default
	// (storage.DefaultConfig); Storage.LegacyStraggler reinstates the
	// retired flat-bandwidth write path below.
	Storage storage.Config
	// CkptWriteBandwidth is the per-rank flat write bandwidth of the
	// retired §3.4 model.
	//
	// Deprecated: consulted only when Storage.LegacyStraggler is set;
	// the storage pipeline's contended PFS replaces it. CkptReadBandwidth
	// remains live: restart reads are per-rank in either model.
	CkptWriteBandwidth float64
	// CkptReadBandwidth is the per-rank parallel-filesystem bandwidth for
	// restart reads. Zero or negative values model free (instantaneous)
	// I/O, matching netsim.Params.SerializeCost.
	CkptReadBandwidth float64
	// StragglerP and StragglerMax drive the retired §3.4 dialled-in
	// write-straggler model.
	//
	// Deprecated: consulted only when Storage.LegacyStraggler is set.
	// In the storage pipeline stragglers emerge from PFS queueing
	// contention instead of a random multiplier.
	StragglerP   float64
	StragglerMax float64
	// Incremental enables delta checkpoint images: after the first (full)
	// checkpoint, images carry only the pages dirtied since the previous
	// one, so commit cost tracks dirty bytes instead of address-space
	// size. Restart materialises the base+delta chain back into full
	// state, bit-identical to full-image checkpointing.
	Incremental bool
	// FullImageEvery bounds the restart chain when Incremental is set: a
	// self-contained full image is emitted every Nth checkpoint (1 = all
	// full, 0 = only the first; the chain then grows without bound).
	FullImageEvery int
	// Islands is the number of event-queue lanes ranks are partitioned
	// across (<= 0 means one island, the serial layout). When
	// Net.GroupSize is set, rank r lands on island (r/GroupSize) mod
	// Islands so a topology group is never split across islands —
	// cross-island messages then always pay the cross-group latency the
	// parallel lookahead is derived from. On a flat fabric the partition
	// is contiguous blocks. The partition never changes observable
	// output: island lanes merge into the exact single-queue order.
	Islands int
	// Workers is the number of goroutines draining island lanes during
	// parallel windows (<= 1 disables parallel execution entirely).
	// Worker count never changes observable output either, only
	// wall-clock time.
	Workers int
	// Seed drives the straggler RNG (and nothing else — the scheduler
	// itself is deterministic).
	Seed uint64
	// Triggers are the scheduled checkpoint requests.
	Triggers []Trigger
	// FailAtCheckpoint, when non-zero, simulates a job failure FailDelay
	// of virtual time after checkpoint number FailAtCheckpoint commits;
	// Run then returns Failed and the caller restarts from the last
	// image. The delay is virtual time, not scheduler iterations: under
	// event dispatch "iterations" is not a meaningful unit. Internally it
	// compiles to a one-fault plan appended to Faults — the declarative
	// engine is the only failure machinery.
	FailAtCheckpoint int
	FailDelay        vtime.Duration
	// Faults is the compiled fault plan: an ordered list of one-shot
	// injections at named protocol points (faultplan.Compile output).
	Faults []faultplan.Fault
	// RetainGenerations is how many full checkpoint generations are kept
	// on the simulated filesystem beyond the newest; restart falls back
	// through them when the newest links fail verification. BaseConfig
	// sets 2; zero retains only the newest generation (the legacy
	// behaviour).
	RetainGenerations int
	// MaxRestarts bounds the fleet engine's restart retry loop (failed
	// restart attempts included); the engine returns ErrRestartsExhausted
	// past it. Zero or negative means unbounded. BaseConfig sets 8.
	MaxRestarts int

	// Scratch, when non-nil, lends recycled allocations (event-queue
	// lanes, collective rendezvous storage, memsim buffers) to this run
	// and receives them back via Coordinator.Release. A Scratch must
	// back at most one live Coordinator at a time; the fleet engine owns
	// that discipline via a sync.Pool. Pooled storage is handed over
	// reset, so a scratch-backed run is byte-identical to a cold one.
	Scratch *Scratch
}

// BaseConfig returns the default cost-model parameters — bandwidths,
// straggler model, network, failure delay — without compiling any
// programs. Callers (the CLI's buildConfig, the fleet engine) overlay
// ranks, programs and triggers on top; DefaultConfig adds the default
// 8-rank workload for tests that want a complete runnable config.
func BaseConfig() Config {
	return Config{
		Ranks:              8,
		Personality:        kernelsim.Unpatched,
		Virtid:             virtid.ImplSharded,
		Net:                netsim.DefaultParams(),
		Storage:            storage.DefaultConfig(),
		CkptWriteBandwidth: 2e9,
		CkptReadBandwidth:  4e9,
		StragglerP:         0.1,
		StragglerMax:       4.0,
		FullImageEvery:     4,
		Seed:               42,
		// FailDelay is the deterministic mapping of the old scheduler's
		// 25-iteration failure countdown: at the default workload
		// granularity one full-scan iteration advanced virtual time by
		// roughly one compute phase (~250us), so the failure lands a few
		// application steps after the checkpoint commits.
		FailDelay:         250 * vtime.Microsecond,
		RetainGenerations: 2,
		MaxRestarts:       8,
	}
}

// DefaultConfig returns a runnable 8-rank configuration.
func DefaultConfig() Config {
	cfg := BaseConfig()
	cfg.Programs = scenario.MustPrograms("default", scenario.Params{Ranks: 8, Steps: 30, Seed: 42})
	return cfg
}

// Outcome reports how a Run ended.
type Outcome int

const (
	// Completed means every rank exhausted its script.
	Completed Outcome = iota
	// Failed means the configured failure injection fired; the caller
	// should Restart and Run again.
	Failed
)

// String returns a human-readable outcome name.
func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	default:
		return "unknown"
	}
}

// CheckpointRecord describes one committed checkpoint.
type CheckpointRecord struct {
	Seq           int
	RequestedAt   vtime.Time
	MidCollective bool
	// SafeAt is the virtual time (max rank clock) at which the safe
	// point was reached and draining began.
	SafeAt vtime.Time
	// DeferredFor is how much virtual application progress elapsed
	// between the request and the safe point (non-zero when the request
	// landed mid-collective).
	DeferredFor  vtime.Duration
	DrainedMsgs  int
	DrainedBytes uint64
	// ImageBytes is what this checkpoint actually wrote to the parallel
	// filesystem: full snapshots, or only the carried (post-dedup) dirty
	// pages for incremental images.
	ImageBytes uint64
	// FullBytes is what self-contained images of the same state would
	// have written; ImageBytes/FullBytes is the incremental saving.
	FullBytes uint64
	// DirtyBytes counts the bytes in pages dirtied since the previous
	// checkpoint, before dedup (equal to ImageBytes for full images).
	DirtyBytes uint64
	// DedupBytes counts dirty page bytes dropped because their contents
	// were bit-identical to the previous committed generation.
	DedupBytes uint64
	// FullImages and DeltaImages count per-rank image modes (a rank with
	// no committed base falls back to full even mid-chain).
	FullImages  int
	DeltaImages int
	// MaxWriteTime is the slowest rank's image write (straggler-scaled);
	// for incremental checkpoints it is charged per dirty byte carried.
	MaxWriteTime vtime.Duration
	// DrainPlanned counts the in-flight collectives the dependency-
	// ordered drain (arXiv:2408.02218) completed before this checkpoint
	// could land, including collectives that entered the plan while the
	// drain ran; OverlapWidth is how many were simultaneously in flight
	// when the plan was built; DrainEvents counts the scheduler events
	// dispatched while draining. All zero for a request serviced at an
	// immediate safe point.
	DrainPlanned int
	OverlapWidth int
	DrainEvents  uint64
	// StoredBytes is what the storage layer actually moved for this
	// checkpoint: ImageBytes after the delta-page compression stage
	// (equal to ImageBytes when compression is off).
	StoredBytes uint64
	// CompressSavedBytes and CompressTime account the per-page delta
	// compressor: PFS bytes saved versus kernel CPU charged to the
	// ranks' checkpoint-overhead clocks.
	CompressSavedBytes uint64
	CompressTime       vtime.Duration
	// StagedBytes and SpilledBytes split the stored payload between the
	// node burst buffers and the synchronous PFS write-through forced by
	// capacity overflow (both zero without staging).
	StagedBytes  uint64
	SpilledBytes uint64
	// PFSWait is the total virtual time this checkpoint's PFS transfers
	// — direct writes, capacity spills, asynchronous drains — spent
	// queued behind other transfers on the contended filesystem: the
	// emergent-straggler signal that replaced the dialled-in model.
	PFSWait vtime.Duration
	// DurableAt is when this checkpoint's link finished draining to the
	// PFS and became a durable restore candidate; for direct writes it
	// equals SafeAt + MaxWriteTime. Zero in legacy-straggler mode.
	DurableAt vtime.Time
	// TornImages counts per-rank images whose PFS write was interrupted by
	// an injected torn-write fault (Complete == false, partial payload);
	// CorruptPages counts pages silently damaged by injected
	// page-corruption faults. Both zero for a clean checkpoint.
	TornImages   int
	CorruptPages int
	// DrainTornImages and DrainCorruptPages count injected faults on the
	// buffer→PFS drain hop ("image-write/drain" anchors): the damage
	// lands on the durable copy after the commit fingerprinted the clean
	// staged payload, so the run continues and the damage surfaces only
	// at restart verification.
	DrainTornImages   int
	DrainCorruptPages int
	// Fingerprint digests every rank's image for determinism checks.
	Fingerprint uint64
}

// DedupRatio reports the fraction of dirty bytes dropped by dedup.
func (r CheckpointRecord) DedupRatio() float64 {
	if r.DirtyBytes == 0 {
		return 0
	}
	return float64(r.DedupBytes) / float64(r.DirtyBytes)
}

// RestartRecord describes one successful restart.
type RestartRecord struct {
	FromSeq int
	// ResumeClock is the restored maximum rank clock.
	ResumeClock vtime.Time
	// FallbackDepth is how many committed checkpoints the restore point
	// sits behind the newest (0 = restored from the newest link; each
	// torn, corrupt or poisoned link walks it one deeper).
	FallbackDepth int
	// LostWork is the virtual application time the fallback discards: the
	// dead timeline's high-water clock minus the restored clock — work the
	// replay must recompute.
	LostWork vtime.Duration
	// TornLinks and CorruptLinks count chain links rejected during the
	// verification walk (across retried attempts of this restart);
	// VerifiedPages and VerifyTime account the per-page FNV rehash cost
	// the walk charged to the ranks' checkpoint-overhead clocks.
	TornLinks     int
	CorruptLinks  int
	VerifiedPages int
	VerifyTime    vtime.Duration
	// BufferOnlyLinks counts links the walk skipped because their images
	// were staged in node burst buffers but never finished draining to
	// the PFS when the job died — copies that died with the node, not
	// restore candidates. They are rejected on metadata alone, without
	// per-page verification cost.
	BufferOnlyLinks int
}

// request is one in-flight checkpoint request.
type request struct {
	at            vtime.Time
	midCollective bool
	// trigger is the index of the trigger that fired this request, so a
	// restart can un-consume triggers whose checkpoint never committed.
	trigger int
}

// chainLink is one committed checkpoint: the per-rank images plus the
// network counter snapshot taken at its commit point, so restart can
// resume from any verified link of a chain, not only the newest.
type chainLink struct {
	seq      int
	images   []rank.Image
	counters netsim.Counters
	// durable marks the link's images safe on the PFS: written directly,
	// or with every burst-buffer copy drained. Restart only restores
	// from durable links — a staged-but-undrained copy dies with the
	// node's buffers.
	durable bool
	// pendingDrains counts the per-rank drains still in flight;
	// staged[r] records rank r's staged bytes so the drain-done event
	// (or generation retirement) can free its buffer occupancy. staged
	// is nil for direct/legacy links.
	pendingDrains int
	staged        []uint64
}

// generation is one full-image checkpoint plus the incremental links
// committed on top of it: links[0] is always full, every later link a
// delta onto its predecessor. The coordinator retains the newest
// generation plus Config.RetainGenerations older ones, and restart walks
// them newest-first to the newest verifiable restore point.
type generation struct {
	links []chainLink
}

// materializeLink folds rank i's image chain up to (and including) link
// index li into one full image, returning it together with the bytes
// restart had to read to do so.
func (g *generation) materializeLink(li, i int) (rank.Image, uint64) {
	img := g.links[0].images[i]
	readBytes := img.Bytes()
	for _, link := range g.links[1 : li+1] {
		readBytes += link.images[i].Bytes()
		img = rank.Overlay(img, link.images[i])
	}
	return img, readBytes
}

// eventKind identifies one scheduler event type.
type eventKind int

const (
	// evRankReady dispatches one rank's next scripted operation.
	evRankReady eventKind = iota
	// evDelivery makes a message visible at its receiver; if the
	// receiver is blocked on a matching receive it is woken.
	evDelivery
	// evCollectiveDone completes the forming collective for every
	// participant.
	evCollectiveDone
	// evTrigger arms or fires one checkpoint trigger at its At time.
	evTrigger
	// evFail is the injected failure.
	evFail
	// evDrainDone completes one rank's asynchronous burst-buffer→PFS
	// drain for one committed checkpoint. It lives on the global lane —
	// it mutates chain-link durability, cross-island state — so parallel
	// windows never run past one.
	evDrainDone
)

// event is one entry on the virtual-time queue. Exactly one payload
// field group is meaningful per kind.
type event struct {
	kind       eventKind
	rank       int             // evRankReady; evDrainDone: draining rank
	msg        *netsim.Message // evDelivery
	trigger    int             // evTrigger: index into cfg.Triggers; evFail: index into faults; evDrainDone: checkpoint seq
	completion vtime.Time      // evCollectiveDone
	comm       int             // evCollectiveDone: communicator the collective ran over
	seq        uint64          // evCollectiveDone: forming-instance number (staleness guard)
}

// comm is one communicator the job knows: id 0 is MPI_COMM_WORLD,
// higher ids are minted by comm-split completions in deterministic
// (colour-sorted) order. Members are sorted rank ids.
type comm struct {
	members []int
}

// forming is the rendezvous of one in-flight collective: the ranks that
// have arrived at the collective currently forming on one communicator,
// in arrival order. planned and waiting are drain-mode state: whether
// the collective is part of the current drain plan, and which live
// members the plan still expects to arrive.
type forming struct {
	commID    int
	seq       uint64 // global collective-instance number (deterministic)
	kind      netsim.CollectiveKind
	bytes     uint64
	stamps    []vtime.Stamp
	ranks     []int
	colors    []int // per-arrival colours, comm-splits only
	scheduled bool
	planned   bool
	waiting   map[int]bool
}

// Coordinator owns the ranks, the network and the checkpoint protocol.
type Coordinator struct {
	cfg   Config
	ranks []*rank.Rank
	net   *netsim.Network
	rng   *vtime.RNG
	// mempool backs every rank's address-space buffers; it comes from
	// the run's Scratch so buffers recycle across runs (and across
	// restarts within a run).
	mempool *memsim.Pool

	// queues holds islands+1 lanes: lanes [0, islands) carry one
	// island's ready/delivery events, lane islands (the global lane)
	// carries collective completions, triggers and the failure event —
	// everything that mutates cross-island state and therefore only
	// executes at serial points.
	queues   *vtime.IslandQueues[event]
	islands  int
	workers  int
	islandOf []int // rank id -> island lane
	// lookahead is the conservative parallel window width: no event can
	// influence another island sooner than this far in the future
	// (netsim.Params.CrossLookahead). Zero disables parallel windows.
	lookahead vtime.Duration
	// inWindow marks that worker goroutines currently own the island
	// lanes; ScheduleDelivery routes through per-island buffers instead
	// of merge-mode pushes while it is set. Written only while no
	// workers run.
	inWindow bool
	lanebufs []laneBuf

	triggers []Trigger
	fired    []bool
	// unfired counts triggers that have not fired yet; parallel windows
	// require it to be zero so trigger arming (whose conditions must be
	// re-checked after every single event) always runs serially.
	unfired int
	// armed holds indexes of condition triggers (MidCollective/InFlight)
	// whose At time has passed; their conditions are re-checked after
	// every dispatched event.
	armed   []int
	pending []request

	// Communicator registry: comms[0] is MPI_COMM_WORLD; comm-split
	// completions append sub-communicators in deterministic order. It is
	// rebuilt from the restored rank images on restart.
	comms []comm

	// Collective rendezvous state: one forming instance per communicator
	// with arrivals outstanding. colls indexes by communicator id;
	// collList keeps instance order (by seq) so every iteration over the
	// in-flight set — scheduling re-checks, drain-graph construction,
	// deadlock diagnostics — is deterministic. collSeq numbers instances;
	// formingPool recycles completed rendezvous so the steady-state event
	// loop does not allocate per collective. inCollComm[r] is the
	// communicator rank r is currently waiting in (-1 when it is not
	// inside a collective) — the shared-rank information the drain
	// planner's edges are built from.
	colls       map[int]*forming
	collList    []*forming
	collSeq     uint64
	formingPool []*forming
	inCollComm  []int

	// Drain-mode state (see drainplan.go): while draining, ranks the
	// plan does not need are held at their next collective boundary and
	// consume no scheduler work until the checkpoint commits.
	draining         bool
	plan             *drainPlan
	held             map[int]bool
	drainStartEvents uint64

	// doneCount and maxClock are maintained incrementally so the hot
	// loop never scans all ranks.
	doneCount int
	maxClock  vtime.Time

	records  []CheckpointRecord
	restarts []RestartRecord
	// gens holds the retained committed generations, oldest first; the
	// last element is the chain new deltas extend. Empty until the first
	// checkpoint commits.
	gens []*generation

	// Fault-plan state: faults is the compiled plan (legacy
	// FailAtCheckpoint appended as a one-fault plan), faultFired marks
	// each as consumed (every fault is one-shot), poisoned records the
	// checkpoint seqs an injected restart fault destroyed mid-restore, and
	// restartAttempts counts Restart calls (failed ones included) — the
	// ordinal restart faults key on. pendTorn/pendCorrupt/pendVerifyPages/
	// pendVerifyTime accumulate verification-walk accounting across the
	// failed attempts of one restart, folded into the RestartRecord of the
	// attempt that succeeds.
	faults          []faultplan.Fault
	faultFired      []bool
	poisoned        map[int]bool
	restartAttempts int
	pendTorn        int
	pendCorrupt     int
	pendVerifyPages int
	pendVerifyTime  vtime.Duration
	pendBufferOnly  int

	// Storage-pipeline state: pfs is the contended shared-filesystem
	// server every synchronous write, capacity spill and asynchronous
	// drain queues on; bbUsed tracks each rank's staged-but-undrained
	// burst-buffer occupancy (allocated only when staging is on);
	// drainReqs is the per-checkpoint drain-request scratch. All of it
	// hangs off the Coordinator, so concurrent fleet runs never share
	// queue state, and Restart resets it — transfers of an abandoned
	// timeline die with it.
	pfs       storage.PFS
	bbUsed    []uint64
	drainReqs []drainReq

	// events counts dispatched queue events; rankVisits counts how many
	// times the scheduler touched a rank (op execution, wake attempt,
	// collective completion). Under the old full-scan loop the visit
	// count was iterations x ranks; here it scales with actual work.
	events     uint64
	rankVisits uint64
}

// drainReq is one rank's staged payload awaiting its asynchronous
// burst-buffer→PFS drain, queued at the time its staging write finished.
type drainReq struct {
	rank   int
	bytes  uint64
	arrive vtime.Time
}

// New builds a job from the config: one rank per ID with a generated
// SPMD script, a fresh network wired for event-driven delivery, the
// configured triggers scheduled, and every rank's first ready event
// seeded.
func New(cfg Config) *Coordinator {
	if cfg.Ranks <= 0 {
		panic("coordinator: config needs at least one rank")
	}
	if len(cfg.Programs) != cfg.Ranks {
		panic(fmt.Sprintf("coordinator: config carries %d programs for %d ranks", len(cfg.Programs), cfg.Ranks))
	}
	islands := cfg.Islands
	if islands <= 0 {
		islands = 1
	}
	if islands > cfg.Ranks {
		islands = cfg.Ranks
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > islands {
		workers = islands
	}
	world := make([]int, cfg.Ranks)
	for i := range world {
		world[i] = i
	}
	// A scratch-backed run draws its expensive storage — queue lanes,
	// per-rank slices, rendezvous instances, memsim buffers — from the
	// retired run that fed the scratch; a cold run allocates the same
	// shapes fresh. Either way the storage starts at its zero point, so
	// the two runs are byte-identical.
	sc := cfg.Scratch
	if sc == nil {
		sc = NewScratch()
	}
	c := &Coordinator{
		cfg: cfg,
		net: netsim.New(cfg.Net),
		rng: vtime.NewRNG(cfg.Seed),
		// One lane per island plus the global lane, each preallocated
		// for its steady-state population (one ready event per rank).
		queues:      sc.takeQueues(islands+1, cfg.Ranks/islands+16),
		islands:     islands,
		workers:     workers,
		islandOf:    takeSlice(&sc.islandOf, cfg.Ranks),
		lookahead:   cfg.Net.CrossLookahead(),
		lanebufs:    sc.takeLanebufs(islands),
		triggers:    append([]Trigger(nil), cfg.Triggers...),
		fired:       takeSlice(&sc.fired, len(cfg.Triggers)),
		unfired:     len(cfg.Triggers),
		ranks:       sc.takeRanks(cfg.Ranks),
		formingPool: sc.takeForming(),
		comms:       []comm{{members: world}},
		colls:       make(map[int]*forming),
		inCollComm:  takeSlice(&sc.inCollComm, cfg.Ranks),
		held:        sc.takeHeld(),
		mempool:     sc.mem,
		pfs:         storage.NewPFS(cfg.Storage.PFSBandwidth),
	}
	if cfg.Storage.Staging && !cfg.Storage.LegacyStraggler {
		c.bbUsed = make([]uint64, cfg.Ranks)
	}
	for id := range c.islandOf {
		if cfg.Net.GroupSize > 0 {
			// A topology group is never split across islands, so every
			// cross-island message pays at least CrossLookahead.
			c.islandOf[id] = (id / cfg.Net.GroupSize) % islands
		} else {
			// Flat fabric: contiguous blocks of Ranks/islands.
			c.islandOf[id] = id * islands / cfg.Ranks
		}
	}
	for i := range c.inCollComm {
		c.inCollComm[i] = -1
	}
	c.net.SetDeliveryScheduler(c)
	for i, t := range c.triggers {
		c.queues.Push(c.globalLane(), t.At, event{kind: evTrigger, trigger: i})
	}
	// The fault plan: the legacy FailAtCheckpoint/FailDelay pair compiles
	// to a one-fault plan appended after the declarative faults, so the
	// two mechanisms are one engine. Virtual-time faults are scheduled up
	// front like triggers — on the global lane, so parallel windows never
	// run past one.
	c.faults = append(c.faults, cfg.Faults...)
	if cfg.FailAtCheckpoint > 0 {
		c.faults = append(c.faults, faultplan.Fault{
			Anchor: faultplan.AtCheckpointCommit,
			N:      cfg.FailAtCheckpoint,
			Kind:   faultplan.RankCrash,
			Delay:  cfg.FailDelay,
		})
	}
	if len(c.faults) > 0 {
		c.faultFired = make([]bool, len(c.faults))
	}
	for i, f := range c.faults {
		if f.Anchor == faultplan.AtVirtualTime {
			c.queues.Push(c.globalLane(), f.Time, event{kind: evFail, trigger: i})
		}
	}
	for id := 0; id < cfg.Ranks; id++ {
		r := rank.NewPooled(id, cfg.Personality, cfg.Virtid, cfg.Programs[id], c.mempool)
		r.SetIsland(c.islandOf[id])
		c.ranks = append(c.ranks, r)
		if r.State() == rank.Done {
			c.doneCount++
		} else {
			c.scheduleReady(r)
		}
	}
	return c
}

// globalLane is the lane index of the global (cross-island) event lane.
func (c *Coordinator) globalLane() int { return c.islands }

// ScheduleDelivery implements netsim.DeliveryScheduler: every injected
// message becomes a delivery event on the receiver's island lane at its
// arrival time. In serial mode it is invoked from the scheduler
// goroutine; during a parallel window it is invoked from the worker
// goroutine executing the sender, which owns the sender's lane — an
// intra-island delivery is pushed onto that lane directly, a
// cross-island one is buffered on the sender's island and merged at the
// window barrier (its arrival is at or past the horizon by the
// lookahead argument, so no worker has run past it).
func (c *Coordinator) ScheduleDelivery(m *netsim.Message) {
	lane := c.islandOf[m.Dst]
	if c.inWindow {
		src := c.islandOf[m.Src]
		if src == lane {
			c.queues.WorkerPush(lane, m.Arrive, event{kind: evDelivery, msg: m})
		} else {
			buf := &c.lanebufs[src]
			buf.msgs = append(buf.msgs, m)
		}
		return
	}
	c.queues.Push(lane, m.Arrive, event{kind: evDelivery, msg: m})
}

// scheduleReady queues the rank's next ready event on its island lane,
// if it has one.
func (c *Coordinator) scheduleReady(r *rank.Rank) {
	if t, ok := r.NextReady(); ok {
		c.queues.Push(c.islandOf[r.ID()], t, event{kind: evRankReady, rank: r.ID()})
	}
}

// noteClock raises the job's virtual-time high-water mark.
func (c *Coordinator) noteClock(t vtime.Time) {
	if t > c.maxClock {
		c.maxClock = t
	}
}

// Ranks returns the simulated ranks.
func (c *Coordinator) Ranks() []*rank.Rank { return c.ranks }

// Net returns the simulated interconnect.
func (c *Coordinator) Net() *netsim.Network { return c.net }

// Records returns the committed checkpoint records.
func (c *Coordinator) Records() []CheckpointRecord { return c.records }

// Restarts returns the restart records.
func (c *Coordinator) Restarts() []RestartRecord { return c.restarts }

// EventsDispatched returns the number of queue events popped so far.
func (c *Coordinator) EventsDispatched() uint64 { return c.events }

// RankVisits returns how many times the scheduler touched a rank: one
// per executed operation, wake attempt and collective completion. The
// old full-scan loop visited every rank on every iteration; this counter
// is what the scaling tests compare against that baseline.
func (c *Coordinator) RankVisits() uint64 { return c.rankVisits }

// MaxClock returns the maximum rank clock — the job's virtual makespan so
// far. It scans all ranks and is intended for reports and checkpoint
// records, not the per-event hot path (which uses the incremental
// high-water mark).
func (c *Coordinator) MaxClock() vtime.Time {
	var max vtime.Time
	for _, r := range c.ranks {
		if t := r.Clock().Now(); t > max {
			max = t
		}
	}
	return max
}

func (c *Coordinator) nonDone() int { return c.cfg.Ranks - c.doneCount }

// inCollective counts the ranks currently waiting inside any forming
// collective.
func (c *Coordinator) inCollective() int {
	n := 0
	for _, f := range c.collList {
		n += len(f.ranks)
	}
	return n
}

// collectiveInProgress reports whether any collective is in flight.
func (c *Coordinator) collectiveInProgress() bool { return len(c.collList) > 0 }

// atSafePoint reports whether a checkpoint may proceed: no collective is
// in flight on any communicator (paper §3.2 — a checkpoint either
// completes the in-flight collectives first, in dependency order, or
// sits out until they have).
func (c *Coordinator) atSafePoint() bool { return !c.collectiveInProgress() }

// liveMembers counts a communicator's members whose scripts are not
// exhausted — the participation bar a forming collective must reach.
func (c *Coordinator) liveMembers(commID int) int {
	if commID == 0 {
		return c.nonDone()
	}
	n := 0
	for _, id := range c.comms[commID].members {
		if c.ranks[id].State() != rank.Done {
			n++
		}
	}
	return n
}

func (c *Coordinator) allDone() bool { return c.doneCount == c.cfg.Ranks }

// fireTrigger converts trigger i into a pending checkpoint request.
func (c *Coordinator) fireTrigger(i int) {
	c.fired[i] = true
	c.unfired--
	c.pending = append(c.pending, request{at: c.maxClock, midCollective: c.collectiveInProgress(), trigger: i})
}

// armTrigger handles trigger i's At time coming due: plain virtual-time
// triggers fire immediately; condition triggers (mid-collective,
// in-flight) join the armed set and are checked after every event.
func (c *Coordinator) armTrigger(i int) {
	if c.fired[i] {
		return
	}
	t := c.triggers[i]
	if !t.MidCollective && !t.InFlight && t.FormingColls == 0 {
		c.fireTrigger(i)
		return
	}
	c.armed = append(c.armed, i)
	c.checkArmedTriggers()
}

// checkArmedTriggers fires any armed condition trigger whose condition
// currently holds. With no armed triggers this is a single length check,
// so the per-event cost of trigger support is O(1).
func (c *Coordinator) checkArmedTriggers() {
	if len(c.armed) == 0 {
		return
	}
	kept := c.armed[:0]
	for _, i := range c.armed {
		t := c.triggers[i]
		due := false
		switch {
		case t.MidCollective:
			in := c.inCollective()
			due = in > 0 && in < c.nonDone()
		case t.InFlight:
			due = c.net.InFlight() > 0
		case t.FormingColls > 0:
			due = len(c.collList) >= t.FormingColls
		}
		if due {
			c.fireTrigger(i)
		} else {
			kept = append(kept, i)
		}
	}
	c.armed = kept
}

// newForming starts the rendezvous of a collective on one communicator,
// recycling a completed instance's storage when one is available.
func (c *Coordinator) newForming(commID int, kind netsim.CollectiveKind, bytes uint64) *forming {
	var f *forming
	if n := len(c.formingPool); n > 0 {
		f = c.formingPool[n-1]
		c.formingPool = c.formingPool[:n-1]
	} else {
		f = &forming{}
	}
	f.commID = commID
	f.seq = c.collSeq
	c.collSeq++
	f.kind = kind
	f.bytes = bytes
	c.colls[commID] = f
	c.collList = append(c.collList, f)
	return f
}

// removeForming retires a completed rendezvous and recycles its storage.
func (c *Coordinator) removeForming(f *forming) {
	delete(c.colls, f.commID)
	for i, g := range c.collList {
		if g == f {
			c.collList = append(c.collList[:i], c.collList[i+1:]...)
			break
		}
	}
	f.stamps = f.stamps[:0]
	f.ranks = f.ranks[:0]
	f.colors = f.colors[:0]
	f.scheduled = false
	f.planned = false
	f.waiting = nil
	c.formingPool = append(c.formingPool, f)
}

// maybeScheduleCollectiveDone schedules one collective's completion
// event once every live member of its communicator has arrived:
// completion time is the latest arrival stamp plus the modelled
// collective cost.
func (c *Coordinator) maybeScheduleCollectiveDone(f *forming) {
	n := len(f.ranks)
	if f.scheduled || n == 0 || n < c.liveMembers(f.commID) {
		return
	}
	latest := vtime.MaxStamp(f.stamps)
	completion := latest.When.Add(c.cfg.Net.CollectiveCost(f.kind, n, f.bytes))
	f.scheduled = true
	c.queues.Push(c.globalLane(), completion, event{kind: evCollectiveDone, comm: f.commID, seq: f.seq, completion: completion})
}

// collectiveKindOf maps a collective op onto the network cost model.
func collectiveKindOf(k scenario.OpKind) netsim.CollectiveKind {
	switch k {
	case scenario.OpBarrier:
		return netsim.Barrier
	case scenario.OpAllreduce:
		return netsim.Allreduce
	case scenario.OpCommSplit:
		return netsim.CommSplit
	default:
		panic(fmt.Sprintf("coordinator: op %v is not a collective", k))
	}
}

// joinCollective records one rank's arrival at the collective forming on
// its target communicator, starting the rendezvous if this is the first
// arrival. While a drain is in progress, a newly started collective
// joins the plan (only ranks the plan needs reach this point — everyone
// else is held at the boundary), and a planned collective's waiting set
// shrinks with each arrival.
func (c *Coordinator) joinCollective(r *rank.Rank, tr rank.Transition) {
	commID := r.CommID(tr.Op.Comm)
	kind := collectiveKindOf(tr.Op.Kind)
	f := c.colls[commID]
	if f == nil {
		f = c.newForming(commID, kind, tr.Op.Bytes)
	} else {
		if f.scheduled {
			panic(fmt.Sprintf("coordinator: rank %d arrived at comm %d %v after its completion was scheduled",
				r.ID(), commID, kind))
		}
		if f.kind != kind {
			panic(fmt.Sprintf("coordinator: rank %d arrived at %v while %v is forming on comm %d (non-SPMD script)",
				r.ID(), kind, f.kind, commID))
		}
	}
	f.stamps = append(f.stamps, tr.Stamp)
	f.ranks = append(f.ranks, r.ID())
	if kind == netsim.CommSplit {
		f.colors = append(f.colors, tr.Op.Color)
	}
	c.inCollComm[r.ID()] = commID
	if c.draining {
		if !f.planned {
			c.extendPlan(f)
		} else if f.waiting[r.ID()] {
			delete(f.waiting, r.ID())
			c.plan.needed[r.ID()]--
		}
	}
	c.maybeScheduleCollectiveDone(f)
}

// completeCollective finishes one communicator's collective for every
// participant: each advances to the completion time and its next ready
// event is scheduled. A comm-split additionally mints the new
// sub-communicators: arrivals are grouped by colour (colours ascending,
// members sorted), each group is assigned the next global communicator
// id, and every member registers the new handle in its virtualisation
// table — all deterministic, so restart replay re-mints identical ids.
func (c *Coordinator) completeCollective(commID int, seq uint64, completion vtime.Time) {
	f := c.colls[commID]
	if f == nil || f.seq != seq {
		return // stale event from an abandoned timeline
	}
	if f.kind == netsim.CommSplit {
		byColor := make(map[int][]int, 4)
		colors := make([]int, 0, 4)
		for i, id := range f.ranks {
			color := f.colors[i]
			if _, ok := byColor[color]; !ok {
				colors = append(colors, color)
			}
			byColor[color] = append(byColor[color], id)
		}
		sort.Ints(colors)
		for _, color := range colors {
			members := byColor[color]
			sort.Ints(members)
			id := len(c.comms)
			c.comms = append(c.comms, comm{members: members})
			for _, m := range members {
				c.rankVisits++
				r := c.ranks[m]
				c.inCollComm[m] = -1
				r.FinishCommSplit(completion, id, rank.RealCommBase+virtid.Real(id))
				c.afterCollectiveExit(r)
			}
		}
	} else {
		for _, id := range f.ranks {
			c.rankVisits++
			r := c.ranks[id]
			c.inCollComm[id] = -1
			r.FinishCollective(completion)
			c.afterCollectiveExit(r)
		}
	}
	c.noteClock(completion)
	c.removeForming(f)
}

// afterCollectiveExit updates bookkeeping for one rank leaving a
// collective: done accounting (which may lower other forming
// collectives' participation bars) or the next ready event.
func (c *Coordinator) afterCollectiveExit(r *rank.Rank) {
	if r.State() == rank.Done {
		c.noteDone()
	} else {
		c.scheduleReady(r)
	}
}

// noteDone records a rank's script ending and re-checks every forming
// collective: a finished rank lowers its communicators' participation
// bars, possibly making their completions schedulable. collList order
// keeps the re-check — and thus queue push order — deterministic.
func (c *Coordinator) noteDone() {
	c.doneCount++
	for _, f := range c.collList {
		c.maybeScheduleCollectiveDone(f)
	}
}

// afterRankProgress updates bookkeeping after a rank moved: the
// high-water clock, the done count, and — because a rank finishing its
// script lowers collective participation bars — possible collective
// completions.
func (c *Coordinator) afterRankProgress(r *rank.Rank) {
	c.noteClock(r.Clock().Now())
	if r.State() == rank.Done {
		c.noteDone()
	} else {
		c.scheduleReady(r)
	}
}

// dispatch executes one popped event. It returns failed=true when the
// injected failure fired.
func (c *Coordinator) dispatch(ev event) (failed bool) {
	switch ev.kind {
	case evRankReady:
		r := c.ranks[ev.rank]
		if r.State() != rank.Running {
			return false // stale: the timeline this event belonged to is gone
		}
		if c.draining && c.shouldHold(r) {
			// The rank reached its safe point for the in-progress drain:
			// it is held (no ready event) until the checkpoint commits or
			// the plan turns out to need it.
			c.held[r.ID()] = true
			return false
		}
		c.rankVisits++
		tr := r.Execute(c.net)
		switch tr.Kind {
		case rank.Advanced:
			c.afterRankProgress(r)
		case rank.BlockedOnRecv:
			// Zero scheduler work until a delivery event wakes it — but a
			// rank the drain plan needs must not starve behind a held
			// sender, so its blocked peer becomes needed (and released).
			if c.draining && c.plan.needed[r.ID()] > 0 {
				if peer, ok := r.BlockedOn(); ok && c.plan.needed[peer] == 0 {
					c.markNeeded(peer)
				}
			}
		case rank.JoinedCollective:
			c.noteClock(r.Clock().Now())
			c.joinCollective(r, tr)
		}
	case evDelivery:
		m := ev.msg
		r := c.ranks[m.Dst]
		if peer, ok := r.BlockedOn(); ok && peer == m.Src {
			c.rankVisits++
			if r.Wake(c.net, m.Arrive) {
				c.afterRankProgress(r)
			}
		}
		// Otherwise the receiver is not waiting for this message: it will
		// consume it from the network (the message has arrived by now, so
		// the arrival gate passes) or its drained inbox when its own ready
		// event reaches the receive, so the event is a no-op.
	case evCollectiveDone:
		c.completeCollective(ev.comm, ev.seq, ev.completion)
	case evTrigger:
		c.armTrigger(ev.trigger)
	case evFail:
		// Faults are one-shot: ordinal-anchored crashes were marked
		// consumed when scheduled; a virtual-time crash is consumed here,
		// so the restarted timeline replays through its firing point
		// without dying again.
		c.faultFired[ev.trigger] = true
		return true
	case evDrainDone:
		c.finishDrain(ev.trigger, ev.rank)
	}
	return false
}

// Run drives the event loop until the job completes or the configured
// failure injection fires. It may be called again after Restart.
//
// Each iteration first services checkpoint state (pending requests at a
// safe point, drain-plan construction otherwise) — always serially.
// Then, when the job is in a parallel-eligible phase (workers
// configured, no pending or draining checkpoint, no armed or unfired
// trigger), it tries to run one conservative window in which every
// island lane is drained concurrently up to the lookahead horizon; when
// the window cannot make progress (the next event is on the global
// lane) or the phase is not eligible, it falls back to popping a single
// event in the exact merged (time, seq) order — byte-identical to the
// single-queue scheduler.
func (c *Coordinator) Run() (Outcome, error) {
	for {
		for len(c.pending) > 0 && c.atSafePoint() {
			crashed, err := c.checkpoint()
			if err != nil {
				return Failed, err
			}
			if crashed {
				// A torn-write fault: the job died mid-image-write. The
				// partial link is committed (it is on the filesystem) but
				// restart verification will reject it.
				return Failed, nil
			}
		}
		if len(c.pending) > 0 && !c.draining {
			// Checkpoint intent with collectives in flight: build the
			// dependency-ordered drain plan (a cycle here is the
			// application's own deadlock, diagnosed rather than hung).
			if err := c.beginDrain(); err != nil {
				return Failed, err
			}
		}
		if c.allDone() {
			if got := c.net.InFlight(); got != 0 {
				return Failed, fmt.Errorf("coordinator: job done with %d unreceived messages", got)
			}
			c.sweepStaleDeliveries()
			return Completed, nil
		}
		if c.parallelEligible() && c.runWindow() {
			continue
		}
		ev, ok := c.pop()
		if !ok {
			// Before reporting the generic stall, check whether the
			// in-flight collectives explain it: a dependency cycle between
			// them is the classic mis-ordered-collectives deadlock, and the
			// diagnostic can name the ranks involved.
			if c.collectiveInProgress() {
				if _, err := topoOrder(c.buildDrainGraph()); err != nil {
					return Failed, fmt.Errorf("coordinator: deadlock after %d events: %w", c.events, err)
				}
			}
			return Failed, fmt.Errorf(
				"coordinator: deadlock after %d events — %d ranks not done, %d in collective, %d messages in flight, no event can wake them",
				c.events, c.nonDone(), c.inCollective(), c.net.InFlight())
		}
		if c.dispatch(ev) {
			return Failed, nil
		}
		c.checkArmedTriggers()
	}
}

// sweepStaleDeliveries pops the island-lane events still queued when
// the last rank finishes. They are all delivery events whose message
// was already consumed — the receiver reached its receive at or after
// the arrival time and took the message off the network queue before
// the wake event's turn came — and dispatching them would be a no-op:
// every rank is done, so there is no blocked receiver to wake. They are
// popped and counted anyway so that the events counter equals the total
// number of island events ever pushed in this timeline. A serial run
// and a parallel window reach the completion point having popped
// different subsets of these no-ops (a window drains every lane event
// below its horizon; the single-event loop stops at the completing
// event), and sweeping the remainder is what makes the reported event
// count identical for any island count, worker count and window
// schedule. Unfired triggers on the global lane are left alone — they
// are not part of any timeline's event flow.
func (c *Coordinator) sweepStaleDeliveries() {
	for lane := 0; lane < c.islands; lane++ {
		q := c.queues.Lane(lane)
		for {
			_, ev, ok := q.Pop()
			if !ok {
				break
			}
			if ev.kind != evDelivery {
				panic(fmt.Sprintf("coordinator: event kind %d queued on island lane %d after completion", ev.kind, lane))
			}
			c.events++
		}
	}
}

// pop removes the globally earliest event across all lanes — the exact
// order the old single-queue scheduler popped in.
func (c *Coordinator) pop() (event, bool) {
	_, _, ev, ok := c.queues.PopMin()
	if ok {
		c.events++
	}
	return ev, ok
}

// drain runs phase 1's message drain: every in-flight message is received
// into its destination rank's buffer, with probe and copy costs charged
// to the checkpoint-overhead accounts, until the per-pair counters agree
// the network is quiescent.
func (c *Coordinator) drain(rec *CheckpointRecord) error {
	for rounds := 0; c.net.InFlight() > 0; rounds++ {
		if rounds > c.cfg.Ranks+1 {
			return fmt.Errorf("coordinator: drain did not converge, %d messages still in flight", c.net.InFlight())
		}
		for _, r := range c.ranks {
			// One counter-comparison probe per peer that has ever sent
			// to this rank.
			r.ChargeCkptOverhead(vtime.Duration(c.net.PeersTo(r.ID())) * r.Kernel().DrainProbeCost())
			for _, m := range c.net.DrainTo(r.ID()) {
				r.BufferDrained(m)
				r.ChargeCkptOverhead(r.Kernel().DrainBufferCost(m.Bytes))
				rec.DrainedMsgs++
				rec.DrainedBytes += m.Bytes
			}
		}
	}
	return nil
}

// wantIncremental decides this checkpoint's capture mode: incremental
// only when configured, when a committed chain exists to delta against,
// and when the FullImageEvery cadence has not come due (each full image
// starts a new chain, bounding how many links a restart must read).
func (c *Coordinator) wantIncremental() bool {
	if !c.cfg.Incremental || len(c.gens) == 0 {
		return false
	}
	if c.cfg.FullImageEvery > 0 && len(c.gens[len(c.gens)-1].links) >= c.cfg.FullImageEvery {
		return false
	}
	return true
}

// captureStage captures one rank's image in the requested mode, charges
// the capture-side kernel costs (page-table scan over the whole upper
// half, one content hash per dirty page — only the scan scales with
// address-space size) and stamps the chain bookkeeping.
func (c *Coordinator) captureStage(r *rank.Rank, incremental bool, seq int) rank.Image {
	img := r.CaptureImage(incremental)
	img.Seq = seq
	if !img.Full {
		img.Base = seq - 1
		k := r.Kernel()
		r.ChargeCkptOverhead(vtime.Duration(img.Delta.ScannedPages)*k.PageScanCost() +
			vtime.Duration(img.Delta.DirtyPages)*k.PageHashCost())
	}
	return img
}

// accountStage folds one image's size accounting into the record.
// ImageBytes counts what actually reached the filesystem, so a torn image
// contributes only its partial written size.
func (c *Coordinator) accountStage(img rank.Image, rec *CheckpointRecord) {
	rec.ImageBytes += img.WrittenBytes
	rec.StoredBytes += img.StoredBytes
	rec.FullBytes += img.FullBytes()
	if img.Full {
		rec.FullImages++
		rec.DirtyBytes += img.Bytes()
		return
	}
	rec.DeltaImages++
	rec.DirtyBytes += img.Delta.DirtyBytes
	rec.DedupBytes += img.Delta.DedupBytes
}

// compressStage runs the storage config's per-page compressor over one
// rank's delta payload, charging the kernel CPU cost per input byte and
// recording the stored (post-compression) size on the image. Full images
// and torn (stage-fault) images pass through uncompressed: full snapshots
// are the chain's integrity anchor, and a torn write was aborted mid-copy.
func (c *Coordinator) compressStage(r *rank.Rank, img *rank.Image, rec *CheckpointRecord) {
	sc := &c.cfg.Storage
	if sc.LegacyStraggler || !sc.Compression || img.Full || !img.Complete {
		return
	}
	stored, raw := sc.CompressDelta(&img.Delta)
	cost := r.Kernel().CompressCost(raw, sc.CompressCost)
	r.ChargeCkptOverhead(cost)
	img.StoredBytes = img.WrittenBytes - raw + stored
	rec.CompressSavedBytes += raw - stored
	rec.CompressTime += cost
}

// writeStage charges one rank's commit-time image write, per byte
// actually carried, so incremental checkpoints pay for dirty pages only
// and a torn write pays only up to the tear.
//
// In the storage pipeline the write is either a direct transfer on the
// contended PFS (stragglers emerge from queueing behind the other ranks'
// writes) or a staging copy into the rank's node burst buffer at local
// bandwidth, with payload beyond the buffer's free capacity written
// through synchronously to the contended PFS. Staged bytes become a
// drain request, queued on the PFS once the staging copy finishes.
// Legacy-straggler mode reinstates the retired §3.4 flat-bandwidth write
// with the dialled-in random straggler multiplier.
func (c *Coordinator) writeStage(r *rank.Rank, img *rank.Image, rec *CheckpointRecord) {
	sc := &c.cfg.Storage
	if sc.LegacyStraggler {
		writeTime := ioTime(img.WrittenBytes, c.cfg.CkptWriteBandwidth)
		if c.cfg.StragglerP > 0 {
			writeTime = vtime.Duration(float64(writeTime) * c.rng.Straggler(c.cfg.StragglerP, c.cfg.StragglerMax))
		}
		r.ChargeCkptOverhead(writeTime)
		if writeTime > rec.MaxWriteTime {
			rec.MaxWriteTime = writeTime
		}
		return
	}
	start := rec.SafeAt
	var writeTime vtime.Duration
	if !sc.Staging {
		done, wait := c.pfs.Write(start, img.StoredBytes)
		rec.PFSWait += wait
		writeTime = done.Sub(start)
	} else {
		var free uint64
		if sc.BBCapacity > c.bbUsed[r.ID()] {
			free = sc.BBCapacity - c.bbUsed[r.ID()]
		}
		staged := img.StoredBytes
		if staged > free {
			staged = free
		}
		spill := img.StoredBytes - staged
		writeTime = ioTime(staged, sc.BBBandwidth)
		if spill > 0 {
			done, wait := c.pfs.Write(start.Add(writeTime), spill)
			rec.PFSWait += wait
			rec.SpilledBytes += spill
			writeTime = done.Sub(start)
		}
		c.bbUsed[r.ID()] += staged
		rec.StagedBytes += staged
		if staged > 0 {
			c.drainReqs = append(c.drainReqs, drainReq{rank: r.ID(), bytes: staged, arrive: start.Add(writeTime)})
		}
	}
	r.ChargeCkptOverhead(writeTime)
	if writeTime > rec.MaxWriteTime {
		rec.MaxWriteTime = writeTime
	}
}

// scheduleDrains installs the just-committed link's durability state: a
// direct or legacy write is durable at commit; a staged link queues one
// PFS drain per rank (rank order, so the FIFO contention is
// deterministic) and schedules each completion as a global-lane event.
// The link becomes durable only when its last drain lands — until then
// it is a buffer-only copy a restart must skip.
func (c *Coordinator) scheduleDrains(rec *CheckpointRecord) {
	g := c.gens[len(c.gens)-1]
	link := &g.links[len(g.links)-1]
	sc := &c.cfg.Storage
	if sc.LegacyStraggler {
		link.durable = true
		return
	}
	if !sc.Staging || len(c.drainReqs) == 0 {
		link.durable = true
		rec.DurableAt = rec.SafeAt.Add(rec.MaxWriteTime)
		return
	}
	link.staged = make([]uint64, len(c.ranks))
	for _, dr := range c.drainReqs {
		done, wait := c.pfs.Write(dr.arrive, dr.bytes)
		rec.PFSWait += wait
		link.staged[dr.rank] = dr.bytes
		link.pendingDrains++
		if done > rec.DurableAt {
			rec.DurableAt = done
		}
		c.queues.Push(c.globalLane(), done, event{kind: evDrainDone, rank: dr.rank, trigger: rec.Seq})
	}
	c.drainReqs = c.drainReqs[:0]
}

// finishDrain completes one rank's asynchronous drain for checkpoint
// seq: the burst-buffer occupancy is freed and, when this was the last
// outstanding drain, the link becomes durable. A link already retired
// from the retained set freed its occupancy when it was dropped, so a
// stale completion is a no-op.
func (c *Coordinator) finishDrain(seq, rankID int) {
	link := c.findLink(seq)
	if link == nil || link.staged == nil {
		return
	}
	c.bbUsed[rankID] -= link.staged[rankID]
	link.staged[rankID] = 0
	link.pendingDrains--
	if link.pendingDrains == 0 {
		link.staged = nil
		link.durable = true
	}
}

// findLink locates a retained chain link by checkpoint sequence number,
// newest first (drain completions almost always target the newest link).
func (c *Coordinator) findLink(seq int) *chainLink {
	for gi := len(c.gens) - 1; gi >= 0; gi-- {
		links := c.gens[gi].links
		for li := len(links) - 1; li >= 0; li-- {
			if links[li].seq == seq {
				return &links[li]
			}
		}
	}
	return nil
}

// releaseStaged frees the burst-buffer occupancy of every link in a
// generation being retired from the retained set: the simulated
// filesystem deletes the generation, so its staged copies stop holding
// buffer space. Any still-queued drain-done events for these links find
// them gone and no-op.
func (c *Coordinator) releaseStaged(g *generation) {
	for li := range g.links {
		link := &g.links[li]
		if link.staged == nil {
			continue
		}
		for r, b := range link.staged {
			c.bbUsed[r] -= b
		}
		link.staged = nil
		link.pendingDrains = 0
	}
}

// digestImage folds one image into the checkpoint fingerprint. Every
// payload iterated here is sorted by construction (regions by address,
// pages by index, virtid entries by virtual id), so the digest is
// deterministic across runs.
func (c *Coordinator) digestImage(h io.Writer, img rank.Image) {
	if !img.Complete {
		// A torn image digests its partial size so two runs of the same
		// fault plan fingerprint identically while differing from the
		// clean image. Content hashes below come from the capture-time
		// memos either way.
		fmt.Fprintf(h, "torn(%d/%d);", img.WrittenBytes, img.Bytes())
	}
	if img.Full {
		fmt.Fprintf(h, "%d:%d:%d:%x:%+v;", img.RankID, img.PC, img.Clock, img.Mem.Fingerprint(), img.Stats)
	} else {
		fmt.Fprintf(h, "%d:%d:%d:delta(%d<-%d,brk=%x):%+v;",
			img.RankID, img.PC, img.Clock, img.Seq, img.Base, img.Delta.Brk, img.Stats)
		for _, rd := range img.Delta.Regions {
			fmt.Fprintf(h, "rd(%q,%d,%d,%x,%d,%d", rd.Name, rd.Half, rd.Kind, rd.Addr, rd.Size, rd.DataLen)
			for _, p := range rd.Pages {
				fmt.Fprintf(h, ",%d=%x", p.Index, p.Hash)
			}
			fmt.Fprint(h, ");")
		}
	}
	for _, m := range img.Inbox {
		fmt.Fprintf(h, "in(%d,%d,%d,%d,%d);", m.Src, m.Dst, m.Tag, m.Bytes, m.Arrive)
	}
	for k := 0; k < virtid.NumKinds; k++ {
		fmt.Fprintf(h, "vt(%d,%d", k, img.Virt.Next[k])
		for _, e := range img.Virt.Entries[k] {
			fmt.Fprintf(h, ",%d=%x", e.VID, e.Real)
		}
		fmt.Fprint(h, ");")
	}
	for _, req := range img.PendingReqs {
		fmt.Fprintf(h, "pr(%d);", req)
	}
	for i := range img.Comms {
		fmt.Fprintf(h, "cm(%d,%d,%d);", i, img.Comms[i], img.CommIDs[i])
	}
}

// commitStage installs the captured link as the newest committed state:
// a full link starts a fresh generation (trimming the retained set to
// Config.RetainGenerations older ones), an incremental link extends the
// newest generation's chain. A link must be uniformly full or uniformly
// delta — ranks are constructed, checkpointed and restored together, so a
// mix means the coordinator's mode decision and the ranks' fallback logic
// disagree.
func (c *Coordinator) commitStage(images []rank.Image, rec *CheckpointRecord) {
	for _, img := range images[1:] {
		if img.Full != images[0].Full {
			panic(fmt.Sprintf("coordinator: checkpoint #%d mixes full and delta images", rec.Seq))
		}
	}
	link := chainLink{seq: rec.Seq, images: images, counters: c.net.CountersSnapshot()}
	if images[0].Full || len(c.gens) == 0 {
		c.gens = append(c.gens, &generation{links: []chainLink{link}})
		keep := c.cfg.RetainGenerations + 1
		if keep < 1 {
			keep = 1
		}
		if drop := len(c.gens) - keep; drop > 0 {
			for _, old := range c.gens[:drop] {
				c.releaseStaged(old)
			}
			c.gens = append(c.gens[:0], c.gens[drop:]...)
		}
		return
	}
	g := c.gens[len(c.gens)-1]
	g.links = append(g.links, link)
}

// checkpoint services the oldest pending request with the two-phase
// protocol. The caller guarantees the job is at a safe point. Ranks left
// blocked in a receive whose message was drained into their inbox are
// woken by the message's still-queued delivery event. crashed reports
// that an image-write fault killed the job during the commit — the
// partial link is committed, and the caller must stop the run.
func (c *Coordinator) checkpoint() (crashed bool, err error) {
	req := c.pending[0]
	c.pending = c.pending[1:]
	rec := CheckpointRecord{
		Seq:           len(c.records) + 1,
		RequestedAt:   req.at,
		MidCollective: req.midCollective,
	}
	if c.draining {
		// The dependency-ordered collective drain just completed: record
		// its shape and release the ranks held at their safe points once
		// the images are committed.
		rec.DrainPlanned = c.plan.planned
		rec.OverlapWidth = c.plan.width
		rec.DrainEvents = c.events - c.drainStartEvents
		defer c.endDrain()
	}

	// Phase 1: deliver the intent signal, then drain the network.
	for _, r := range c.ranks {
		r.ChargeCkptOverhead(r.Kernel().CheckpointSignalCost())
	}
	if err := c.drain(&rec); err != nil {
		return false, err
	}
	if got := c.net.InFlight(); got != 0 {
		return false, fmt.Errorf("coordinator: %d messages in flight after drain", got)
	}
	rec.SafeAt = c.MaxClock()
	rec.DeferredFor = rec.SafeAt.Sub(rec.RequestedAt)

	// Phase 2: the commit pipeline — capture, stage-hop faults,
	// compression, dedup accounting, write — run rank by rank in rank
	// order, so no map order reaches the record. Capture runs first for
	// every rank so stage-hop image-write faults (torn or corrupted
	// links) can damage the captured payloads before compression,
	// accounting, write charging and digesting see them; for a clean
	// checkpoint the split loop is byte-identical to the fused one
	// (captures do not interact across ranks, and in legacy mode the
	// straggler RNG draws stay in rank order).
	incremental := c.wantIncremental()
	images := make([]rank.Image, len(c.ranks))
	for i, r := range c.ranks {
		images[i] = c.captureStage(r, incremental, rec.Seq)
	}
	crashed = c.applyImageFaults(images, &rec)
	for i, r := range c.ranks {
		c.compressStage(r, &images[i], &rec)
	}
	h := fnv.New64a()
	c.drainReqs = c.drainReqs[:0]
	for i, r := range c.ranks {
		c.accountStage(images[i], &rec)
		c.writeStage(r, &images[i], &rec)
		c.digestImage(h, images[i])
	}
	rec.Fingerprint = h.Sum64()
	c.commitStage(images, &rec)
	// Drain-hop faults damage the committed link's durable copy after
	// the fingerprint digested the clean staged payload; the drains are
	// then queued on the contended PFS and their completions scheduled
	// as global-lane events.
	c.applyDrainFaults(&rec)
	c.scheduleDrains(&rec)
	c.records = append(c.records, rec)

	// Checkpoint-commit crashes are events like everything else: each
	// fires its delay of virtual time after the commit point. They live
	// on the global lane, so parallel windows never run past one —
	// exactly the events a serial run would have processed before the
	// failure are processed before it here.
	for i, f := range c.faults {
		if !c.faultFired[i] && f.Anchor == faultplan.AtCheckpointCommit && f.N == rec.Seq {
			c.faultFired[i] = true
			c.queues.Push(c.globalLane(), rec.SafeAt.Add(f.Delay), event{kind: evFail, trigger: i})
		}
	}
	return crashed, nil
}

// applyImageFaults fires the image-write faults anchored to this
// checkpoint: a torn-write truncates the target rank's image at a
// byte-accurate partial size and kills the job at the commit point
// (crashed=true), a page-corruption silently damages the payload — the
// capture-time hash memos go stale, which is exactly what restart
// verification later trips over. Full-image corruption deep-copies the
// touched regions first (snapshot payloads alias live sealed slices).
func (c *Coordinator) applyImageFaults(images []rank.Image, rec *CheckpointRecord) (crashed bool) {
	for i, f := range c.faults {
		if c.faultFired[i] || f.Anchor != faultplan.AtImageWrite || f.Hop != faultplan.HopStage || f.N != rec.Seq {
			continue
		}
		c.faultFired[i] = true
		img := &images[f.Rank]
		switch f.Kind {
		case faultplan.TornWrite:
			total := img.Bytes()
			written := total / 2
			if f.Pages > 0 {
				written = uint64(f.Pages) * memsim.PageSize
			}
			if written > total {
				written = total
			}
			img.Complete = false
			img.WrittenBytes = written
			img.StoredBytes = written
			rec.TornImages++
			crashed = true
		case faultplan.PageCorruption:
			if img.Full {
				rec.CorruptPages += memsim.CorruptSnapshot(&img.Mem, f.Pages)
			} else {
				rec.CorruptPages += memsim.CorruptDelta(&img.Delta, f.Pages)
			}
		}
	}
	return crashed
}

// applyDrainFaults fires the image-write faults qualified to the
// buffer→PFS drain hop for the just-committed checkpoint. The damage
// lands on the committed link's images — the durable copy — after the
// commit fingerprinted the clean staged payload: the job does not crash
// (the drain is asynchronous; nothing observes the damage at commit
// time), and a torn or corrupted durable copy surfaces only when a
// later restart's verification walk rehashes the link.
func (c *Coordinator) applyDrainFaults(rec *CheckpointRecord) {
	g := c.gens[len(c.gens)-1]
	link := &g.links[len(g.links)-1]
	for i, f := range c.faults {
		if c.faultFired[i] || f.Anchor != faultplan.AtImageWrite || f.Hop != faultplan.HopDrain || f.N != rec.Seq {
			continue
		}
		c.faultFired[i] = true
		img := &link.images[f.Rank]
		switch f.Kind {
		case faultplan.TornWrite:
			total := img.Bytes()
			written := total / 2
			if f.Pages > 0 {
				written = uint64(f.Pages) * memsim.PageSize
			}
			if written > total {
				written = total
			}
			img.Complete = false
			img.WrittenBytes = written
			img.StoredBytes = written
			rec.DrainTornImages++
		case faultplan.PageCorruption:
			if img.Full {
				rec.DrainCorruptPages += memsim.CorruptSnapshot(&img.Mem, f.Pages)
			} else {
				rec.DrainCorruptPages += memsim.CorruptDelta(&img.Delta, f.Pages)
			}
		}
	}
}

// ErrRestartFault and ErrNoVerifiableGeneration are the named failures of
// the restart path. ErrRestartFault marks a restart attempt killed by an
// injected restart fault after its restore point was chosen — the link
// being read is destroyed, and the caller retries to fall back past it.
// ErrNoVerifiableGeneration means the verification walk rejected every
// retained link (torn, corrupt or poisoned): nothing on the simulated
// filesystem can be trusted, so the job is unrecoverable.
var (
	ErrRestartFault           = errors.New("coordinator: injected restart fault")
	ErrNoVerifiableGeneration = errors.New("coordinator: no verifiable checkpoint generation")
)

// Restart rebuilds the job from the newest verifiable committed
// checkpoint. The retained generations are walked newest-first; within
// each, the usable chain is the longest prefix of links every one of
// whose per-rank images verifies — torn links (partial writes) are
// rejected outright, corrupt ones by rehashing every carried page or
// region with the FNV digests recorded at capture (the verify cost is
// charged to the ranks' checkpoint-overhead clocks). A generation whose
// full link fails contributes nothing and the walk falls back a whole
// generation; when every retained link is rejected, Restart returns
// ErrNoVerifiableGeneration.
//
// From the chosen link, every rank discards its lower half, bootstraps a
// fresh one, replays the saved upper-half region map and resumes its
// clock, program counter and drained-message buffer; the network counters
// are restored and its queues cleared (the image was taken on a quiescent
// network). An incremental link is materialised first — the base full
// image overlaid with every verified delta in commit order, reading each
// link off the parallel filesystem (the read time restart is charged for,
// which is why FullImageEvery bounds the chain). The event queue is
// cleared — ready, delivery, collective and failure events all referenced
// the abandoned timeline — and reseeded from the restored state: one
// ready event per unfinished rank plus the unfired triggers and unfired
// virtual-time faults.
func (c *Coordinator) Restart() error {
	if len(c.gens) == 0 {
		return fmt.Errorf("coordinator: no committed checkpoint to restart from")
	}
	c.restartAttempts++
	newest := c.newestSeq()
	gi, prefix := -1, 0
	for g := len(c.gens) - 1; g >= 0 && prefix == 0; g-- {
		prefix = c.verifyPrefix(c.gens[g])
		gi = g
	}
	if prefix == 0 {
		return fmt.Errorf("coordinator: %d generations retained, newest committed #%d: %w",
			len(c.gens), newest, ErrNoVerifiableGeneration)
	}
	g := c.gens[gi]
	link := &g.links[prefix-1]
	for i, f := range c.faults {
		if !c.faultFired[i] && f.Anchor == faultplan.AtRestart && f.N == c.restartAttempts {
			// The restart process itself crashes while reading the chosen
			// link, destroying it: poison the seq so the retry's walk falls
			// back past it. Verification work already done stays charged
			// and is folded into the record of the attempt that succeeds.
			c.faultFired[i] = true
			if c.poisoned == nil {
				c.poisoned = make(map[int]bool)
			}
			c.poisoned[link.seq] = true
			return fmt.Errorf("coordinator: restart from checkpoint #%d crashed mid-restore: %w", link.seq, ErrRestartFault)
		}
	}
	preClock := c.maxClock
	for i, r := range c.ranks {
		img, readBytes := g.materializeLink(prefix-1, i)
		readTime := ioTime(readBytes, c.cfg.CkptReadBandwidth)
		r.Restore(img)
		r.ChargeCkptOverhead(r.Kernel().RestartReinitCost() + readTime)
	}
	c.net.Restore(link.counters)
	// In-flight collectives and any drain in progress belonged to the
	// abandoned timeline: clear the rendezvous state and rebuild the
	// communicator registry from the restored images (sub-communicators
	// minted after the checkpoint die with the timeline; replayed splits
	// will re-mint them with identical ids).
	for len(c.collList) > 0 {
		c.removeForming(c.collList[0])
	}
	for i := range c.inCollComm {
		c.inCollComm[i] = -1
	}
	c.abandonDrain()
	c.rebuildComms()
	// Checkpoint requests fired in the abandoned timeline die with it: a
	// request references scheduler state (clocks, collective progress)
	// that no longer exists after the rollback. But a request whose
	// checkpoint never committed — the job crashed mid-drain or
	// mid-write — is still owed: its trigger is un-consumed so the
	// checkpoint (and its drain plan) is rebuilt in the new timeline.
	// Triggers whose checkpoints committed stay consumed.
	for _, req := range c.pending {
		c.fired[req.trigger] = false
		c.unfired++
	}
	c.pending = nil
	c.armed = c.armed[:0]
	c.queues.Clear()
	// The crash also took the storage pipeline's transient state with
	// it: in-flight PFS transfers die with their timeline (the queue
	// clear above already dropped the drain-done events) and the node
	// burst buffers come back empty — which is exactly why undrained
	// links stay non-durable forever.
	c.pfs.Reset()
	for i := range c.bbUsed {
		c.bbUsed[i] = 0
	}
	c.drainReqs = c.drainReqs[:0]
	for i, t := range c.triggers {
		if !c.fired[i] {
			c.queues.Push(c.globalLane(), t.At, event{kind: evTrigger, trigger: i})
		}
	}
	for i, f := range c.faults {
		if !c.faultFired[i] && f.Anchor == faultplan.AtVirtualTime {
			c.queues.Push(c.globalLane(), f.Time, event{kind: evFail, trigger: i})
		}
	}
	c.doneCount = 0
	for _, r := range c.ranks {
		if r.State() == rank.Done {
			c.doneCount++
		} else {
			c.scheduleReady(r)
		}
	}
	c.maxClock = c.MaxClock()
	// Everything newer than the restore point failed verification or was
	// poisoned — drop it so the next committed delta chains onto what was
	// actually restored.
	g.links = g.links[:prefix]
	c.gens = c.gens[:gi+1]
	rec := RestartRecord{
		FromSeq:         link.seq,
		ResumeClock:     c.maxClock,
		FallbackDepth:   newest - link.seq,
		TornLinks:       c.pendTorn,
		CorruptLinks:    c.pendCorrupt,
		VerifiedPages:   c.pendVerifyPages,
		VerifyTime:      c.pendVerifyTime,
		BufferOnlyLinks: c.pendBufferOnly,
	}
	if preClock > c.maxClock {
		rec.LostWork = preClock.Sub(c.maxClock)
	}
	c.pendTorn, c.pendCorrupt, c.pendVerifyPages, c.pendVerifyTime, c.pendBufferOnly = 0, 0, 0, 0, 0
	c.restarts = append(c.restarts, rec)
	return nil
}

// newestSeq returns the newest committed checkpoint's sequence number.
// The caller guarantees at least one committed generation.
func (c *Coordinator) newestSeq() int {
	g := c.gens[len(c.gens)-1]
	return g.links[len(g.links)-1].seq
}

// verifyPrefix returns the length of the longest usable prefix of the
// generation's links, stopping at the first poisoned, torn or corrupt
// link. Every page of every image checked is rehashed at the kernel's
// per-page hash rate, charged to the owning rank's checkpoint-overhead
// clock and accumulated for the restart record; iteration is links
// ascending, ranks ascending, so the charges are deterministic.
func (c *Coordinator) verifyPrefix(g *generation) int {
	n := 0
	for li := range g.links {
		link := &g.links[li]
		if c.poisoned[link.seq] {
			break
		}
		if !link.durable {
			// The link's images were staged in node burst buffers but
			// never finished draining to the PFS before the crash: the
			// only copies died with the node. Rejected on metadata alone
			// — there is nothing on the filesystem to rehash.
			c.pendBufferOnly++
			break
		}
		ok := true
		for i, r := range c.ranks {
			pages, err := rank.VerifyImage(link.images[i])
			cost := vtime.Duration(pages) * r.Kernel().PageHashCost()
			r.ChargeCkptOverhead(cost)
			c.pendVerifyPages += pages
			c.pendVerifyTime += cost
			if err != nil {
				if !link.images[i].Complete {
					c.pendTorn++
				} else {
					c.pendCorrupt++
				}
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		n++
	}
	return n
}

// rebuildComms reconstructs the communicator registry from the restored
// ranks' slot tables. Iterating ranks in id order keeps every member
// list sorted, matching how comm-split completions build them, and the
// next split after restart mints max-id+1 — exactly what the replayed
// timeline's split would have minted.
func (c *Coordinator) rebuildComms() {
	maxID := 0
	for _, r := range c.ranks {
		for slot := 1; slot < r.CommCount(); slot++ {
			if id := r.CommID(slot); id > maxID {
				maxID = id
			}
		}
	}
	comms := make([]comm, maxID+1)
	comms[0] = c.comms[0] // world membership never changes
	for _, r := range c.ranks {
		for slot := 1; slot < r.CommCount(); slot++ {
			id := r.CommID(slot)
			comms[id].members = append(comms[id].members, r.ID())
		}
	}
	c.comms = comms
}

// ioTime converts an image payload and a filesystem bandwidth into a
// virtual duration, treating non-positive bandwidth as free I/O.
func ioTime(bytes uint64, bandwidth float64) vtime.Duration {
	if bandwidth <= 0 {
		return 0
	}
	return vtime.DurationOf(float64(bytes) / bandwidth)
}

// bwString renders a storage bandwidth for the report header:
// "16.0GB/s", or "free" for the non-positive free-I/O sentinel.
func bwString(bw float64) string {
	if bw <= 0 {
		return "free"
	}
	return fmt.Sprintf("%.1fGB/s", bw/1e9)
}

// FinalFingerprint digests every rank's final clock and upper-half
// memory, so two runs can be compared for bit-identical results.
func (c *Coordinator) FinalFingerprint() uint64 {
	h := fnv.New64a()
	for _, r := range c.ranks {
		snap := r.Mem().SnapshotUpperHalf()
		fmt.Fprintf(h, "%d:%d:%x;", r.ID(), r.Clock().Now(), snap.Fingerprint())
	}
	return h.Sum64()
}

// Report renders a deterministic plain-text summary of the run as one
// string. It is a convenience wrapper over WriteReport for callers that
// want to retain or compare the whole report.
func (c *Coordinator) Report() string {
	var b strings.Builder
	c.WriteReport(&b)
	return b.String()
}

// WriteReport streams the deterministic plain-text summary of the run —
// per-rank virtual times and accounting, per-checkpoint protocol
// records, and the final fingerprint — into w, without ever building the
// whole report in memory. Two identical runs produce byte-identical
// report streams, whatever the writer: the fleet path feeds a hash (or
// discards the bytes entirely) and still observes the exact bytes a
// standalone run prints. Write errors are not reported, matching the
// best-effort semantics the string path always had.
func (c *Coordinator) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "manasim: %d ranks, kernel=%v, virtid=%v, seed=%d\n",
		c.cfg.Ranks, c.cfg.Personality, c.cfg.Virtid, c.cfg.Seed)
	fmt.Fprintf(w, "job: makespan=%v, events=%d, rank-visits=%d, messages sent=%d\n",
		c.MaxClock(), c.events, c.rankVisits, c.net.TotalSent())
	var splits uint64
	for _, r := range c.ranks {
		splits += r.Stats().CommSplits
	}
	fmt.Fprintf(w, "comms: %d (1 world + %d split), comm-splits executed=%d\n",
		len(c.comms), len(c.comms)-1, splits)
	if sc := &c.cfg.Storage; !sc.LegacyStraggler {
		fmt.Fprintf(w, "storage: pfs-aggregate=%s", bwString(sc.PFSBandwidth))
		if sc.Staging {
			fmt.Fprintf(w, ", burst-buffer=%s cap=%d", bwString(sc.BBBandwidth), sc.BBCapacity)
		} else {
			fmt.Fprintf(w, ", staging=off")
		}
		if sc.Compression {
			fmt.Fprintf(w, ", compression=on cost=%gns/B\n", sc.CompressCost)
		} else {
			fmt.Fprintf(w, ", compression=off\n")
		}
	}

	fmt.Fprintf(w, "\nranks:\n")
	fmt.Fprintf(w, "  %4s %16s %10s %6s %6s %6s %14s %14s\n",
		"rank", "vtime", "mpi-calls", "sent", "recvd", "coll", "mana-overhead", "ckpt-overhead")
	for _, r := range c.ranks {
		st := r.Stats()
		fmt.Fprintf(w, "  %4d %16v %10d %6d %6d %6d %14v %14v\n",
			r.ID(), r.Clock().Now(), st.MPICalls, st.MsgsSent, st.MsgsRecvd,
			st.Collectives, st.ManaOverhead, r.CkptOverhead())
	}

	fmt.Fprintf(w, "\ncheckpoints: %d committed (incremental=%v, full-every=%d)\n",
		len(c.records), c.cfg.Incremental, c.cfg.FullImageEvery)
	for _, rec := range c.records {
		fmt.Fprintf(w, "  #%d requested@%v mid-collective=%v deferred=%v safe@%v\n",
			rec.Seq, rec.RequestedAt, rec.MidCollective, rec.DeferredFor, rec.SafeAt)
		fmt.Fprintf(w, "     drained %d msgs (%d bytes), wrote %d bytes (%dF+%dD), slowest write %v, fp=%016x\n",
			rec.DrainedMsgs, rec.DrainedBytes, rec.ImageBytes, rec.FullImages, rec.DeltaImages,
			rec.MaxWriteTime, rec.Fingerprint)
		fmt.Fprintf(w, "     full %d bytes, dirty %d bytes, dedup %.3f\n",
			rec.FullBytes, rec.DirtyBytes, rec.DedupRatio())
		fmt.Fprintf(w, "     coll-drain: planned=%d overlap-width=%d drain-events=%d\n",
			rec.DrainPlanned, rec.OverlapWidth, rec.DrainEvents)
		if !c.cfg.Storage.LegacyStraggler {
			fmt.Fprintf(w, "     io: stored %d bytes", rec.StoredBytes)
			if c.cfg.Storage.Compression {
				fmt.Fprintf(w, " (saved %d, cpu %v)", rec.CompressSavedBytes, rec.CompressTime)
			}
			if c.cfg.Storage.Staging {
				fmt.Fprintf(w, ", staged %d spilled %d", rec.StagedBytes, rec.SpilledBytes)
			}
			fmt.Fprintf(w, ", pfs-wait %v, durable@%v\n", rec.PFSWait, rec.DurableAt)
		}
		if rec.TornImages > 0 || rec.CorruptPages > 0 || rec.DrainTornImages > 0 || rec.DrainCorruptPages > 0 {
			fmt.Fprintf(w, "     faults: torn-images=%d corrupt-pages=%d", rec.TornImages, rec.CorruptPages)
			if rec.DrainTornImages > 0 || rec.DrainCorruptPages > 0 {
				fmt.Fprintf(w, " drain-torn=%d drain-corrupt=%d", rec.DrainTornImages, rec.DrainCorruptPages)
			}
			fmt.Fprintln(w)
		}
	}

	if len(c.restarts) > 0 {
		fmt.Fprintf(w, "\nrestarts: %d\n", len(c.restarts))
		for _, rs := range c.restarts {
			fmt.Fprintf(w, "  restored from checkpoint #%d, resumed at vtime %v\n", rs.FromSeq, rs.ResumeClock)
			fmt.Fprintf(w, "     fallback-depth=%d lost-work=%v verified %d pages in %v (torn-links=%d corrupt-links=%d)",
				rs.FallbackDepth, rs.LostWork, rs.VerifiedPages, rs.VerifyTime, rs.TornLinks, rs.CorruptLinks)
			if rs.BufferOnlyLinks > 0 {
				fmt.Fprintf(w, " buffer-only-links=%d", rs.BufferOnlyLinks)
			}
			fmt.Fprintln(w)
		}
	}

	lk := c.LookupStats()
	fmt.Fprintf(w, "\nvirtid: impl=%v, per-lookup=%v, per-write=%v\n",
		c.cfg.Virtid, c.cfg.Virtid.LookupCost(), c.cfg.Virtid.WriteCost())
	fmt.Fprintf(w, "  lookups: total=%d (comm=%d datatype=%d request=%d), modelled time=%v\n",
		lk.HandleLookups, lk.CommLookups, lk.DatatypeLookups, lk.RequestLookups, lk.LookupTime)
	fmt.Fprintf(w, "  writes: total=%d, modelled time=%v\n", lk.HandleWrites, lk.WriteTime)

	mem := c.memorySummary()
	fmt.Fprintf(w, "\nmemory (rank 0): upper=%d bytes, lower=%d bytes\n", mem[0], mem[1])
	fmt.Fprintf(w, "final fingerprint: %016x\n", c.FinalFingerprint())
}

// LookupStats aggregates the per-rank handle-virtualisation accounting
// in rank order — plain counter sums, so table iteration order never
// influences the (byte-identical) report.
func (c *Coordinator) LookupStats() rank.Stats {
	var total rank.Stats
	for _, r := range c.ranks {
		st := r.Stats()
		total.HandleLookups += st.HandleLookups
		total.CommLookups += st.CommLookups
		total.DatatypeLookups += st.DatatypeLookups
		total.RequestLookups += st.RequestLookups
		total.HandleWrites += st.HandleWrites
		total.LookupTime += st.LookupTime
		total.WriteTime += st.WriteTime
	}
	return total
}

func (c *Coordinator) memorySummary() [2]uint64 {
	r := c.ranks[0]
	return [2]uint64{
		r.Mem().BytesOf(memsim.UpperHalf),
		r.Mem().BytesOf(memsim.LowerHalf),
	}
}

// SortedPairs returns the network's counter pairs in deterministic order,
// for report and test consumption.
func SortedPairs(counters netsim.Counters) []netsim.Pair {
	pairs := make([]netsim.Pair, 0, len(counters))
	for p := range counters {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Src != pairs[j].Src {
			return pairs[i].Src < pairs[j].Src
		}
		return pairs[i].Dst < pairs[j].Dst
	})
	return pairs
}
