// Package coordinator implements MANA's checkpoint coordination protocol
// (paper §3.1–3.2) over the simulated rank runtime.
//
// The coordinator drives a deterministic scheduler: it executes each
// rank's scripted operations in rank order, completes collectives when
// every participant has arrived, and services checkpoint requests with
// the paper's two-phase protocol:
//
//	Phase 1 (quiesce): broadcast checkpoint intent to every rank. Ranks
//	stop starting new operations at their next call boundary. If any
//	rank is inside a collective, all ranks keep executing until that
//	collective completes — a checkpoint never lands mid-collective.
//	Then the in-flight point-to-point messages are drained: the
//	per-pair send/receive counters are compared and every outstanding
//	message is received into the destination rank's buffer, until the
//	counters agree that the network is quiescent.
//
//	Phase 2 (commit): each rank captures its upper-half memory snapshot
//	(memsim.SnapshotUpperHalf) together with its clock, program counter,
//	drained-message buffer and stats, and charges the image write time
//	(with the §3.4 parallel-filesystem straggler model) to its
//	checkpoint-overhead account.
//
// Restart discards every rank's lower half, bootstraps a fresh one,
// replays the saved upper-half region maps, restores clocks and network
// counters, and resumes the scheduler. Because checkpoint activity is
// accounted outside the application clocks, a restarted run reaches
// bit-identical virtual-time results to an uncheckpointed one — the
// property the determinism tests pin down.
package coordinator

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"mana/internal/kernelsim"
	"mana/internal/memsim"
	"mana/internal/netsim"
	"mana/internal/rank"
	"mana/internal/vtime"
)

// Trigger schedules one checkpoint request.
type Trigger struct {
	// At requests the checkpoint once the job's maximum rank clock
	// reaches this virtual time.
	At vtime.Time
	// MidCollective, when set, instead requests the checkpoint at the
	// first moment (not before At) at which a collective is partially
	// arrived — some but not all ranks inside it. This exercises the
	// protocol's deferral path deterministically.
	MidCollective bool
	// InFlight, when set, instead requests the checkpoint at the first
	// moment (not before At) at which point-to-point messages are in
	// flight — sent but not yet received — so the drain phase has real
	// work to do.
	InFlight bool
}

// Config parameterises one simulated job.
type Config struct {
	// Ranks is the number of simulated MPI ranks.
	Ranks int
	// Personality selects the kernel cost model for every node.
	Personality kernelsim.Personality
	// Net is the interconnect cost model.
	Net netsim.Params
	// Workload parameterises the generated SPMD scripts.
	Workload rank.WorkloadConfig
	// CkptWriteBandwidth and CkptReadBandwidth are the per-rank
	// parallel-filesystem bandwidths for image write and restart read.
	// Zero or negative values model free (instantaneous) I/O, matching
	// netsim.Params.SerializeCost.
	CkptWriteBandwidth float64
	CkptReadBandwidth  float64
	// StragglerP and StragglerMax drive the §3.4 write-straggler model.
	StragglerP   float64
	StragglerMax float64
	// Seed drives the straggler RNG (and nothing else — the scheduler
	// itself is deterministic).
	Seed uint64
	// Triggers are the scheduled checkpoint requests.
	Triggers []Trigger
	// FailAtCheckpoint, when non-zero, simulates a job failure
	// FailDelaySteps scheduler iterations after checkpoint number
	// FailAtCheckpoint commits; Run then returns Failed and the caller
	// restarts from the last image.
	FailAtCheckpoint int
	FailDelaySteps   int
	// ScriptFor, when non-nil, overrides the generated workload with a
	// handcrafted per-rank script. Tests use it to stage precise
	// protocol situations (messages in flight, partial collectives).
	ScriptFor func(id int) []rank.Op
}

// DefaultConfig returns a runnable 8-rank configuration.
func DefaultConfig() Config {
	return Config{
		Ranks:              8,
		Personality:        kernelsim.Unpatched,
		Net:                netsim.DefaultParams(),
		Workload:           rank.DefaultWorkload(8, 30, 42),
		CkptWriteBandwidth: 2e9,
		CkptReadBandwidth:  4e9,
		StragglerP:         0.1,
		StragglerMax:       4.0,
		Seed:               42,
	}
}

// Outcome reports how a Run ended.
type Outcome int

const (
	// Completed means every rank exhausted its script.
	Completed Outcome = iota
	// Failed means the configured failure injection fired; the caller
	// should Restart and Run again.
	Failed
)

// String returns a human-readable outcome name.
func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	default:
		return "unknown"
	}
}

// CheckpointRecord describes one committed checkpoint.
type CheckpointRecord struct {
	Seq           int
	RequestedAt   vtime.Time
	MidCollective bool
	// SafeAt is the virtual time (max rank clock) at which the safe
	// point was reached and draining began.
	SafeAt vtime.Time
	// DeferredFor is how much virtual application progress elapsed
	// between the request and the safe point (non-zero when the request
	// landed mid-collective).
	DeferredFor  vtime.Duration
	DrainedMsgs  int
	DrainedBytes uint64
	ImageBytes   uint64
	// MaxWriteTime is the slowest rank's image write (straggler-scaled).
	MaxWriteTime vtime.Duration
	// Fingerprint digests every rank's image for determinism checks.
	Fingerprint uint64
}

// RestartRecord describes one restart.
type RestartRecord struct {
	FromSeq int
	// ResumeClock is the restored maximum rank clock.
	ResumeClock vtime.Time
}

// request is one in-flight checkpoint request.
type request struct {
	at            vtime.Time
	midCollective bool
}

// committed holds the last committed checkpoint, from which Restart
// rebuilds the job.
type committed struct {
	seq      int
	images   []rank.Image
	counters netsim.Counters
}

// Coordinator owns the ranks, the network and the checkpoint protocol.
type Coordinator struct {
	cfg   Config
	ranks []*rank.Rank
	net   *netsim.Network
	rng   *vtime.RNG

	triggers []Trigger
	fired    []bool
	pending  []request

	// Collective rendezvous state: stamps of ranks that have arrived at
	// the currently forming collective.
	collStamps []vtime.Stamp
	collKind   netsim.CollectiveKind
	collBytes  uint64

	records  []CheckpointRecord
	restarts []RestartRecord
	last     *committed

	failArmed     bool
	failCountdown int

	steps uint64
}

// New builds a job from the config: one rank per ID with a generated
// SPMD script, a fresh network, and the configured triggers armed.
func New(cfg Config) *Coordinator {
	if cfg.Ranks <= 0 {
		panic("coordinator: config needs at least one rank")
	}
	cfg.Workload.Ranks = cfg.Ranks
	c := &Coordinator{
		cfg:      cfg,
		net:      netsim.New(cfg.Net),
		rng:      vtime.NewRNG(cfg.Seed),
		triggers: append([]Trigger(nil), cfg.Triggers...),
		fired:    make([]bool, len(cfg.Triggers)),
	}
	for id := 0; id < cfg.Ranks; id++ {
		var script []rank.Op
		if cfg.ScriptFor != nil {
			script = cfg.ScriptFor(id)
		} else {
			script = rank.GenerateScript(id, cfg.Workload)
		}
		c.ranks = append(c.ranks, rank.New(id, cfg.Personality, script))
	}
	return c
}

// Ranks returns the simulated ranks.
func (c *Coordinator) Ranks() []*rank.Rank { return c.ranks }

// Net returns the simulated interconnect.
func (c *Coordinator) Net() *netsim.Network { return c.net }

// Records returns the committed checkpoint records.
func (c *Coordinator) Records() []CheckpointRecord { return c.records }

// Restarts returns the restart records.
func (c *Coordinator) Restarts() []RestartRecord { return c.restarts }

// Steps returns the number of scheduler iterations executed.
func (c *Coordinator) Steps() uint64 { return c.steps }

// MaxClock returns the maximum rank clock — the job's virtual makespan so
// far.
func (c *Coordinator) MaxClock() vtime.Time {
	var max vtime.Time
	for _, r := range c.ranks {
		if t := r.Clock().Now(); t > max {
			max = t
		}
	}
	return max
}

func (c *Coordinator) nonDone() int {
	n := 0
	for _, r := range c.ranks {
		if r.State() != rank.Done {
			n++
		}
	}
	return n
}

func (c *Coordinator) inCollective() int {
	n := 0
	for _, r := range c.ranks {
		if r.State() == rank.InCollective {
			n++
		}
	}
	return n
}

// collectiveInProgress reports whether any rank is inside a collective.
func (c *Coordinator) collectiveInProgress() bool { return c.inCollective() > 0 }

// atSafePoint reports whether a checkpoint may proceed: no rank is inside
// a collective (paper §3.2 — a checkpoint either completes the collective
// first or sits out until it has).
func (c *Coordinator) atSafePoint() bool { return !c.collectiveInProgress() }

func (c *Coordinator) allDone() bool { return c.nonDone() == 0 }

// fireTriggers converts due triggers into pending checkpoint requests.
func (c *Coordinator) fireTriggers() {
	now := c.MaxClock()
	for i, t := range c.triggers {
		if c.fired[i] {
			continue
		}
		due := false
		switch {
		case t.MidCollective:
			in := c.inCollective()
			due = now >= t.At && in > 0 && in < c.nonDone()
		case t.InFlight:
			due = now >= t.At && c.net.InFlight() > 0
		default:
			due = now >= t.At
		}
		if due {
			c.fired[i] = true
			c.pending = append(c.pending, request{at: now, midCollective: c.collectiveInProgress()})
		}
	}
}

// tryCompleteCollective finishes the forming collective once every
// non-done rank has arrived: completion time is the latest arrival stamp
// plus the modelled collective cost, and every participant advances to
// it.
func (c *Coordinator) tryCompleteCollective() bool {
	n := len(c.collStamps)
	if n == 0 || n < c.nonDone() {
		return false
	}
	latest := vtime.MaxStamp(c.collStamps)
	completion := latest.When.Add(c.cfg.Net.CollectiveCost(c.collKind, n, c.collBytes))
	for _, r := range c.ranks {
		if r.State() == rank.InCollective {
			r.FinishCollective(completion)
		}
	}
	c.collStamps = nil
	return true
}

// step executes one deterministic scheduler iteration: complete a ready
// collective, then let each runnable rank execute its next operation.
// Triggers are re-checked after every rank action — the coordinator is
// asynchronous in the real system — so a request can land between one
// rank's send and the matching receive (leaving messages in flight for
// the drain phase) or right after a rank arrives at a collective (the
// deferral path). As soon as a request is pending, ranks hold at their
// call boundary — unless a collective is in progress, in which case all
// ranks keep executing until it completes (§3.2).
func (c *Coordinator) step() bool {
	c.steps++
	progress := c.tryCompleteCollective()
	for _, r := range c.ranks {
		if len(c.pending) > 0 && !c.collectiveInProgress() {
			break
		}
		if r.State() != rank.Running {
			continue
		}
		op := r.Op()
		switch op.Kind {
		case rank.OpCompute:
			r.DoCompute(op)
			progress = true
		case rank.OpSend:
			r.DoSend(c.net, op)
			progress = true
		case rank.OpRecv:
			if r.TryRecv(c.net, op) {
				progress = true
			}
		case rank.OpBarrier, rank.OpAllreduce:
			kind := netsim.Barrier
			if op.Kind == rank.OpAllreduce {
				kind = netsim.Allreduce
			}
			if len(c.collStamps) > 0 && kind != c.collKind {
				panic(fmt.Sprintf("coordinator: rank %d arrived at %v while %v is forming (non-SPMD script)",
					r.ID(), kind, c.collKind))
			}
			c.collKind = kind
			c.collBytes = op.Bytes
			c.collStamps = append(c.collStamps, r.ArriveAtCollective())
			progress = true
		case rank.OpSbrk:
			r.DoSbrk(op)
			progress = true
		}
		c.fireTriggers()
	}
	if c.tryCompleteCollective() {
		progress = true
	}
	return progress
}

// drain runs phase 1's message drain: every in-flight message is received
// into its destination rank's buffer, with probe and copy costs charged
// to the checkpoint-overhead accounts, until the per-pair counters agree
// the network is quiescent.
func (c *Coordinator) drain(rec *CheckpointRecord) error {
	for rounds := 0; c.net.InFlight() > 0; rounds++ {
		if rounds > c.cfg.Ranks+1 {
			return fmt.Errorf("coordinator: drain did not converge, %d messages still in flight", c.net.InFlight())
		}
		for _, r := range c.ranks {
			// One counter-comparison probe per peer that has ever sent
			// to this rank.
			r.ChargeCkptOverhead(vtime.Duration(c.net.PeersTo(r.ID())) * r.Kernel().DrainProbeCost())
			for _, m := range c.net.DrainTo(r.ID()) {
				r.BufferDrained(m)
				r.ChargeCkptOverhead(r.Kernel().DrainBufferCost(m.Bytes))
				rec.DrainedMsgs++
				rec.DrainedBytes += m.Bytes
			}
		}
	}
	return nil
}

// checkpoint services the oldest pending request with the two-phase
// protocol. The caller guarantees the job is at a safe point.
func (c *Coordinator) checkpoint() error {
	req := c.pending[0]
	c.pending = c.pending[1:]
	rec := CheckpointRecord{
		Seq:           len(c.records) + 1,
		RequestedAt:   req.at,
		MidCollective: req.midCollective,
	}

	// Phase 1: deliver the intent signal, then drain the network.
	for _, r := range c.ranks {
		r.ChargeCkptOverhead(r.Kernel().CheckpointSignalCost())
	}
	if err := c.drain(&rec); err != nil {
		return err
	}
	if got := c.net.InFlight(); got != 0 {
		return fmt.Errorf("coordinator: %d messages in flight after drain", got)
	}
	rec.SafeAt = c.MaxClock()
	rec.DeferredFor = rec.SafeAt.Sub(rec.RequestedAt)

	// Phase 2: capture and "write" every rank's image.
	images := make([]rank.Image, len(c.ranks))
	h := fnv.New64a()
	for i, r := range c.ranks {
		img := r.CaptureImage()
		writeTime := ioTime(img.Bytes(), c.cfg.CkptWriteBandwidth)
		if c.cfg.StragglerP > 0 {
			writeTime = vtime.Duration(float64(writeTime) * c.rng.Straggler(c.cfg.StragglerP, c.cfg.StragglerMax))
		}
		r.ChargeCkptOverhead(writeTime)
		if writeTime > rec.MaxWriteTime {
			rec.MaxWriteTime = writeTime
		}
		rec.ImageBytes += img.Bytes()
		fmt.Fprintf(h, "%d:%d:%d:%x:%+v;", img.RankID, img.PC, img.Clock, img.Mem.Fingerprint(), img.Stats)
		for _, m := range img.Inbox {
			fmt.Fprintf(h, "in(%d,%d,%d,%d,%d);", m.Src, m.Dst, m.Tag, m.Bytes, m.Arrive)
		}
		images[i] = img
	}
	rec.Fingerprint = h.Sum64()
	c.last = &committed{seq: rec.Seq, images: images, counters: c.net.CountersSnapshot()}
	c.records = append(c.records, rec)

	if c.cfg.FailAtCheckpoint == rec.Seq {
		c.failArmed = true
		c.failCountdown = c.cfg.FailDelaySteps
	}
	return nil
}

// Run drives the scheduler until the job completes or the configured
// failure injection fires. It may be called again after Restart.
func (c *Coordinator) Run() (Outcome, error) {
	for {
		c.fireTriggers()
		for len(c.pending) > 0 && c.atSafePoint() {
			if err := c.checkpoint(); err != nil {
				return Failed, err
			}
		}
		if c.failArmed {
			if c.failCountdown <= 0 {
				c.failArmed = false
				return Failed, nil
			}
			c.failCountdown--
		}
		if c.allDone() {
			if got := c.net.InFlight(); got != 0 {
				return Failed, fmt.Errorf("coordinator: job done with %d unreceived messages", got)
			}
			return Completed, nil
		}
		if !c.step() {
			return Failed, fmt.Errorf("coordinator: no progress (deadlock) at step %d, %d in flight, %d in collective",
				c.steps, c.net.InFlight(), c.inCollective())
		}
	}
}

// Restart rebuilds the job from the last committed checkpoint: every
// rank discards its lower half, bootstraps a fresh one, replays the
// saved upper-half region map and resumes its clock, program counter and
// drained-message buffer; the network counters are restored and its
// queues cleared (the image was taken on a quiescent network).
func (c *Coordinator) Restart() error {
	if c.last == nil {
		return fmt.Errorf("coordinator: no committed checkpoint to restart from")
	}
	for i, r := range c.ranks {
		img := c.last.images[i]
		readTime := ioTime(img.Bytes(), c.cfg.CkptReadBandwidth)
		r.Restore(img)
		r.ChargeCkptOverhead(r.Kernel().RestartReinitCost() + readTime)
	}
	c.net.Restore(c.last.counters)
	c.collStamps = nil
	// Checkpoint requests fired in the abandoned timeline die with it: a
	// request references scheduler state (clocks, collective progress)
	// that no longer exists after the rollback. The triggers themselves
	// stay consumed — they described the dead epoch.
	c.pending = nil
	c.failArmed = false
	c.restarts = append(c.restarts, RestartRecord{FromSeq: c.last.seq, ResumeClock: c.MaxClock()})
	return nil
}

// ioTime converts an image payload and a filesystem bandwidth into a
// virtual duration, treating non-positive bandwidth as free I/O.
func ioTime(bytes uint64, bandwidth float64) vtime.Duration {
	if bandwidth <= 0 {
		return 0
	}
	return vtime.DurationOf(float64(bytes) / bandwidth)
}

// FinalFingerprint digests every rank's final clock and upper-half
// memory, so two runs can be compared for bit-identical results.
func (c *Coordinator) FinalFingerprint() uint64 {
	h := fnv.New64a()
	for _, r := range c.ranks {
		snap := r.Mem().SnapshotUpperHalf()
		fmt.Fprintf(h, "%d:%d:%x;", r.ID(), r.Clock().Now(), snap.Fingerprint())
	}
	return h.Sum64()
}

// Report renders a deterministic plain-text summary of the run: per-rank
// virtual times and accounting, per-checkpoint protocol records, and the
// final fingerprint. Two identical runs produce byte-identical reports.
func (c *Coordinator) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "manasim: %d ranks, kernel=%v, seed=%d\n",
		c.cfg.Ranks, c.cfg.Personality, c.cfg.Seed)
	fmt.Fprintf(&b, "job: makespan=%v, scheduler steps=%d, messages sent=%d\n",
		c.MaxClock(), c.steps, c.net.TotalSent())

	fmt.Fprintf(&b, "\nranks:\n")
	fmt.Fprintf(&b, "  %4s %16s %10s %6s %6s %6s %14s %14s\n",
		"rank", "vtime", "mpi-calls", "sent", "recvd", "coll", "mana-overhead", "ckpt-overhead")
	for _, r := range c.ranks {
		st := r.Stats()
		fmt.Fprintf(&b, "  %4d %16v %10d %6d %6d %6d %14v %14v\n",
			r.ID(), r.Clock().Now(), st.MPICalls, st.MsgsSent, st.MsgsRecvd,
			st.Collectives, st.ManaOverhead, r.CkptOverhead())
	}

	fmt.Fprintf(&b, "\ncheckpoints: %d committed\n", len(c.records))
	for _, rec := range c.records {
		fmt.Fprintf(&b, "  #%d requested@%v mid-collective=%v deferred=%v safe@%v\n",
			rec.Seq, rec.RequestedAt, rec.MidCollective, rec.DeferredFor, rec.SafeAt)
		fmt.Fprintf(&b, "     drained %d msgs (%d bytes), image %d bytes, slowest write %v, fp=%016x\n",
			rec.DrainedMsgs, rec.DrainedBytes, rec.ImageBytes, rec.MaxWriteTime, rec.Fingerprint)
	}

	if len(c.restarts) > 0 {
		fmt.Fprintf(&b, "\nrestarts: %d\n", len(c.restarts))
		for _, rs := range c.restarts {
			fmt.Fprintf(&b, "  restored from checkpoint #%d, resumed at vtime %v\n", rs.FromSeq, rs.ResumeClock)
		}
	}

	mem := c.memorySummary()
	fmt.Fprintf(&b, "\nmemory (rank 0): upper=%d bytes, lower=%d bytes\n", mem[0], mem[1])
	fmt.Fprintf(&b, "final fingerprint: %016x\n", c.FinalFingerprint())
	return b.String()
}

func (c *Coordinator) memorySummary() [2]uint64 {
	r := c.ranks[0]
	return [2]uint64{
		r.Mem().BytesOf(memsim.UpperHalf),
		r.Mem().BytesOf(memsim.LowerHalf),
	}
}

// SortedPairs returns the network's counter pairs in deterministic order,
// for report and test consumption.
func SortedPairs(counters netsim.Counters) []netsim.Pair {
	pairs := make([]netsim.Pair, 0, len(counters))
	for p := range counters {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Src != pairs[j].Src {
			return pairs[i].Src < pairs[j].Src
		}
		return pairs[i].Dst < pairs[j].Dst
	})
	return pairs
}
