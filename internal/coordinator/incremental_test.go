package coordinator

import (
	"strings"
	"testing"

	"mana/internal/vtime"
)

// incrementalConfig is the steady-state incremental scenario: the default
// halo-exchange workload with two checkpoints far enough apart that the
// second one sees only the state touched in between.
func incrementalConfig(ranks, steps int) Config {
	cfg := smallConfig(ranks, steps)
	cfg.Incremental = true
	cfg.Triggers = []Trigger{
		{At: vtime.Time(1 * vtime.Millisecond)},
		{At: vtime.Time(3 * vtime.Millisecond)},
	}
	return cfg
}

// TestIncrementalCheckpointBytes10x is the acceptance criterion for the
// incremental pipeline: on the default workload, a steady-state
// incremental checkpoint writes at least 10x fewer image bytes than the
// full images it replaces — the workload touches its state region and
// grows the heap, not the text/libc mappings that dominate a full image.
func TestIncrementalCheckpointBytes10x(t *testing.T) {
	c := New(incrementalConfig(8, 30))
	outcome, err := c.Run()
	if err != nil || outcome != Completed {
		t.Fatalf("Run = %v, %v", outcome, err)
	}
	recs := c.Records()
	if len(recs) != 2 {
		t.Fatalf("checkpoints = %d, want 2", len(recs))
	}
	first, second := recs[0], recs[1]
	if first.FullImages != 8 || first.DeltaImages != 0 {
		t.Fatalf("first checkpoint images = %dF+%dD, want all full", first.FullImages, first.DeltaImages)
	}
	if second.DeltaImages != 8 || second.FullImages != 0 {
		t.Fatalf("second checkpoint images = %dF+%dD, want all delta", second.FullImages, second.DeltaImages)
	}
	if second.ImageBytes == 0 {
		t.Fatal("second checkpoint wrote nothing; the workload must have touched memory")
	}
	if second.ImageBytes*10 > second.FullBytes {
		t.Errorf("incremental checkpoint wrote %d bytes vs %d full-equivalent: want >=10x fewer",
			second.ImageBytes, second.FullBytes)
	}
	if second.ImageBytes*10 > first.ImageBytes {
		t.Errorf("incremental checkpoint wrote %d bytes vs first full checkpoint's %d: want >=10x fewer",
			second.ImageBytes, first.ImageBytes)
	}
	// Dirty accounting must be internally consistent: written = dirty -
	// dedup plus the layout-only payloads (drained inbox bytes are zero
	// here; there is no in-flight trigger).
	if second.DirtyBytes < second.ImageBytes {
		t.Errorf("dirty bytes %d below written bytes %d", second.DirtyBytes, second.ImageBytes)
	}
	if second.DirtyBytes-second.DedupBytes != second.ImageBytes {
		t.Errorf("dirty(%d) - dedup(%d) != written(%d)", second.DirtyBytes, second.DedupBytes, second.ImageBytes)
	}
	// The incremental write must also be reflected in the straggler-
	// modelled commit time: writing ~100x fewer bytes cannot take as long
	// as the full-image generation did.
	if second.MaxWriteTime >= first.MaxWriteTime {
		t.Errorf("incremental slowest write %v not below full-image %v", second.MaxWriteTime, first.MaxWriteTime)
	}
}

// TestIncrementalRestartBitIdentical is the tentpole determinism pin:
// fail after a chain of checkpoints (full + deltas), restart by
// materialising the chain, run to completion — and end bit-identical to
// both a full-image checkpointed run and an uncheckpointed one. A
// post-restart trigger additionally pins the chain-restart rule: the
// first checkpoint after restart is full again.
func TestIncrementalRestartBitIdentical(t *testing.T) {
	base := smallConfig(8, 12)

	mk := func(incremental bool) Config {
		cfg := base
		cfg.Incremental = incremental
		cfg.FullImageEvery = 0 // unbounded chain: every post-base image is a delta
		cfg.Triggers = []Trigger{
			{At: vtime.Time(500 * vtime.Microsecond)},
			{At: vtime.Time(1 * vtime.Millisecond)},
			{At: vtime.Time(1 * vtime.Millisecond), MidCollective: true},
			{At: vtime.Time(2500 * vtime.Microsecond)}, // fires only in the restarted timeline
		}
		cfg.FailAtCheckpoint = 3
		cfg.FailDelay = 100 * vtime.Microsecond
		return cfg
	}

	run := func(cfg Config) *Coordinator {
		c := New(cfg)
		outcome, err := c.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for outcome == Failed {
			if err := c.Restart(); err != nil {
				t.Fatalf("Restart: %v", err)
			}
			if outcome, err = c.Run(); err != nil {
				t.Fatalf("re-Run: %v", err)
			}
		}
		return c
	}

	incr := run(mk(true))
	full := run(mk(false))
	plain := New(base)
	if outcome, err := plain.Run(); err != nil || outcome != Completed {
		t.Fatalf("uncheckpointed run = %v, %v", outcome, err)
	}

	// The pre-failure chain must really have been incremental: one full
	// generation, then deltas.
	recs := incr.Records()
	if len(recs) < 4 {
		t.Fatalf("checkpoints = %d, want 4 (three pre-failure + one post-restart)", len(recs))
	}
	if recs[0].DeltaImages != 0 || recs[1].FullImages != 0 || recs[2].FullImages != 0 {
		t.Errorf("chain modes wrong: #1=%dF+%dD #2=%dF+%dD #3=%dF+%dD, want full then deltas",
			recs[0].FullImages, recs[0].DeltaImages, recs[1].FullImages, recs[1].DeltaImages,
			recs[2].FullImages, recs[2].DeltaImages)
	}
	if recs[3].DeltaImages != 0 {
		t.Errorf("post-restart checkpoint has %d delta images; restart must begin a fresh chain", recs[3].DeltaImages)
	}

	for i := range plain.Ranks() {
		pr, ir, fr := plain.Ranks()[i], incr.Ranks()[i], full.Ranks()[i]
		if pt, it := pr.Clock().Now(), ir.Clock().Now(); pt != it {
			t.Errorf("rank %d final vtime: uncheckpointed %v vs incremental-restarted %v", i, pt, it)
		}
		if ps, is := pr.Stats(), ir.Stats(); ps != is {
			t.Errorf("rank %d stats diverge:\n  uncheckpointed %+v\n  incremental    %+v", i, ps, is)
		}
		if fs, is := fr.Stats(), ir.Stats(); fs != is {
			t.Errorf("rank %d stats diverge between full and incremental restarts", i)
		}
	}
	pf, if_, ff := plain.FinalFingerprint(), incr.FinalFingerprint(), full.FinalFingerprint()
	if pf != if_ || pf != ff {
		t.Errorf("final fingerprints diverge: plain %016x, incremental %016x, full %016x", pf, if_, ff)
	}
}

// TestFullImageCadence pins Config.FullImageEvery: with N=2 the chain
// never exceeds two links — full, delta, full, delta — so a restart never
// reads more than two generations.
func TestFullImageCadence(t *testing.T) {
	cfg := smallConfig(4, 30)
	cfg.Incremental = true
	cfg.FullImageEvery = 2
	cfg.Triggers = []Trigger{
		{At: vtime.Time(500 * vtime.Microsecond)},
		{At: vtime.Time(1500 * vtime.Microsecond)},
		{At: vtime.Time(2500 * vtime.Microsecond)},
		{At: vtime.Time(3500 * vtime.Microsecond)},
	}
	c := New(cfg)
	outcome, err := c.Run()
	if err != nil || outcome != Completed {
		t.Fatalf("Run = %v, %v", outcome, err)
	}
	recs := c.Records()
	if len(recs) != 4 {
		t.Fatalf("checkpoints = %d, want 4", len(recs))
	}
	wantFull := []bool{true, false, true, false}
	for i, rec := range recs {
		gotFull := rec.FullImages == cfg.Ranks && rec.DeltaImages == 0
		gotDelta := rec.DeltaImages == cfg.Ranks && rec.FullImages == 0
		if wantFull[i] && !gotFull {
			t.Errorf("checkpoint #%d = %dF+%dD, cadence wants full", rec.Seq, rec.FullImages, rec.DeltaImages)
		}
		if !wantFull[i] && !gotDelta {
			t.Errorf("checkpoint #%d = %dF+%dD, cadence wants delta", rec.Seq, rec.FullImages, rec.DeltaImages)
		}
	}
}

// TestIncrementalReportByteIdentical extends the determinism guarantee to
// the incremental pipeline's report fields (dirty bytes, dedup ratios,
// delta fingerprints): two identical runs must render identical bytes.
func TestIncrementalReportByteIdentical(t *testing.T) {
	run := func() string {
		cfg := incrementalConfig(8, 12)
		cfg.FailAtCheckpoint = 2
		cfg.FailDelay = 100 * vtime.Microsecond
		c := New(cfg)
		outcome, err := c.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for outcome == Failed {
			if err := c.Restart(); err != nil {
				t.Fatalf("Restart: %v", err)
			}
			if outcome, err = c.Run(); err != nil {
				t.Fatalf("re-Run: %v", err)
			}
		}
		return c.Report()
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Errorf("incremental reports differ between identical runs:\n--- run 1\n%s\n--- run 2\n%s", r1, r2)
	}
	if !strings.Contains(r1, "incremental=true") {
		t.Errorf("report does not surface the incremental mode:\n%s", r1)
	}
}
