package coordinator

import (
	"bytes"
	"strings"
	"testing"

	"mana/internal/faultplan"
	"mana/internal/storage"
	"mana/internal/vtime"
)

// stagedConfig is the staged-pipeline counterpart of faultConfig: free
// (instantaneous) burst-buffer staging over a fast PFS, with spaced-out
// triggers so each generation's drain completes before the next commits.
// Probed timings for the incremental default workload under it:
// #1 safe@2.17ms durable@3.29ms, #2 safe@4.14ms durable@+512ns,
// #3 safe@5.686ms durable@+1.5µs — a crash 1µs after commit #3 lands
// with #3 staged but not yet durable while #1 and #2 are durable.
func stagedConfig() Config {
	cfg := DefaultConfig()
	cfg.Incremental = true
	cfg.FullImageEvery = 0
	cfg.Triggers = []Trigger{
		{At: vtime.Time(2 * vtime.Millisecond)},
		{At: vtime.Time(4 * vtime.Millisecond)},
		{At: vtime.Time(5500 * vtime.Microsecond)},
	}
	cfg.Storage = storage.Config{
		PFSBandwidth: 64e9,
		Staging:      true,
		BBBandwidth:  0,
		BBCapacity:   512 << 20,
	}
	return cfg
}

// TestPFSContentionEmergesInWriteTimes pins the tentpole's core model
// change: with direct writes to a shared PFS, rank write times spread out
// because requests queue on the contended aggregate bandwidth — the
// slowest write is several service times, not one — and the queueing is
// accounted as PFSWait. No RNG draws are involved.
func TestPFSContentionEmergesInWriteTimes(t *testing.T) {
	cfg := faultConfig()
	c := New(cfg)
	if _, err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	recs := c.Records()
	if len(recs) == 0 {
		t.Fatal("no checkpoints committed")
	}
	rec := recs[0]
	if rec.PFSWait == 0 {
		t.Error("PFSWait = 0: eight concurrent writers on a shared PFS must queue")
	}
	// One rank's uncontended service time: its share of the payload over
	// the full aggregate bandwidth. The slowest writer queues behind the
	// other seven, so its write time must exceed several service times.
	service := vtime.DurationOf(float64(rec.ImageBytes) / float64(cfg.Ranks) / cfg.Storage.PFSBandwidth)
	if rec.MaxWriteTime < 4*service {
		t.Errorf("MaxWriteTime = %v, want >= 4x the uncontended per-rank service time %v (stragglers must emerge from contention)",
			rec.MaxWriteTime, service)
	}
	if rec.DurableAt != rec.SafeAt.Add(rec.MaxWriteTime) {
		t.Errorf("direct writes are durable when written: DurableAt = %v, want %v",
			rec.DurableAt, rec.SafeAt.Add(rec.MaxWriteTime))
	}
}

// TestStagedCompressedBeatsDirect is the issue's acceptance bar: on the
// default incremental workload, the staged+compressed pipeline must
// reduce every checkpoint's MaxWriteTime measurably versus direct
// contended PFS writes, with the compression accounted (bytes saved,
// CPU charged).
func TestStagedCompressedBeatsDirect(t *testing.T) {
	run := func(profile string) []CheckpointRecord {
		spec, ok := storage.Profile(profile)
		if !ok {
			t.Fatalf("profile %q missing", profile)
		}
		st, err := storage.Compile(spec)
		if err != nil {
			t.Fatalf("compile %q: %v", profile, err)
		}
		cfg := faultConfig()
		cfg.Incremental = true
		cfg.FullImageEvery = 4
		cfg.Storage = st
		c := New(cfg)
		if _, err := c.Run(); err != nil {
			t.Fatalf("Run(%s): %v", profile, err)
		}
		return c.Records()
	}
	direct := run("direct")
	staged := run("staged")
	compressed := run("staged-compressed")
	if len(direct) != 3 || len(staged) != 3 || len(compressed) != 3 {
		t.Fatalf("checkpoint counts differ: direct=%d staged=%d compressed=%d",
			len(direct), len(staged), len(compressed))
	}
	for i := range direct {
		d, s, sc := direct[i], staged[i], compressed[i]
		if s.MaxWriteTime >= d.MaxWriteTime {
			t.Errorf("#%d: staged MaxWriteTime %v not below direct %v", i+1, s.MaxWriteTime, d.MaxWriteTime)
		}
		if sc.MaxWriteTime >= d.MaxWriteTime {
			t.Errorf("#%d: staged-compressed MaxWriteTime %v not below direct %v", i+1, sc.MaxWriteTime, d.MaxWriteTime)
		}
		if sc.MaxWriteTime > s.MaxWriteTime {
			t.Errorf("#%d: compression increased commit time: %v > %v (fewer staged bytes must not write slower)",
				i+1, sc.MaxWriteTime, s.MaxWriteTime)
		}
	}
	// The first checkpoint is a full image — exempt from compression.
	if compressed[0].StoredBytes != compressed[0].ImageBytes || compressed[0].CompressSavedBytes != 0 {
		t.Errorf("full image was compressed: stored=%d written=%d saved=%d",
			compressed[0].StoredBytes, compressed[0].ImageBytes, compressed[0].CompressSavedBytes)
	}
	// Delta checkpoints compress where they carry dirty page payload. A
	// delta of pure in-flight message bytes (DirtyBytes == 0) gives the
	// per-page compressor nothing to shrink and must charge nothing.
	var sawCompressed bool
	for _, rec := range compressed[1:] {
		if rec.CompressSavedBytes != rec.ImageBytes-rec.StoredBytes {
			t.Errorf("#%d: CompressSavedBytes = %d, want %d", rec.Seq, rec.CompressSavedBytes, rec.ImageBytes-rec.StoredBytes)
		}
		if staged[rec.Seq-1].StoredBytes != staged[rec.Seq-1].ImageBytes {
			t.Errorf("#%d: uncompressed staged run altered stored bytes", rec.Seq)
		}
		if rec.DirtyBytes == 0 {
			if rec.CompressSavedBytes != 0 || rec.CompressTime != 0 {
				t.Errorf("#%d: compressed a delta with no dirty pages: saved=%d cpu=%v",
					rec.Seq, rec.CompressSavedBytes, rec.CompressTime)
			}
			continue
		}
		sawCompressed = true
		if rec.StoredBytes >= rec.ImageBytes {
			t.Errorf("#%d: delta not compressed: stored %d >= written %d", rec.Seq, rec.StoredBytes, rec.ImageBytes)
		}
		if rec.CompressTime == 0 {
			t.Errorf("#%d: compression charged no CPU time", rec.Seq)
		}
	}
	if !sawCompressed {
		t.Error("no delta checkpoint carried dirty pages — the workload no longer exercises compression")
	}
}

// TestBurstBufferSpillWritesThrough pins the capacity bound: payload
// beyond the buffer's free space writes through synchronously to the
// contended PFS, and the split is accounted exactly.
func TestBurstBufferSpillWritesThrough(t *testing.T) {
	cfg := faultConfig()
	cfg.Storage = storage.Config{
		PFSBandwidth: 16e9,
		Staging:      true,
		BBBandwidth:  8e9,
		BBCapacity:   4 << 20, // ~9 MB per-rank images: over half spills
	}
	c := New(cfg)
	if _, err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, rec := range c.Records() {
		if rec.SpilledBytes == 0 {
			t.Errorf("#%d: nothing spilled from a 4 MiB buffer holding ~9 MiB images", rec.Seq)
		}
		if rec.StagedBytes+rec.SpilledBytes != rec.StoredBytes {
			t.Errorf("#%d: staged %d + spilled %d != stored %d",
				rec.Seq, rec.StagedBytes, rec.SpilledBytes, rec.StoredBytes)
		}
	}
	// The first checkpoint sees an empty buffer, so it must stage up to
	// capacity before spilling. Later checkpoints may find the buffer
	// still full of undrained bytes and legitimately spill everything.
	if c.Records()[0].StagedBytes == 0 {
		t.Error("#1: an empty buffer staged nothing before spilling")
	}
}

// TestMidDrainCrashFallsBackToDurable is the issue's acceptance
// scenario: a crash lands 1µs after checkpoint #3 commits — staged into
// the burst buffer, drain still in flight — so the newest link is
// buffer-only. Restart must skip it on metadata alone (the buffer died
// with the node), land on the newest durable generation #2, and replay
// to the fault-free fingerprint — byte-identically in serial and
// parallel modes.
func TestMidDrainCrashFallsBackToDurable(t *testing.T) {
	faults := []faultplan.Fault{
		{Anchor: faultplan.AtCheckpointCommit, N: 3, Kind: faultplan.RankCrash, Delay: 1 * vtime.Microsecond},
	}
	run := func(islands, workers int) (*Coordinator, string) {
		cfg := stagedConfig()
		cfg.Faults = faults
		cfg.Islands = islands
		cfg.Workers = workers
		c := New(cfg)
		completeWithRecovery(t, c)
		var buf bytes.Buffer
		c.WriteReport(&buf)
		return c, buf.String()
	}
	c, serial := run(0, 1)

	recs := c.Records()
	if len(recs) != 3 {
		t.Fatalf("checkpoints = %d, want 3 (the owed #3 must re-commit after restart)", len(recs))
	}
	// The pre-crash #3 was staged but not durable when the crash fired.
	if crashAt := recs[2].SafeAt.Add(1 * vtime.Microsecond); !(recs[2].DurableAt > crashAt) {
		t.Fatalf("scenario drifted: #3 durable@%v, crash@%v — the crash must pre-empt the drain", recs[2].DurableAt, crashAt)
	}
	rst := c.Restarts()
	if len(rst) != 1 {
		t.Fatalf("restarts = %d, want 1", len(rst))
	}
	r := rst[0]
	if r.BufferOnlyLinks != 1 {
		t.Errorf("BufferOnlyLinks = %d, want 1 (the staged-not-durable #3)", r.BufferOnlyLinks)
	}
	if r.FromSeq != 2 || r.FallbackDepth != 1 {
		t.Errorf("restored from #%d depth %d, want the newest durable generation #2 at depth 1", r.FromSeq, r.FallbackDepth)
	}
	if got, want := c.FinalFingerprint(), faultFreeFingerprint(t, func() Config { cfg := stagedConfig(); cfg.Faults = faults; return cfg }()); got != want {
		t.Errorf("final fingerprint %016x differs from fault-free %016x", got, want)
	}

	cp, parallel := run(8, 4)
	if serial != parallel {
		t.Errorf("mid-drain recovery differs between serial and islands=8/workers=4:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
	}
	if c.FinalFingerprint() != cp.FinalFingerprint() {
		t.Errorf("fingerprints differ: serial %016x, parallel %016x", c.FinalFingerprint(), cp.FinalFingerprint())
	}
	if !strings.Contains(serial, "buffer-only-links=1") {
		t.Errorf("report does not account the buffer-only link:\n%s", serial)
	}
}

// TestDrainHopTornSurfacesAtRestart pins the drain-hop fault path: a
// torn buffer→PFS drain damages checkpoint #2's durable copy without
// touching the staged payload the commit digested, so nothing notices
// until restart verification walks the delta chain, rejects the torn
// link, and falls back to the full image at #1.
func TestDrainHopTornSurfacesAtRestart(t *testing.T) {
	cfg := stagedConfig()
	cfg.Faults = []faultplan.Fault{
		{Anchor: faultplan.AtImageWrite, Hop: faultplan.HopDrain, N: 2, Kind: faultplan.TornWrite},
		{Anchor: faultplan.AtCheckpointCommit, N: 3, Kind: faultplan.RankCrash, Delay: 100 * vtime.Microsecond},
	}
	c := New(cfg)
	completeWithRecovery(t, c)

	recs := c.Records()
	if len(recs) != 3 {
		t.Fatalf("checkpoints = %d, want 3", len(recs))
	}
	if recs[1].DrainTornImages != 1 {
		t.Errorf("#2 DrainTornImages = %d, want 1", recs[1].DrainTornImages)
	}
	if recs[1].TornImages != 0 {
		t.Errorf("#2 TornImages = %d, want 0 (the stage-hop write was clean)", recs[1].TornImages)
	}
	rst := c.Restarts()
	if len(rst) != 1 {
		t.Fatalf("restarts = %d, want 1", len(rst))
	}
	// #3 is a delta whose chain runs through the torn #2, so the walk
	// falls back to the full image at #1.
	if r := rst[0]; r.FromSeq != 1 || r.FallbackDepth != 2 || r.TornLinks != 1 {
		t.Errorf("restored from #%d depth %d torn-links %d, want #1 / 2 / 1", r.FromSeq, r.FallbackDepth, r.TornLinks)
	}
	want := faultFreeFingerprint(t, func() Config { cfg := stagedConfig(); return cfg }())
	if got := c.FinalFingerprint(); got != want {
		t.Errorf("final fingerprint %016x differs from fault-free %016x", got, want)
	}
}

// TestLegacyStragglerMatchesRetiredModel pins the escape hatch: a config
// with Storage.LegacyStraggler renders the same report as the retired
// flat-bandwidth model did — no storage header, no io lines, RNG-drawn
// stragglers.
func TestLegacyStragglerMatchesRetiredModel(t *testing.T) {
	cfg := faultConfig()
	cfg.FailAtCheckpoint = 2
	cfg.FailDelay = 250 * vtime.Microsecond
	cfg.Storage.LegacyStraggler = true
	c := New(cfg)
	completeWithRecovery(t, c)
	var buf bytes.Buffer
	c.WriteReport(&buf)
	report := buf.String()
	for _, banned := range []string{"storage:", "io: stored", "pfs-wait", "durable@"} {
		if strings.Contains(report, banned) {
			t.Errorf("legacy report leaks pipeline accounting (%q):\n%s", banned, report)
		}
	}
	for _, rec := range c.Records() {
		if rec.PFSWait != 0 || rec.StagedBytes != 0 || rec.CompressSavedBytes != 0 {
			t.Errorf("#%d: legacy run accrued pipeline metrics: %+v", rec.Seq, rec)
		}
	}
}
