package coordinator

import (
	"bytes"
	"strings"
	"testing"
)

// runToReport drives a config through the full scenario — run, any
// injected failure, restarts — and returns the complete output bytes.
func runToReport(t *testing.T, cfg Config) string {
	t.Helper()
	var out bytes.Buffer
	c := New(cfg)
	outcome, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for outcome == Failed {
		if err := c.Restart(); err != nil {
			t.Fatalf("Restart: %v", err)
		}
		outcome, err = c.Run()
		if err != nil {
			t.Fatalf("post-restart Run: %v", err)
		}
	}
	c.WriteReport(&out)
	c.Release()
	return out.String()
}

// TestScratchReuseByteIdentical is the warm-path determinism statement:
// a run built on a Scratch that a previous run fed — reused queue
// lanes, rank slices, rendezvous instances, memsim buffers — must print
// byte for byte what a cold run prints. Failure injection and restarts
// are included so the recycled storage crosses the full protocol.
func TestScratchReuseByteIdentical(t *testing.T) {
	mk := func(sc *Scratch, incremental bool) Config {
		cfg := DefaultConfig()
		cfg.FailAtCheckpoint = 2
		cfg.Incremental = incremental
		cfg.Scratch = sc
		return cfg
	}
	cold := runToReport(t, mk(nil, false))

	sc := NewScratch()
	for i := 0; i < 3; i++ {
		if got := runToReport(t, mk(sc, false)); got != cold {
			t.Fatalf("warm run %d diverges from cold run.\n--- warm\n%s\n--- cold\n%s", i, got, cold)
		}
	}

	// Alternating shapes through one scratch: an incremental run between
	// two plain ones must neither inherit nor leak state.
	coldIncr := runToReport(t, mk(nil, true))
	if got := runToReport(t, mk(sc, true)); got != coldIncr {
		t.Fatalf("incremental warm run diverges from cold.\n--- warm\n%s\n--- cold\n%s", got, coldIncr)
	}
	if got := runToReport(t, mk(sc, false)); got != cold {
		t.Fatalf("plain run after incremental on shared scratch diverges.\n--- got\n%s\n--- want\n%s", got, cold)
	}
}

// TestScratchReuseAcrossSizes checks the resize paths: a scratch grown
// by a large run must serve a smaller one (and vice versa) without
// stale state bleeding through.
func TestScratchReuseAcrossSizes(t *testing.T) {
	mk := func(sc *Scratch, ranks, islands int) Config {
		cfg := islandBenchConfig(ranks, islands, 1)
		cfg.Scratch = sc
		return cfg
	}
	big := runToReport(t, mk(nil, 64, 8))
	small := runToReport(t, mk(nil, 8, 2))

	sc := NewScratch()
	if got := runToReport(t, mk(sc, 64, 8)); got != big {
		t.Fatal("cold-scratch big run diverges from scratch-free run")
	}
	if got := runToReport(t, mk(sc, 8, 2)); got != small {
		t.Fatal("small run on big-grown scratch diverges")
	}
	if got := runToReport(t, mk(sc, 64, 8)); got != big {
		t.Fatal("big run on shrunk scratch diverges")
	}
}

// TestScratchMemPoolHits pins that warm runs actually draw from the
// recycled buffer pool — the perf contract, not just correctness.
func TestScratchMemPoolHits(t *testing.T) {
	cfg := DefaultConfig()
	sc := NewScratch()
	cfg.Scratch = sc
	runToReport(t, cfg)
	_, hitsCold := sc.MemStats()

	cfg2 := DefaultConfig()
	cfg2.Scratch = sc
	runToReport(t, cfg2)
	_, hitsWarm := sc.MemStats()
	if hitsWarm <= hitsCold {
		t.Fatalf("warm run recorded no buffer-pool hits (cold=%d, warm=%d)", hitsCold, hitsWarm)
	}
}

// TestWriteReportMatchesReport keeps the two render paths in lockstep.
func TestWriteReportMatchesReport(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	if _, err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf strings.Builder
	c.WriteReport(&buf)
	if buf.String() != c.Report() {
		t.Fatal("WriteReport and Report render different bytes")
	}
}
