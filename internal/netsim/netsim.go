// Package netsim models the point-to-point interconnect of the simulated
// MPI job in virtual time.
//
// The model is deliberately simple — a latency plus bandwidth-serialisation
// cost per message — because MANA is network-agnostic: the checkpointing
// algorithm only needs to know *when* a message becomes visible to its
// receiver and *how many* messages are in flight between each pair of
// ranks. Every message piggybacks the sender's virtual timestamp
// (vtime.Stamp) so the receiver can advance causally, and the network keeps
// the per-pair send/receive counters that the coordinator's draining
// algorithm (paper §3.1) compares to decide when the network is quiescent.
//
// Delivery is event-driven: each Send computes the message's arrival time
// and hands it to the registered DeliveryScheduler, which turns it into a
// virtual-time event on the coordinator's queue. Receivers are therefore
// woken exactly when a matching message becomes visible instead of being
// polled every scheduler iteration.
package netsim

import (
	"fmt"
	"sort"
	"sync"

	"mana/internal/vtime"
)

// Params configures the interconnect cost model.
type Params struct {
	// Latency is the one-way wire latency of a message of any size.
	Latency vtime.Duration
	// BandwidthBytesPerSec is the serialisation bandwidth; a message of
	// size s occupies the sender for s/Bandwidth seconds before the wire
	// latency applies.
	BandwidthBytesPerSec float64
	// GroupSize partitions ranks into contiguous topology groups of this
	// many ranks each (rank r belongs to group r/GroupSize): the fabric
	// analogue of an electrical group / leaf switch. Zero means a flat
	// fabric with no groups. Groups are also the island scheduler's
	// partition: ranks in the same group share an event-queue lane.
	GroupSize int
	// CrossGroupLatency is the EXTRA one-way latency a message pays when
	// src and dst are in different groups (spine hop). It is the island
	// scheduler's conservative lookahead: no cross-group message can
	// arrive sooner than Latency+CrossGroupLatency after it is sent, so
	// islands may run that far ahead without coordination.
	CrossGroupLatency vtime.Duration
}

// DefaultParams resembles a commodity HPC fabric: ~1.5 us latency,
// ~10 GB/s per-link bandwidth.
func DefaultParams() Params {
	return Params{
		Latency:              1500 * vtime.Nanosecond,
		BandwidthBytesPerSec: 10e9,
	}
}

// SerializeCost returns the time a message of the given size occupies the
// sender's link.
func (p Params) SerializeCost(bytes uint64) vtime.Duration {
	if p.BandwidthBytesPerSec <= 0 {
		return 0
	}
	return vtime.DurationOf(float64(bytes) / p.BandwidthBytesPerSec)
}

// GroupOf returns the topology group of a rank, or 0 on a flat fabric.
func (p Params) GroupOf(rank int) int {
	if p.GroupSize <= 0 {
		return 0
	}
	return rank / p.GroupSize
}

// WireLatency returns the one-way latency between two ranks: the base
// Latency, plus CrossGroupLatency when they sit in different groups.
func (p Params) WireLatency(src, dst int) vtime.Duration {
	l := p.Latency
	if p.GroupSize > 0 && p.GroupOf(src) != p.GroupOf(dst) {
		l += p.CrossGroupLatency
	}
	return l
}

// CrossLookahead returns the minimum one-way latency of any message that
// crosses a group boundary — the island scheduler's conservative
// lookahead window. An event executed at time t can only influence
// another island at t+CrossLookahead or later, so islands may run
// [t, t+CrossLookahead) concurrently. On a flat fabric every rank pair
// is potentially one hop apart, so the lookahead is the base Latency.
func (p Params) CrossLookahead() vtime.Duration {
	if p.GroupSize > 0 {
		return p.Latency + p.CrossGroupLatency
	}
	return p.Latency
}

// CollectiveKind identifies a modelled collective operation.
type CollectiveKind int

const (
	Barrier CollectiveKind = iota
	Allreduce
	// CommSplit is MPI_Comm_split: collective over the parent
	// communicator, exchanging each participant's colour so every member
	// learns its sub-communicator's composition.
	CommSplit
)

// String returns the MPI-style name of the collective.
func (k CollectiveKind) String() string {
	switch k {
	case Barrier:
		return "barrier"
	case Allreduce:
		return "allreduce"
	case CommSplit:
		return "comm-split"
	default:
		return "unknown"
	}
}

// commSplitColorBytes is the per-rank payload a comm-split exchanges: the
// (colour, key) pair every participant contributes to the allgather that
// establishes sub-communicator membership.
const commSplitColorBytes = 16

// CollectiveCost returns the modelled completion cost of a collective over
// nRanks ranks carrying bytes of payload per rank, measured from the
// moment the last participant arrives. All collectives use a
// logarithmic-depth tree; allreduce additionally pays reduce+broadcast
// serialisation, and comm-split the (small) colour allgather.
func (p Params) CollectiveCost(kind CollectiveKind, nRanks int, bytes uint64) vtime.Duration {
	depth := log2ceil(nRanks)
	cost := vtime.Duration(depth) * p.Latency
	switch kind {
	case Allreduce:
		cost += 2 * vtime.Duration(depth) * p.SerializeCost(bytes)
	case CommSplit:
		cost += vtime.Duration(depth) * p.SerializeCost(commSplitColorBytes*uint64(nRanks))
	}
	return cost
}

func log2ceil(n int) int {
	d := 0
	for v := 1; v < n; v <<= 1 {
		d++
	}
	return d
}

// Message is one in-flight point-to-point message.
type Message struct {
	// Seq is a globally unique, monotonically increasing send sequence
	// number; it makes drain ordering deterministic.
	Seq uint64
	// Src and Dst are rank IDs.
	Src, Dst int
	// Tag is the application-level message tag (carried for reporting).
	Tag int
	// Bytes is the payload size.
	Bytes uint64
	// Sent is the sender's piggybacked virtual timestamp at injection.
	Sent vtime.Stamp
	// Arrive is the virtual time at which the message is visible to the
	// receiver: send time + serialisation + latency.
	Arrive vtime.Time
}

// Pair identifies a directed rank pair.
type Pair struct {
	Src, Dst int
}

// PairCount holds the send/receive counters for one directed pair. The
// draining algorithm is exactly "wait until Sent == Received for every
// pair" (§3.1).
type PairCount struct {
	Sent     uint64
	Received uint64
}

// Counters is a snapshot of all per-pair counters, keyed by pair. It is
// part of the checkpoint image so that restart resumes with consistent
// bookkeeping.
type Counters map[Pair]PairCount

// Clone returns a deep copy of the counters.
func (c Counters) Clone() Counters {
	out := make(Counters, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// InFlight returns the total number of sent-but-not-received messages the
// counters describe.
func (c Counters) InFlight() uint64 {
	var n uint64
	for _, v := range c {
		n += v.Sent - v.Received
	}
	return n
}

// DeliveryScheduler is notified of every injected message so its arrival
// can be scheduled as a virtual-time event. The event-driven coordinator
// registers itself here: instead of polling the network for receivable
// messages, it is handed each message's arrival time at send time and
// pushes a delivery event onto its queue.
type DeliveryScheduler interface {
	// ScheduleDelivery is called once per Send, after the message's
	// arrival time has been computed and the network lock has been
	// released, so implementations are free to inspect the Network.
	ScheduleDelivery(m *Message)
}

// Network is the simulated interconnect: per-pair FIFO queues plus the
// send/receive counters the drain protocol uses. It is safe for concurrent
// use, though the deterministic scheduler drives it from one goroutine.
type Network struct {
	params Params

	mu       sync.Mutex
	nextSeq  uint64
	queues   map[Pair][]*Message
	counters Counters
	// inflight counts sent-but-not-received messages, maintained
	// incrementally so the scheduler's per-event trigger checks are O(1)
	// instead of a scan over every pair.
	inflight uint64

	scheduler DeliveryScheduler
}

// New returns an empty network with the given parameters.
func New(params Params) *Network {
	return &Network{
		params:   params,
		queues:   make(map[Pair][]*Message),
		counters: make(Counters),
	}
}

// Params returns the cost-model parameters.
func (n *Network) Params() Params { return n.params }

// SetDeliveryScheduler registers the sink that receives one
// ScheduleDelivery callback per injected message. Passing nil disables
// scheduling (the polling-style tests drive Recv directly).
func (n *Network) SetDeliveryScheduler(s DeliveryScheduler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.scheduler = s
}

// Send injects a message and returns it together with the duration the
// sender's link is busy (charged to the sender's clock by the rank
// runtime). The arrival time is computed from the piggybacked stamp.
func (n *Network) Send(src, dst, tag int, bytes uint64, sent vtime.Stamp) (*Message, vtime.Duration) {
	n.mu.Lock()
	busy := n.params.SerializeCost(bytes)
	n.nextSeq++
	m := &Message{
		Seq:    n.nextSeq,
		Src:    src,
		Dst:    dst,
		Tag:    tag,
		Bytes:  bytes,
		Sent:   sent,
		Arrive: sent.When.Add(busy + n.params.WireLatency(src, dst)),
	}
	p := Pair{Src: src, Dst: dst}
	n.queues[p] = append(n.queues[p], m)
	pc := n.counters[p]
	pc.Sent++
	n.counters[p] = pc
	n.inflight++
	scheduler := n.scheduler
	n.mu.Unlock()
	// The delivery event is scheduled outside the lock: the scheduler
	// callback pushes onto the coordinator's event queue and must be free
	// to inspect the network.
	if scheduler != nil {
		scheduler.ScheduleDelivery(m)
	}
	return m, busy
}

// Recv pops the oldest in-flight message from src to dst that has
// arrived by the given virtual time, preserving MPI's per-pair
// non-overtaking order. It returns nil if no message from src has both
// been sent and arrived — a message becomes visible to its receiver at
// m.Arrive, never earlier. That arrival gate is what makes the island
// scheduler's lookahead sound: a send can only influence another island
// once its wire latency has elapsed, so islands may run a full
// CrossLookahead apart without observing each other's in-progress work.
// (Per-pair arrival order equals send order: every message on a pair
// traverses the same wire, so the FIFO head is always the earliest
// arrival.)
func (n *Network) Recv(dst, src int, by vtime.Time) *Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	p := Pair{Src: src, Dst: dst}
	q := n.queues[p]
	if len(q) == 0 || q[0].Arrive > by {
		return nil
	}
	m := q[0]
	n.queues[p] = q[1:]
	pc := n.counters[p]
	pc.Received++
	n.counters[p] = pc
	n.inflight--
	return m
}

// DrainTo pops every in-flight message destined for dst, in deterministic
// order (by source rank, then send sequence), marking each as received.
// The coordinator calls this during the drain phase so the messages can be
// buffered into the receiving rank's checkpoint image.
func (n *Network) DrainTo(dst int) []*Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	var pairs []Pair
	for p, q := range n.queues {
		if p.Dst == dst && len(q) > 0 {
			pairs = append(pairs, p)
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Src < pairs[j].Src })
	var out []*Message
	for _, p := range pairs {
		q := n.queues[p]
		out = append(out, q...)
		pc := n.counters[p]
		pc.Received += uint64(len(q))
		n.counters[p] = pc
		n.inflight -= uint64(len(q))
		delete(n.queues, p)
	}
	return out
}

// InFlight returns the total number of sent-but-not-received messages.
// It is O(1): the count is maintained incrementally so the scheduler can
// consult it after every event.
func (n *Network) InFlight() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inflight
}

// InFlightTo returns the number of in-flight messages destined for dst.
func (n *Network) InFlightTo(dst int) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var total uint64
	for p, q := range n.queues {
		if p.Dst == dst {
			total += uint64(len(q))
		}
	}
	return total
}

// PeersTo returns the number of source ranks that have ever sent to dst.
// The drain phase charges dst one counter-comparison probe per such peer
// (§3.1 compares send/receive counters pairwise).
func (n *Network) PeersTo(dst int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	peers := 0
	for p := range n.counters {
		if p.Dst == dst {
			peers++
		}
	}
	return peers
}

// CountersSnapshot returns a deep copy of the per-pair counters.
func (n *Network) CountersSnapshot() Counters {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counters.Clone()
}

// Restore resets the network to a checkpointed state: all queues are
// discarded (a correct checkpoint drains them to zero first) and the
// counters are replaced by the snapshot.
func (n *Network) Restore(c Counters) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.queues = make(map[Pair][]*Message)
	n.counters = c.Clone()
	// The queues are the ground truth for deliverable messages, and they
	// have just been discarded (a correct checkpoint drains to zero).
	n.inflight = 0
}

// TotalSent returns the total number of messages ever sent.
func (n *Network) TotalSent() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var total uint64
	for _, pc := range n.counters {
		total += pc.Sent
	}
	return total
}

// String summarises the network state for debugging.
func (n *Network) String() string {
	return fmt.Sprintf("netsim.Network{inflight=%d, sent=%d}", n.InFlight(), n.TotalSent())
}
