package netsim

import (
	"testing"

	"mana/internal/vtime"
)

func testParams() Params {
	return Params{Latency: 1000 * vtime.Nanosecond, BandwidthBytesPerSec: 1e9}
}

func TestSendArrivalTime(t *testing.T) {
	n := New(testParams())
	stamp := vtime.Stamp{Rank: 0, When: vtime.Time(5000)}
	m, busy := n.Send(0, 1, 7, 1000, stamp)
	// 1000 bytes at 1 GB/s = 1 us serialisation.
	if busy != 1000*vtime.Nanosecond {
		t.Fatalf("busy = %v, want 1us", busy)
	}
	want := stamp.When.Add(busy + 1000*vtime.Nanosecond)
	if m.Arrive != want {
		t.Errorf("Arrive = %v, want %v", m.Arrive, want)
	}
	if m.Sent != stamp {
		t.Errorf("piggybacked stamp = %+v, want %+v", m.Sent, stamp)
	}
	if m.Tag != 7 || m.Src != 0 || m.Dst != 1 {
		t.Errorf("message metadata wrong: %+v", m)
	}
}

func TestRecvFIFOPerPair(t *testing.T) {
	n := New(testParams())
	s := vtime.Stamp{Rank: 0, When: 0}
	m1, _ := n.Send(0, 1, 0, 10, s)
	m2, _ := n.Send(0, 1, 1, 10, s)
	by := vtime.Time(1 * vtime.Millisecond)
	if got := n.Recv(1, 0, by); got.Seq != m1.Seq {
		t.Errorf("first recv got seq %d, want %d (non-overtaking order)", got.Seq, m1.Seq)
	}
	if got := n.Recv(1, 0, by); got.Seq != m2.Seq {
		t.Errorf("second recv got seq %d, want %d", got.Seq, m2.Seq)
	}
	if got := n.Recv(1, 0, by); got != nil {
		t.Errorf("empty queue recv = %+v, want nil", got)
	}
}

func TestCountersTrackInFlight(t *testing.T) {
	n := New(testParams())
	s := vtime.Stamp{Rank: 0, When: 0}
	n.Send(0, 1, 0, 10, s)
	n.Send(0, 1, 0, 10, s)
	n.Send(2, 1, 0, 10, s)
	if got := n.InFlight(); got != 3 {
		t.Fatalf("InFlight = %d, want 3", got)
	}
	if got := n.InFlightTo(1); got != 3 {
		t.Fatalf("InFlightTo(1) = %d, want 3", got)
	}
	n.Recv(1, 0, vtime.Time(1*vtime.Millisecond))
	if got := n.InFlight(); got != 2 {
		t.Fatalf("InFlight after recv = %d, want 2", got)
	}
	c := n.CountersSnapshot()
	if got := c.InFlight(); got != 2 {
		t.Fatalf("Counters.InFlight = %d, want 2", got)
	}
	pc := c[Pair{Src: 0, Dst: 1}]
	if pc.Sent != 2 || pc.Received != 1 {
		t.Errorf("pair (0,1) = %+v, want sent=2 received=1", pc)
	}
}

func TestDrainToEmptiesAndCounts(t *testing.T) {
	n := New(testParams())
	s := vtime.Stamp{Rank: 0, When: 0}
	n.Send(3, 1, 0, 10, s)
	n.Send(0, 1, 0, 10, s)
	n.Send(0, 1, 1, 10, s)
	n.Send(0, 2, 0, 10, s)
	msgs := n.DrainTo(1)
	if len(msgs) != 3 {
		t.Fatalf("DrainTo(1) returned %d messages, want 3", len(msgs))
	}
	// Deterministic order: by source rank, then send sequence.
	if msgs[0].Src != 0 || msgs[1].Src != 0 || msgs[2].Src != 3 {
		t.Errorf("drain order by src = %d,%d,%d, want 0,0,3", msgs[0].Src, msgs[1].Src, msgs[2].Src)
	}
	if msgs[0].Seq > msgs[1].Seq {
		t.Errorf("drain order within pair not FIFO: %d then %d", msgs[0].Seq, msgs[1].Seq)
	}
	if got := n.InFlightTo(1); got != 0 {
		t.Errorf("InFlightTo(1) after drain = %d, want 0", got)
	}
	if got := n.InFlight(); got != 1 {
		t.Errorf("InFlight after drain = %d, want 1 (the 0->2 message)", got)
	}
	if got := n.CountersSnapshot().InFlight(); got != 1 {
		t.Errorf("counters disagree with queues after drain: %d in flight", got)
	}
}

func TestRestoreResetsQueuesAndCounters(t *testing.T) {
	n := New(testParams())
	s := vtime.Stamp{Rank: 0, When: 0}
	n.Send(0, 1, 0, 10, s)
	n.Recv(1, 0, vtime.Time(1*vtime.Millisecond))
	saved := n.CountersSnapshot()
	n.Send(0, 1, 0, 10, s)
	n.Send(1, 0, 0, 10, s)
	n.Restore(saved)
	if got := n.InFlight(); got != 0 {
		t.Errorf("InFlight after restore = %d, want 0", got)
	}
	if got := n.TotalSent(); got != 1 {
		t.Errorf("TotalSent after restore = %d, want 1", got)
	}
	// The snapshot must be isolated from later mutation of the network.
	n.Send(0, 1, 0, 10, s)
	if got := saved[Pair{Src: 0, Dst: 1}].Sent; got != 1 {
		t.Errorf("saved counters mutated by later sends: sent=%d, want 1", got)
	}
}

func TestPeersTo(t *testing.T) {
	n := New(testParams())
	s := vtime.Stamp{Rank: 0, When: 0}
	if got := n.PeersTo(1); got != 0 {
		t.Fatalf("PeersTo on empty network = %d, want 0", got)
	}
	n.Send(0, 1, 0, 10, s)
	n.Send(0, 1, 0, 10, s)
	n.Send(2, 1, 0, 10, s)
	n.Send(0, 2, 0, 10, s)
	if got := n.PeersTo(1); got != 2 {
		t.Errorf("PeersTo(1) = %d, want 2 (ranks 0 and 2 have history)", got)
	}
	// History persists after the queues empty: counters, not queues,
	// drive the drain probes.
	n.DrainTo(1)
	if got := n.PeersTo(1); got != 2 {
		t.Errorf("PeersTo(1) after drain = %d, want 2", got)
	}
}

func TestCollectiveCost(t *testing.T) {
	p := testParams()
	if got := p.CollectiveCost(Barrier, 1, 0); got != 0 {
		t.Errorf("1-rank barrier cost = %v, want 0", got)
	}
	b8 := p.CollectiveCost(Barrier, 8, 0)
	if got := 3 * p.Latency; b8 != got {
		t.Errorf("8-rank barrier = %v, want %v (log2 depth 3)", b8, got)
	}
	a8 := p.CollectiveCost(Allreduce, 8, 1000)
	if a8 <= b8 {
		t.Errorf("allreduce (%v) should cost more than barrier (%v)", a8, b8)
	}
	// Non-power-of-two rank counts round the tree depth up.
	if got, want := p.CollectiveCost(Barrier, 9, 0), 4*p.Latency; got != want {
		t.Errorf("9-rank barrier = %v, want %v", got, want)
	}
	// A comm-split pays the barrier tree plus the colour allgather; the
	// payload argument is ignored (the exchange is the fixed colour/key
	// pair per rank).
	s8 := p.CollectiveCost(CommSplit, 8, 0)
	if s8 <= b8 {
		t.Errorf("comm-split (%v) should cost more than barrier (%v)", s8, b8)
	}
	if got := p.CollectiveCost(CommSplit, 8, 1<<20); got != s8 {
		t.Errorf("comm-split cost varies with payload: %v vs %v", got, s8)
	}
}

func TestSerializeCostZeroBandwidth(t *testing.T) {
	p := Params{Latency: 0, BandwidthBytesPerSec: 0}
	if got := p.SerializeCost(1 << 20); got != 0 {
		t.Errorf("zero-bandwidth serialize cost = %v, want 0", got)
	}
}

func TestTopologyGroups(t *testing.T) {
	p := Params{
		Latency:           1000 * vtime.Nanosecond,
		GroupSize:         4,
		CrossGroupLatency: 5000 * vtime.Nanosecond,
	}
	if got := p.GroupOf(0); got != 0 {
		t.Errorf("GroupOf(0) = %d, want 0", got)
	}
	if got := p.GroupOf(3); got != 0 {
		t.Errorf("GroupOf(3) = %d, want 0", got)
	}
	if got := p.GroupOf(4); got != 1 {
		t.Errorf("GroupOf(4) = %d, want 1", got)
	}
	// Intra-group pays base latency; cross-group pays the spine hop too.
	if got := p.WireLatency(0, 3); got != p.Latency {
		t.Errorf("intra-group WireLatency = %v, want %v", got, p.Latency)
	}
	if got, want := p.WireLatency(0, 4), p.Latency+p.CrossGroupLatency; got != want {
		t.Errorf("cross-group WireLatency = %v, want %v", got, want)
	}
	if got, want := p.CrossLookahead(), p.Latency+p.CrossGroupLatency; got != want {
		t.Errorf("CrossLookahead = %v, want %v", got, want)
	}

	// Flat fabric: no groups, lookahead collapses to the base latency.
	flat := Params{Latency: 1000 * vtime.Nanosecond}
	if got := flat.GroupOf(17); got != 0 {
		t.Errorf("flat GroupOf = %d, want 0", got)
	}
	if got := flat.WireLatency(0, 17); got != flat.Latency {
		t.Errorf("flat WireLatency = %v, want %v", got, flat.Latency)
	}
	if got := flat.CrossLookahead(); got != flat.Latency {
		t.Errorf("flat CrossLookahead = %v, want %v", got, flat.Latency)
	}
}

func TestRecvArrivalGate(t *testing.T) {
	n := New(testParams())
	s := vtime.Stamp{Rank: 0, When: 0}
	m, _ := n.Send(0, 1, 0, 1000, s)
	if got := n.Recv(1, 0, m.Arrive.Add(-vtime.Nanosecond)); got != nil {
		t.Fatalf("Recv before arrival = %+v, want nil", got)
	}
	if got := n.InFlight(); got != 1 {
		t.Fatalf("gated recv consumed the message: in flight = %d, want 1", got)
	}
	if got := n.Recv(1, 0, m.Arrive); got == nil || got.Seq != m.Seq {
		t.Fatalf("Recv at arrival = %+v, want seq %d", got, m.Seq)
	}
}

func TestSendCrossGroupArrival(t *testing.T) {
	p := Params{
		Latency:           1000 * vtime.Nanosecond,
		GroupSize:         2,
		CrossGroupLatency: 9000 * vtime.Nanosecond,
	}
	n := New(p)
	sent := vtime.Stamp{When: vtime.Time(0).Add(100 * vtime.Nanosecond)}
	intra, _ := n.Send(0, 1, 7, 0, sent)
	if got, want := intra.Arrive, sent.When.Add(p.Latency); got != want {
		t.Errorf("intra-group arrival = %v, want %v", got, want)
	}
	cross, _ := n.Send(0, 2, 7, 0, sent)
	if got, want := cross.Arrive, sent.When.Add(p.Latency+p.CrossGroupLatency); got != want {
		t.Errorf("cross-group arrival = %v, want %v", got, want)
	}
}
