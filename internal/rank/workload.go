package rank

import "mana/internal/vtime"

// WorkloadConfig parameterises the deterministic SPMD workload generator.
type WorkloadConfig struct {
	// Ranks is the number of ranks in the job.
	Ranks int
	// Steps is the number of outer iterations per rank.
	Steps int
	// Seed drives per-rank compute jitter; the same seed always produces
	// the same scripts.
	Seed uint64
	// ComputeMean is the nominal per-step compute phase duration.
	ComputeMean vtime.Duration
	// MsgBytes is the point-to-point message payload per exchange.
	MsgBytes uint64
	// ReduceBytes is the allreduce payload per rank.
	ReduceBytes uint64
}

// DefaultWorkload returns a workload shaped like the paper's benchmark
// kernels: a halo-exchange ring with periodic allreduces and barriers.
func DefaultWorkload(ranks, steps int, seed uint64) WorkloadConfig {
	return WorkloadConfig{
		Ranks:       ranks,
		Steps:       steps,
		Seed:        seed,
		ComputeMean: 250 * vtime.Microsecond,
		MsgBytes:    64 << 10,
		ReduceBytes: 8 << 10,
	}
}

// GenerateScript builds the scripted workload for one rank. All ranks
// share the same SPMD structure — in particular the same collective
// sequence, as MPI requires — while compute durations are jittered
// per-rank so clocks skew realistically and the drain phase has real
// in-flight traffic to buffer.
//
// Each step is: compute, send to the right ring neighbour, receive from
// the left ring neighbour; every fourth step overlaps the exchange with
// a nonblocking send (isend + recv + wait, so a request handle is live
// across the receive and checkpoints can land on it); every third step
// ends in an allreduce, every fifth in a barrier, and every seventh
// grows the heap (so checkpoint image sizes evolve between checkpoints).
func GenerateScript(id int, cfg WorkloadConfig) []Op {
	rng := vtime.NewRNG(cfg.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
	right := (id + 1) % cfg.Ranks
	left := (id - 1 + cfg.Ranks) % cfg.Ranks
	var script []Op
	for step := 0; step < cfg.Steps; step++ {
		dur := vtime.Duration(float64(cfg.ComputeMean) * rng.Jitter(0.3))
		script = append(script, Op{Kind: OpCompute, Dur: dur})
		if cfg.Ranks > 1 {
			if step%4 == 3 {
				script = append(script,
					Op{Kind: OpIsend, Peer: right, Bytes: cfg.MsgBytes, Tag: step},
					Op{Kind: OpRecv, Peer: left, Tag: step},
					Op{Kind: OpWait},
				)
			} else {
				script = append(script,
					Op{Kind: OpSend, Peer: right, Bytes: cfg.MsgBytes, Tag: step},
					Op{Kind: OpRecv, Peer: left, Tag: step},
				)
			}
		}
		if step%3 == 2 {
			script = append(script, Op{Kind: OpAllreduce, Bytes: cfg.ReduceBytes})
		}
		if step%5 == 4 {
			script = append(script, Op{Kind: OpBarrier})
		}
		if step%7 == 6 {
			script = append(script, Op{Kind: OpSbrk, Bytes: 256 << 10})
		}
	}
	return script
}
