package rank

import "mana/internal/vtime"

// WorkloadKind selects one of the generated workload shapes.
type WorkloadKind int

const (
	// WorkloadDefault is the halo-exchange ring with periodic world
	// collectives the simulator has always generated.
	WorkloadDefault WorkloadKind = iota
	// WorkloadOverlap splits MPI_COMM_WORLD twice into two staggered
	// group layouts and runs every step's collectives on those
	// sub-communicators, so collectives on overlapping communicators are
	// routinely in flight at the same time — the workload class the
	// topological-sort drain planner exists for.
	WorkloadOverlap
)

// String returns the workload's CLI name.
func (k WorkloadKind) String() string {
	switch k {
	case WorkloadDefault:
		return "default"
	case WorkloadOverlap:
		return "overlap"
	default:
		return "unknown"
	}
}

// WorkloadConfig parameterises the deterministic SPMD workload generator.
type WorkloadConfig struct {
	// Kind selects the workload shape.
	Kind WorkloadKind
	// Ranks is the number of ranks in the job.
	Ranks int
	// Steps is the number of outer iterations per rank.
	Steps int
	// Seed drives per-rank compute jitter; the same seed always produces
	// the same scripts.
	Seed uint64
	// ComputeMean is the nominal per-step compute phase duration.
	ComputeMean vtime.Duration
	// MsgBytes is the point-to-point message payload per exchange.
	MsgBytes uint64
	// ReduceBytes is the allreduce payload per rank.
	ReduceBytes uint64
	// GroupSize is the overlap workload's sub-communicator width: the
	// first split groups ranks [0..G), [G..2G), ...; the second shifts
	// the grouping by G/2 so every second-split communicator straddles
	// two first-split communicators.
	GroupSize int
}

// DefaultWorkload returns a workload shaped like the paper's benchmark
// kernels: a halo-exchange ring with periodic allreduces and barriers.
func DefaultWorkload(ranks, steps int, seed uint64) WorkloadConfig {
	return WorkloadConfig{
		Ranks:       ranks,
		Steps:       steps,
		Seed:        seed,
		ComputeMean: 250 * vtime.Microsecond,
		MsgBytes:    64 << 10,
		ReduceBytes: 8 << 10,
	}
}

// OverlapWorkload returns a workload whose collectives run on two
// staggered sub-communicator layouts, so collectives on overlapping
// communicators are concurrently in flight.
func OverlapWorkload(ranks, steps int, seed uint64) WorkloadConfig {
	cfg := DefaultWorkload(ranks, steps, seed)
	cfg.Kind = WorkloadOverlap
	cfg.GroupSize = 4
	return cfg
}

// GenerateScript builds the scripted workload for one rank, dispatching
// on the configured workload kind. All ranks share the same SPMD
// structure — in particular the same per-communicator collective
// sequence, as MPI requires — while compute durations are jittered
// per-rank so clocks skew realistically and the drain phase has real
// in-flight traffic to buffer.
func GenerateScript(id int, cfg WorkloadConfig) []Op {
	if cfg.Kind == WorkloadOverlap {
		return generateOverlapScript(id, cfg)
	}
	return generateDefaultScript(id, cfg)
}

// generateDefaultScript builds the halo-exchange workload.
//
// Each step is: compute, send to the right ring neighbour, receive from
// the left ring neighbour; every fourth step overlaps the exchange with
// a nonblocking send (isend + recv + wait, so a request handle is live
// across the receive and checkpoints can land on it); every third step
// ends in an allreduce, every fifth in a barrier, and every seventh
// grows the heap (so checkpoint image sizes evolve between checkpoints).
func generateDefaultScript(id int, cfg WorkloadConfig) []Op {
	rng := vtime.NewRNG(cfg.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
	right := (id + 1) % cfg.Ranks
	left := (id - 1 + cfg.Ranks) % cfg.Ranks
	var script []Op
	for step := 0; step < cfg.Steps; step++ {
		dur := vtime.Duration(float64(cfg.ComputeMean) * rng.Jitter(0.3))
		script = append(script, Op{Kind: OpCompute, Dur: dur})
		if cfg.Ranks > 1 {
			if step%4 == 3 {
				script = append(script,
					Op{Kind: OpIsend, Peer: right, Bytes: cfg.MsgBytes, Tag: step},
					Op{Kind: OpRecv, Peer: left, Tag: step},
					Op{Kind: OpWait},
				)
			} else {
				script = append(script,
					Op{Kind: OpSend, Peer: right, Bytes: cfg.MsgBytes, Tag: step},
					Op{Kind: OpRecv, Peer: left, Tag: step},
				)
			}
		}
		if step%3 == 2 {
			script = append(script, Op{Kind: OpAllreduce, Bytes: cfg.ReduceBytes})
		}
		if step%5 == 4 {
			script = append(script, Op{Kind: OpBarrier})
		}
		if step%7 == 6 {
			script = append(script, Op{Kind: OpSbrk, Bytes: 256 << 10})
		}
	}
	return script
}

// generateOverlapScript builds the overlapping-collective workload: two
// MPI_Comm_splits of the world communicator into group layouts offset by
// half a group, then per step an allreduce on the rank's first-layout
// communicator (slot 1) and a barrier on its second-layout communicator
// (slot 2), with a world-ring halo exchange every second step. Because
// slot-2 communicators straddle two slot-1 communicators, a rank's
// barrier cannot complete until its neighbours' allreduces have, and at
// any instant many collectives on overlapping communicators are
// partially arrived — the situation the drain planner topologically
// sorts. The per-step comm order (always slot 1 before slot 2) is the
// same on every rank, so the dependency graph is acyclic by
// construction.
func generateOverlapScript(id int, cfg WorkloadConfig) []Op {
	g := cfg.GroupSize
	if g < 2 {
		g = 2
	}
	if g > cfg.Ranks {
		g = cfg.Ranks
	}
	rng := vtime.NewRNG(cfg.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
	right := (id + 1) % cfg.Ranks
	left := (id - 1 + cfg.Ranks) % cfg.Ranks
	script := []Op{
		{Kind: OpCommSplit, Comm: 0, Color: id / g},
		{Kind: OpCommSplit, Comm: 0, Color: (id + g/2) / g},
	}
	for step := 0; step < cfg.Steps; step++ {
		dur := vtime.Duration(float64(cfg.ComputeMean) * rng.Jitter(0.3))
		script = append(script, Op{Kind: OpCompute, Dur: dur})
		if cfg.Ranks > 1 && step%2 == 1 {
			script = append(script,
				Op{Kind: OpSend, Peer: right, Bytes: cfg.MsgBytes, Tag: step},
				Op{Kind: OpRecv, Peer: left, Tag: step},
			)
		}
		script = append(script, Op{Kind: OpAllreduce, Comm: 1, Bytes: cfg.ReduceBytes})
		dur = vtime.Duration(float64(cfg.ComputeMean) * rng.Jitter(0.3) / 2)
		script = append(script, Op{Kind: OpCompute, Dur: dur})
		script = append(script, Op{Kind: OpBarrier, Comm: 2})
		if step%5 == 4 {
			script = append(script, Op{Kind: OpSbrk, Bytes: 256 << 10})
		}
	}
	return script
}
