// Package rank implements the simulated MPI rank: the unit of execution
// the checkpoint coordinator manages.
//
// A Rank owns exactly the state a real MANA-wrapped MPI process owns: a
// virtual clock (vtime.Clock), a split-process address space
// (memsim.AddressSpace), a kernel cost personality (kernelsim.Kernel)
// and a handle-virtualisation table (virtid.Table). It executes a
// scripted workload — compute phases, point-to-point sends and receives,
// barriers and allreduces, heap growth — and charges the MANA per-call
// overhead (FS-register round trip + handle-virtualisation lookups +
// record/replay metadata, paper §3.3) on every MPI call. The lookups are
// real: the rank registers its communicator and datatype at init and a
// request per point-to-point operation, and every MPI call translates
// its handles through the table, so a missing or doubly-registered
// handle is a detectable bug (the rank panics), not a silently wrong
// cost charge.
//
// The rank does not schedule itself: the coordinator's event-driven
// scheduler drives it, because collectives and checkpoints need a global
// view. The rank exposes exactly the transitions the virtual-time event
// loop needs: NextReady reports when the rank can next act, Execute runs
// one operation atomically and reports whether the rank advanced, blocked
// on a receive or arrived at a collective, and Wake retries a blocked
// receive when a delivery event makes a matching message available. A
// blocked or collective-waiting rank has no ready time and therefore
// consumes zero scheduler work until an event transitions it back.
package rank

import (
	"encoding/binary"
	"fmt"

	"mana/internal/kernelsim"
	"mana/internal/memsim"
	"mana/internal/netsim"
	"mana/internal/scenario"
	"mana/internal/virtid"
	"mana/internal/vtime"
)

// State is the rank's scheduler-visible execution state.
type State int

const (
	// Running means the rank is between operations and can start its next
	// scripted op.
	Running State = iota
	// BlockedRecv means the rank has posted a receive with no matching
	// message available; it consumes no scheduler work until a delivery
	// event wakes it.
	BlockedRecv
	// InCollective means the rank has arrived at a collective and is
	// waiting for the remaining participants.
	InCollective
	// Done means the script is exhausted.
	Done
)

// String returns a short name for the state.
func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case BlockedRecv:
		return "blocked-recv"
	case InCollective:
		return "in-collective"
	case Done:
		return "done"
	default:
		return "unknown"
	}
}

// Stats accumulates per-rank workload accounting. Stats are part of the
// checkpoint image: restart restores them and re-execution of replayed
// operations re-increments them, so post-restart totals match an
// uncheckpointed run exactly.
type Stats struct {
	MPICalls     uint64
	MsgsSent     uint64
	MsgsRecvd    uint64
	BytesSent    uint64
	BytesRecvd   uint64
	Collectives  uint64
	CommSplits   uint64
	ComputeTime  vtime.Duration
	ManaOverhead vtime.Duration // per-call MANA cost charged to the clock

	// Handle-virtualisation accounting (§3.3): how many virtual-to-real
	// translations this rank performed, per handle kind; how many table
	// writes (request Register/Deregister on the nonblocking paths); and
	// the modelled virtual time each cost (both subsets of ManaOverhead).
	HandleLookups   uint64
	CommLookups     uint64
	DatatypeLookups uint64
	RequestLookups  uint64
	HandleWrites    uint64
	LookupTime      vtime.Duration
	WriteTime       vtime.Duration
}

// Image is one rank's checkpoint image: everything needed to resume the
// rank bit-identically. A full image carries the complete upper half in
// Mem (memsim.Snapshot); an incremental image (Full == false) instead
// carries only the pages dirtied since the previous checkpoint in Delta,
// and must be overlaid onto its base chain (Overlay) before Restore can
// consume it. Inbox carries the in-flight messages the drain phase
// buffered at the receiver (§3.1 — drained messages are saved in the
// image and replayed to the application after restart); Virt carries the
// handle-virtualisation table state (sorted, deterministic), from which
// restart rebuilds the table so that live virtual handles keep resolving
// while handles minted in the abandoned timeline do not. The small state
// (PC, Clock, Inbox, Virt, PendingReqs, Stats) is carried in full by
// every image, delta or not: only memory is worth incrementalising.
type Image struct {
	RankID int
	PC     int
	Clock  vtime.Time
	// Seq is the checkpoint sequence number this image belongs to and
	// Base the sequence its delta applies on top of (0 for full images);
	// both are assigned by the coordinator when the image commits.
	Seq  int
	Base int
	// Full reports whether Mem carries a self-contained snapshot; when
	// false, Delta carries the incremental payload instead.
	Full  bool
	Mem   memsim.Snapshot
	Delta memsim.Delta
	// Complete reports whether the image's write to the parallel
	// filesystem finished. A torn write (injected fault) leaves it false,
	// with WrittenBytes recording the byte-accurate partial size; restart
	// verification refuses to restore from a torn link.
	Complete bool
	// WrittenBytes is the payload actually written — Bytes() for a
	// complete image, less for a torn one.
	WrittenBytes uint64
	// StoredBytes is the payload the storage layer actually moves:
	// WrittenBytes after the coordinator's delta-page compression stage
	// (equal to WrittenBytes when compression is off or the image is
	// full). It is storage accounting only — restore and verification
	// work on the uncompressed payload.
	StoredBytes uint64
	Inbox       []netsim.Message
	Virt        virtid.Snapshot
	// PendingReqs is the FIFO of request handles posted by nonblocking
	// operations and not yet retired by a wait — live handles that must
	// keep resolving after restart.
	PendingReqs []virtid.VID
	// Comms and CommIDs carry the rank's communicator slot table: slot i
	// holds virtual handle Comms[i] for the communicator the coordinator
	// knows globally as CommIDs[i] (slot 0 is MPI_COMM_WORLD, id 0). The
	// coordinator rebuilds its membership registry from these on restart.
	Comms   []virtid.VID
	CommIDs []int
	Stats   Stats
}

// Bytes returns the payload the image writes to the parallel filesystem:
// the full memory snapshot, or only the carried dirty pages for an
// incremental image, plus buffered drained messages either way.
func (img Image) Bytes() uint64 {
	var total uint64
	if img.Full {
		total = img.Mem.TotalBytes()
	} else {
		total = img.Delta.PayloadBytes()
	}
	for _, m := range img.Inbox {
		total += m.Bytes
	}
	return total
}

// FullBytes returns what a self-contained image of the same state would
// have written — the full-vs-incremental comparison the report records.
func (img Image) FullBytes() uint64 {
	var total uint64
	if img.Full {
		total = img.Mem.TotalBytes()
	} else {
		total = img.Delta.FullBytes()
	}
	for _, m := range img.Inbox {
		total += m.Bytes
	}
	return total
}

// Rank is one simulated MPI process.
type Rank struct {
	id int
	// island is the scheduler island (event-queue lane) this rank's
	// events run on; assigned once by the coordinator's partitioning
	// rule and never changed, so a rank's whole lifetime stays on one
	// worker goroutine.
	island int
	clock  *vtime.Clock
	mem    *memsim.AddressSpace
	// pool, when non-nil, backs mem's region buffers; Restore threads it
	// into the rebuilt address space and ReleaseMem recycles into it.
	pool   *memsim.Pool
	kernel *kernelsim.Kernel
	script scenario.Program
	pc     int
	state  State

	// vt is the handle-virtualisation table (paper §3.3); vimpl records
	// which implementation the job selected so restart can rebuild the
	// same one. comms holds the virtual communicator handle per slot
	// (slot 0 = MPI_COMM_WORLD, later slots minted by comm-splits in
	// execution order) with commIDs carrying the coordinator's global
	// communicator id for each slot; dtype is the datatype handle
	// registered at init. Every MPI call translates its handles through
	// the table.
	vt      virtid.Table
	vimpl   virtid.Impl
	comms   []virtid.VID
	commIDs []int
	dtype   virtid.VID
	// reqSeq numbers posted requests; it mirrors the table's request
	// allocation counter and is restored from the image's virtid snapshot
	// so replayed posts mint identical real handles. pending is the FIFO
	// of not-yet-waited request handles (part of the checkpoint image).
	reqSeq  uint64
	pending []virtid.VID

	// inbox holds messages that the checkpoint drain phase buffered at
	// this rank before the application posted the matching receive.
	// Receives consume the inbox (per-sender FIFO) before the network.
	inbox []netsim.Message

	// blockedPeer is the source rank of the receive this rank is blocked
	// on, meaningful only while state == BlockedRecv.
	blockedPeer int

	// stateRegion is the upper-half data region workload steps write to,
	// so that memory contents — and therefore snapshot fingerprints —
	// evolve over the run.
	stateRegion uint64

	stats Stats
	// ckptOverhead accumulates virtual time spent on checkpoint/restart
	// activity (signal delivery, draining, image write/read, lower-half
	// rebuild). It is deliberately NOT part of the checkpoint image and
	// not charged to the application clock: MANA runs checkpointing in a
	// helper thread, and keeping it separate lets tests prove that a
	// checkpointed-and-restarted run reaches bit-identical application
	// virtual times to an uncheckpointed one.
	ckptOverhead vtime.Duration
}

const stateRegionSize = 64 * 1024

// Real handle values the live lower half hands out, shaped like MPICH's
// predefined-handle encodings. In a real MANA run these change on every
// restart (the rebuilt lower half mints fresh ones, which is the whole
// reason the table exists); the simulator keeps them stable so images
// stay deterministic, and models only the translation work.
const (
	realCommWorld    virtid.Real = 0x44000000
	realDatatypeByte virtid.Real = 0x4c00010d
	// realRequestBase offsets a request's virtual id into its simulated
	// real handle, keeping replayed registrations bit-identical.
	realRequestBase virtid.Real = 0x98000000
	// RealCommBase offsets a split communicator's global id into its
	// simulated real handle. The coordinator passes RealCommBase+id to
	// FinishCommSplit so replayed splits re-mint bit-identical mappings.
	RealCommBase virtid.Real = 0x44000100
)

// New returns a rank with an initialised split-process address space,
// the selected handle-virtualisation table and the given program — the
// rank's complete op stream, from a compiled scenario spec, a recorded
// trace, or built directly by a test. The upper half models the
// application, its libc and its link-time MPI library; the lower half
// models the bootstrap program and the active network stack. The world
// communicator and the workload's datatype are registered in the
// virtualisation table exactly as MANA wraps MPI_Init: the application
// only ever sees their virtual ids.
func New(id int, personality kernelsim.Personality, impl virtid.Impl, script scenario.Program) *Rank {
	return NewPooled(id, personality, impl, script, nil)
}

// NewPooled is New with the rank's address-space backing buffers drawn
// from (and, via ReleaseMem, returned to) a shared memsim.Pool. A nil
// pool is equivalent to New. Pooled allocation is invisible to the
// simulation: buffers come out zeroed, exactly like fresh ones, so a
// pooled rank's run is bit-identical to an unpooled one.
func NewPooled(id int, personality kernelsim.Personality, impl virtid.Impl, script scenario.Program, pool *memsim.Pool) *Rank {
	r := &Rank{
		id:     id,
		clock:  vtime.NewClock(0),
		mem:    memsim.NewAddressSpacePooled(pool),
		pool:   pool,
		kernel: kernelsim.NewForTable(personality, impl),
		script: script,
		vt:     virtid.New(impl),
		vimpl:  impl,
	}
	r.comms = []virtid.VID{r.vt.Register(virtid.Comm, realCommWorld)}
	r.commIDs = []int{0}
	r.dtype = r.vt.Register(virtid.Datatype, realDatatypeByte)
	r.initUpperHalf()
	r.InitLowerHalf()
	return r
}

func (r *Rank) initUpperHalf() {
	r.mem.Mmap("app.text", memsim.UpperHalf, memsim.KindText, 2<<20)
	r.mem.Mmap("app.data", memsim.UpperHalf, memsim.KindData, 512<<10)
	r.mem.Mmap("libc.text", memsim.UpperHalf, memsim.KindText, 1800<<10)
	r.mem.Mmap("libmpi.text(link)", memsim.UpperHalf, memsim.KindText, 4<<20)
	r.mem.Mmap("[stack]", memsim.UpperHalf, memsim.KindStack, 256<<10)
	r.mem.Mmap("[environ]", memsim.UpperHalf, memsim.KindEnviron, 4<<10)
	state := r.mem.MmapWithData("app.state", memsim.UpperHalf, memsim.KindData, make([]byte, stateRegionSize))
	r.stateRegion = state.Addr
}

// InitLowerHalf (re)creates the ephemeral lower half: the bootstrap
// loader, the active MPI and network libraries and their driver mappings.
// The coordinator calls it again on restart, after discarding the old
// lower half, to model rebuilding the lower half from scratch.
func (r *Rank) InitLowerHalf() {
	r.mem.Mmap("bootstrap.text", memsim.LowerHalf, memsim.KindText, 128<<10)
	r.mem.Mmap("libmpi.so(active)", memsim.LowerHalf, memsim.KindText, 4<<20)
	r.mem.Mmap("libfabric.so", memsim.LowerHalf, memsim.KindText, 1<<20)
	r.mem.Mmap("nic.pinned", memsim.LowerHalf, memsim.KindPinned, 8<<20)
	r.mem.Mmap("driver.shm", memsim.LowerHalf, memsim.KindSharedMem, 2<<20)
}

// ID returns the rank's MPI rank number.
func (r *Rank) ID() int { return r.id }

// Island returns the scheduler island this rank is pinned to.
func (r *Rank) Island() int { return r.island }

// SetIsland pins the rank to a scheduler island. The coordinator calls
// this once at construction; the affinity must not change mid-run (the
// rank's events would migrate between worker goroutines).
func (r *Rank) SetIsland(island int) { r.island = island }

// Clock returns the rank's virtual clock.
func (r *Rank) Clock() *vtime.Clock { return r.clock }

// Mem returns the rank's simulated address space.
func (r *Rank) Mem() *memsim.AddressSpace { return r.mem }

// Kernel returns the rank's kernel cost model.
func (r *Rank) Kernel() *kernelsim.Kernel { return r.kernel }

// Virtid returns the rank's handle-virtualisation table. Tests use it to
// inspect table state and to stage dead-timeline handles.
func (r *Rank) Virtid() virtid.Table { return r.vt }

// VirtidImpl returns the table implementation the rank was built with.
func (r *Rank) VirtidImpl() virtid.Impl { return r.vimpl }

// CommCount returns the number of communicator slots the rank holds
// (1 for a rank that has performed no comm-splits: MPI_COMM_WORLD).
func (r *Rank) CommCount() int { return len(r.comms) }

// CommID returns the coordinator's global communicator id for one of the
// rank's communicator slots. The coordinator uses it to resolve which
// rendezvous a collective arrival belongs to.
func (r *Rank) CommID(slot int) int {
	if slot < 0 || slot >= len(r.commIDs) {
		panic(fmt.Sprintf("rank %d: communicator slot %d out of range (have %d)", r.id, slot, len(r.commIDs)))
	}
	return r.commIDs[slot]
}

// commHandle returns the virtual handle for a communicator slot. A slot
// the rank never minted is a virtualisation bug in the script, exactly
// like a stale handle, and is fatal.
func (r *Rank) commHandle(slot int) virtid.VID {
	if slot < 0 || slot >= len(r.comms) {
		panic(fmt.Sprintf("rank %d: communicator slot %d out of range (have %d)", r.id, slot, len(r.comms)))
	}
	return r.comms[slot]
}

// State returns the scheduler-visible execution state.
func (r *Rank) State() State {
	if r.state == Running && r.pc >= len(r.script) {
		return Done
	}
	return r.state
}

// PC returns the script program counter.
func (r *Rank) PC() int { return r.pc }

// ScriptLen returns the total number of scripted operations.
func (r *Rank) ScriptLen() int { return len(r.script) }

// Stats returns a copy of the rank's accounting.
func (r *Rank) Stats() Stats { return r.stats }

// CkptOverhead returns virtual time spent on checkpoint/restart activity,
// which is accounted separately from the application clock.
func (r *Rank) CkptOverhead() vtime.Duration { return r.ckptOverhead }

// ChargeCkptOverhead adds checkpoint-side cost to the rank's overhead
// account. The coordinator uses this for signal delivery, drain probes,
// image I/O and restart reinitialisation.
func (r *Rank) ChargeCkptOverhead(d vtime.Duration) {
	if d > 0 {
		r.ckptOverhead += d
	}
}

// Op returns the rank's current scripted operation. It panics if the
// script is exhausted; callers must check State first.
func (r *Rank) Op() scenario.Op {
	if r.pc >= len(r.script) {
		panic(fmt.Sprintf("rank %d: Op() past end of script", r.id))
	}
	return r.script[r.pc]
}

// InboxLen returns the number of drain-buffered messages awaiting the
// application.
func (r *Rank) InboxLen() int { return len(r.inbox) }

// PendingRequests returns the virtual ids of nonblocking operations
// posted but not yet retired by a wait, oldest first.
func (r *Rank) PendingRequests() []virtid.VID {
	return append([]virtid.VID(nil), r.pending...)
}

// translate resolves one virtual handle through the table, exactly as
// the MANA wrapper does on the way into the lower half. A miss means the
// upper half holds a handle the table does not know — a virtualisation
// bug (or a stale handle from an abandoned timeline) — and is fatal.
func (r *Rank) translate(k virtid.Kind, v virtid.VID) virtid.Real {
	real, ok := r.vt.Lookup(k, v)
	if !ok {
		panic(fmt.Sprintf("rank %d: virtual %v handle %d does not resolve", r.id, k, v))
	}
	return real
}

// postRequest registers the request handle a nonblocking operation
// allocates at post time. The simulated real handle is a deterministic
// function of the request sequence number so that restart replay
// re-creates bit-identical mappings.
func (r *Rank) postRequest() virtid.VID {
	r.reqSeq++
	v := r.vt.Register(virtid.Request, realRequestBase+virtid.Real(r.reqSeq))
	if v != virtid.VID(r.reqSeq) {
		// reqSeq mirrors the table's request allocation counter; any path
		// registering requests outside postRequest would silently break the
		// deterministic real-handle mapping replay depends on.
		panic(fmt.Sprintf("rank %d: request seq %d desynchronised from table vid %d", r.id, r.reqSeq, v))
	}
	return v
}

// completeRequest models the wait half: the request handle is translated
// once more (the wait call passes it down) and then retired from the
// table — after this, the virtual id never resolves again.
func (r *Rank) completeRequest(v virtid.VID) {
	r.translate(virtid.Request, v)
	if !r.vt.Deregister(virtid.Request, v) {
		panic(fmt.Sprintf("rank %d: request handle %d retired twice", r.id, v))
	}
}

// chargeMPICall advances the clock by MANA's per-call overhead and
// records it: the FS-register round trip, the per-kind virtualisation
// lookups the call performed, any table writes (request registration and
// retirement on the nonblocking paths, priced by the selected
// implementation's write cost), and one metadata record when the call
// has drain-relevant effects (§3.3).
func (r *Rank) chargeMPICall(lookups virtid.LookupCounts, writes uint64, recorded bool) {
	d := r.kernel.MANAPerCallOverhead(lookups, recorded)
	writeTime := vtime.Duration(writes) * r.kernel.HandleWriteCost()
	d += writeTime
	r.clock.Advance(d)
	r.stats.MPICalls++
	r.stats.ManaOverhead += d
	r.stats.CommLookups += lookups.Comm
	r.stats.DatatypeLookups += lookups.Datatype
	r.stats.RequestLookups += lookups.Request
	r.stats.HandleLookups += lookups.Total()
	r.stats.HandleWrites += writes
	r.stats.LookupTime += r.kernel.VirtualizationLookupOverhead(lookups)
	r.stats.WriteTime += writeTime
}

// writeStateMarker stores the current pc into the workload state region
// so memory contents evolve deterministically with progress.
func (r *Rank) writeStateMarker() {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(r.pc)+1)
	off := (uint64(r.pc) * 8) % (stateRegionSize - 8)
	if err := r.mem.Write(r.stateRegion, off, buf[:]); err != nil {
		panic(fmt.Sprintf("rank %d: state marker write: %v", r.id, err))
	}
}

// DoCompute executes a compute op: advance the clock by the phase
// duration and touch application memory.
func (r *Rank) DoCompute(op scenario.Op) {
	r.clock.Advance(op.Dur)
	r.stats.ComputeTime += op.Dur
	r.writeStateMarker()
	r.pc++
}

// DoSend executes a blocking send op: translate the communicator and
// datatype handles (a blocking send surfaces no request to the
// application, so none is virtualised), charge the MANA call overhead
// (one lookup per translated handle, metadata record for the drain
// counters), inject the message with a piggybacked timestamp, and occupy
// the sender for the serialisation time.
func (r *Rank) DoSend(net *netsim.Network, op scenario.Op) *netsim.Message {
	r.translate(virtid.Comm, r.commHandle(op.Comm))
	r.translate(virtid.Datatype, r.dtype)
	r.chargeMPICall(virtid.LookupCounts{Comm: 1, Datatype: 1}, 0, true)
	stamp := vtime.StampFrom(r.id, r.clock)
	m, busy := net.Send(r.id, op.Peer, op.Tag, op.Bytes, stamp)
	r.clock.Advance(busy)
	r.stats.MsgsSent++
	r.stats.BytesSent += op.Bytes
	r.pc++
	return m
}

// DoIsend executes a nonblocking send: like DoSend, but the call also
// registers a request handle that stays live — in the table and in the
// pending FIFO, both part of the checkpoint image — until the matching
// wait retires it. The message itself is on the wire immediately; only
// its completion handle is outstanding.
func (r *Rank) DoIsend(net *netsim.Network, op scenario.Op) *netsim.Message {
	r.translate(virtid.Comm, r.commHandle(op.Comm))
	r.translate(virtid.Datatype, r.dtype)
	req := r.postRequest()
	r.pending = append(r.pending, req)
	// The post is a table write (the request is born here), not a lookup;
	// its first translation happens at the wait.
	r.chargeMPICall(virtid.LookupCounts{Comm: 1, Datatype: 1}, 1, true)
	stamp := vtime.StampFrom(r.id, r.clock)
	m, busy := net.Send(r.id, op.Peer, op.Tag, op.Bytes, stamp)
	r.clock.Advance(busy)
	r.stats.MsgsSent++
	r.stats.BytesSent += op.Bytes
	r.pc++
	return m
}

// DoWait completes the oldest outstanding nonblocking operation: the
// wait call passes the request handle down (one translation) and retires
// it from the table — after this the virtual id never resolves again.
func (r *Rank) DoWait() {
	if len(r.pending) == 0 {
		panic(fmt.Sprintf("rank %d: wait with no outstanding request", r.id))
	}
	req := r.pending[0]
	r.pending = r.pending[1:]
	r.completeRequest(req)
	r.chargeMPICall(virtid.LookupCounts{Request: 1}, 1, false)
	r.pc++
}

// TryRecv attempts to execute a recv op at virtual time by. Drain-
// buffered inbox messages from the requested peer are consumed first,
// with no arrival gate — they were already received off the network by
// the checkpoint helper and live in the rank's own buffer. Otherwise
// the network queue is consulted, which only yields messages that have
// arrived by the given time: a rank can never observe a message before
// its wire latency has elapsed, which is both the physical semantics
// and the property the island scheduler's lookahead window relies on.
// It returns false, leaving the pc unchanged, if no matching message is
// visible yet — the message's delivery event wakes the rank later.
func (r *Rank) TryRecv(net *netsim.Network, op scenario.Op, by vtime.Time) bool {
	for i, m := range r.inbox {
		if m.Src == op.Peer {
			r.inbox = append(r.inbox[:i:i], r.inbox[i+1:]...)
			r.completeRecv(m)
			return true
		}
	}
	m := net.Recv(r.id, op.Peer, by)
	if m == nil {
		return false
	}
	r.completeRecv(*m)
	return true
}

func (r *Rank) completeRecv(m netsim.Message) {
	r.translate(virtid.Comm, r.commHandle(r.Op().Comm))
	r.translate(virtid.Datatype, r.dtype)
	r.chargeMPICall(virtid.LookupCounts{Comm: 1, Datatype: 1}, 0, true)
	// Piggyback synchronisation: the receiver cannot observe the message
	// before it arrives.
	r.clock.Observe(vtime.Stamp{Rank: m.Src, When: m.Arrive})
	r.stats.MsgsRecvd++
	r.stats.BytesRecvd += m.Bytes
	r.writeStateMarker()
	r.pc++
}

// TransitionKind classifies the outcome of one Execute call.
type TransitionKind int

const (
	// Advanced means the operation completed and the rank's clock moved;
	// if the script is not exhausted the rank is immediately ready again.
	Advanced TransitionKind = iota
	// BlockedOnRecv means the rank posted a receive with no matching
	// message; it must not be rescheduled until a delivery wakes it.
	BlockedOnRecv
	// JoinedCollective means the rank entered the collective
	// rendezvous and is waiting for the remaining participants.
	JoinedCollective
)

// Transition reports the effect of one Execute call, carrying exactly
// what the event loop needs to schedule follow-up events.
type Transition struct {
	Kind TransitionKind
	// Op is the operation that was attempted.
	Op scenario.Op
	// Msg is the injected message for an Advanced send (its delivery
	// event is scheduled by the network's DeliveryScheduler hook).
	Msg *netsim.Message
	// Stamp is the arrival stamp for JoinedCollective.
	Stamp vtime.Stamp
}

// NextReady reports when the rank can next execute an operation. It
// returns false for a rank that is done, blocked on a receive or waiting
// in a collective: such ranks have no ready time and are woken by events
// instead of being polled.
func (r *Rank) NextReady() (vtime.Time, bool) {
	if r.State() != Running {
		return 0, false
	}
	return r.clock.Now(), true
}

// Execute runs the rank's next scripted operation atomically and returns
// the resulting transition. Callers must only invoke it when NextReady
// reports true.
func (r *Rank) Execute(net *netsim.Network) Transition {
	op := r.Op()
	switch op.Kind {
	case scenario.OpCompute:
		r.DoCompute(op)
		return Transition{Kind: Advanced, Op: op}
	case scenario.OpSend:
		m := r.DoSend(net, op)
		return Transition{Kind: Advanced, Op: op, Msg: m}
	case scenario.OpIsend:
		m := r.DoIsend(net, op)
		return Transition{Kind: Advanced, Op: op, Msg: m}
	case scenario.OpWait:
		r.DoWait()
		return Transition{Kind: Advanced, Op: op}
	case scenario.OpRecv:
		if r.TryRecv(net, op, r.clock.Now()) {
			return Transition{Kind: Advanced, Op: op}
		}
		r.state = BlockedRecv
		r.blockedPeer = op.Peer
		return Transition{Kind: BlockedOnRecv, Op: op}
	case scenario.OpBarrier, scenario.OpAllreduce, scenario.OpCommSplit:
		return Transition{Kind: JoinedCollective, Op: op, Stamp: r.ArriveAtCollective()}
	case scenario.OpSbrk:
		r.DoSbrk(op)
		return Transition{Kind: Advanced, Op: op}
	default:
		panic(fmt.Sprintf("rank %d: Execute of unknown op kind %v", r.id, op.Kind))
	}
}

// BlockedOn returns the peer of the receive the rank is blocked on; ok is
// false unless the rank is in BlockedRecv.
func (r *Rank) BlockedOn() (peer int, ok bool) {
	if r.state != BlockedRecv {
		return 0, false
	}
	return r.blockedPeer, true
}

// Wake retries the blocked receive after a delivery (or a checkpoint
// drain) may have made a matching message available at virtual time at
// — for a delivery event, the message's arrival time. It returns true
// if the receive completed, leaving the rank Running (or Done) and
// ready to be rescheduled; false if the rank was not blocked or still
// has no matching message.
func (r *Rank) Wake(net *netsim.Network, at vtime.Time) bool {
	if r.state != BlockedRecv {
		return false
	}
	op := r.script[r.pc]
	r.state = Running
	if r.TryRecv(net, op, at) {
		return true
	}
	r.state = BlockedRecv
	return false
}

// ArriveAtCollective executes the rank-local half of a collective:
// translate the handles the call passes (every collective names the
// communicator it runs over — world or a sub-communicator slot; a
// payload-carrying one also names the datatype), charge the call
// overhead, mark the rank as waiting, and return the piggyback stamp the
// coordinator gathers to compute the completion time.
func (r *Rank) ArriveAtCollective() vtime.Stamp {
	if r.State() != Running {
		panic(fmt.Sprintf("rank %d: ArriveAtCollective in state %v", r.id, r.state))
	}
	op := r.Op()
	lookups := virtid.LookupCounts{Comm: 1}
	r.translate(virtid.Comm, r.commHandle(op.Comm))
	if op.Kind == scenario.OpAllreduce {
		r.translate(virtid.Datatype, r.dtype)
		lookups.Datatype = 1
	}
	r.chargeMPICall(lookups, 0, true)
	r.state = InCollective
	return vtime.StampFrom(r.id, r.clock)
}

// FinishCollective completes the collective the rank is waiting in: the
// clock advances to the globally computed completion time.
func (r *Rank) FinishCollective(completion vtime.Time) {
	if r.state != InCollective {
		panic(fmt.Sprintf("rank %d: FinishCollective in state %v", r.id, r.state))
	}
	r.clock.AdvanceTo(completion)
	r.state = Running
	r.stats.Collectives++
	r.writeStateMarker()
	r.pc++
}

// FinishCommSplit completes the comm-split the rank is waiting in: the
// clock advances to the globally computed completion time, and the new
// sub-communicator — global id commID, live lower-half handle real — is
// registered in the virtualisation table and appended to the rank's slot
// table. The registration is a table write charged at the selected
// implementation's write cost; because the allocation counters are part
// of the checkpoint image, a replayed split after restart re-mints a
// bit-identical virtual handle.
func (r *Rank) FinishCommSplit(completion vtime.Time, commID int, real virtid.Real) {
	if r.state != InCollective {
		panic(fmt.Sprintf("rank %d: FinishCommSplit in state %v", r.id, r.state))
	}
	if r.Op().Kind != scenario.OpCommSplit {
		panic(fmt.Sprintf("rank %d: FinishCommSplit while waiting in %v", r.id, r.Op().Kind))
	}
	r.clock.AdvanceTo(completion)
	v := r.vt.Register(virtid.Comm, real)
	r.comms = append(r.comms, v)
	r.commIDs = append(r.commIDs, commID)
	writeTime := r.kernel.HandleWriteCost()
	r.clock.Advance(writeTime)
	r.stats.HandleWrites++
	r.stats.WriteTime += writeTime
	r.stats.ManaOverhead += writeTime
	r.state = Running
	r.stats.CommSplits++
	r.writeStateMarker()
	r.pc++
}

// DoSbrk executes a heap-growth op through the simulated address space,
// charging the syscall cost.
func (r *Rank) DoSbrk(op scenario.Op) memsim.SbrkResult {
	r.clock.Advance(r.kernel.SyscallCost())
	res := r.mem.Sbrk(op.Bytes)
	r.pc++
	return res
}

// BufferDrained appends a message delivered by the checkpoint drain phase
// to the rank's inbox. The coordinator charges the buffering cost
// separately via ChargeCkptOverhead.
func (r *Rank) BufferDrained(m *netsim.Message) {
	r.inbox = append(r.inbox, *m)
}

// CaptureImage produces the rank's checkpoint image and commits the
// memory generation it captures (sealing region contents, clearing dirty
// bitmaps). With incremental set — and a previously committed generation
// to delta against — the image carries only the pages dirtied since the
// last checkpoint; the first capture after construction or restart always
// falls back to a self-contained full image. Every image owns its payload:
// full snapshots alias only immutable sealed slices, deltas carry fresh
// page copies, and the small state is deep-copied.
func (r *Rank) CaptureImage(incremental bool) Image {
	if r.state == InCollective {
		panic(fmt.Sprintf("rank %d: checkpoint while inside a collective", r.id))
	}
	inbox := make([]netsim.Message, len(r.inbox))
	copy(inbox, r.inbox)
	pending := make([]virtid.VID, len(r.pending))
	copy(pending, r.pending)
	comms := make([]virtid.VID, len(r.comms))
	copy(comms, r.comms)
	commIDs := make([]int, len(r.commIDs))
	copy(commIDs, r.commIDs)
	img := Image{
		RankID:      r.id,
		PC:          r.pc,
		Clock:       r.clock.Now(),
		Inbox:       inbox,
		Virt:        r.vt.Snapshot(),
		PendingReqs: pending,
		Comms:       comms,
		CommIDs:     commIDs,
		Stats:       r.stats,
	}
	if incremental && r.mem.Generation() > 0 {
		img.Delta = r.mem.CommitUpperHalfDelta()
	} else {
		img.Full = true
		img.Mem = r.mem.CommitUpperHalf()
	}
	img.Complete = true
	img.WrittenBytes = img.Bytes()
	img.StoredBytes = img.WrittenBytes
	return img
}

// Overlay materialises an incremental image onto its base: the returned
// image is full, bit-identical to the full image that would have been
// captured at the delta's commit point. A full img passes through
// untouched, so a restart loop can fold an arbitrary base+delta chain.
func Overlay(base, img Image) Image {
	if img.Full {
		return img
	}
	if base.RankID != img.RankID {
		panic(fmt.Sprintf("rank: overlay of rank %d delta onto rank %d base", img.RankID, base.RankID))
	}
	if !base.Full {
		panic(fmt.Sprintf("rank %d: overlay base (seq %d) is itself a delta", base.RankID, base.Seq))
	}
	if img.Base != base.Seq {
		panic(fmt.Sprintf("rank %d: delta seq %d applies to base seq %d, got base seq %d",
			img.RankID, img.Seq, img.Base, base.Seq))
	}
	out := img
	out.Full = true
	out.Base = 0
	out.Mem = memsim.ApplyDelta(base.Mem, img.Delta)
	out.Delta = memsim.Delta{}
	out.WrittenBytes = out.Bytes()
	out.StoredBytes = out.WrittenBytes
	return out
}

// VerifyImage checks a committed image's integrity the way a restart
// would before trusting it: a torn image (Complete == false) is rejected
// outright; otherwise every carried page or region is rehashed with the
// same FNV digests recorded at capture time. It returns the number of
// pages rehashed — the coordinator charges restart verify cost per page —
// and an error naming what failed.
func VerifyImage(img Image) (pages int, err error) {
	if !img.Complete {
		return 0, fmt.Errorf("rank %d: image for checkpoint #%d is torn: %d of %d bytes written",
			img.RankID, img.Seq, img.WrittenBytes, img.Bytes())
	}
	if img.Full {
		pages, err = img.Mem.Verify()
	} else {
		pages, err = img.Delta.Verify()
	}
	if err != nil {
		return pages, fmt.Errorf("rank %d: image for checkpoint #%d is corrupt: %w", img.RankID, img.Seq, err)
	}
	return pages, nil
}

// Restore rebuilds the rank from a checkpoint image, modelling MANA's
// restart path: discard the dead process's lower half, bootstrap a fresh
// one (InitLowerHalf), then map the saved upper-half regions over it and
// resume the application state. Checkpoint-overhead accounting is
// preserved across the restore — it describes the run, not the image.
func (r *Rank) Restore(img Image) {
	if img.RankID != r.id {
		panic(fmt.Sprintf("rank %d: restore from image of rank %d", r.id, img.RankID))
	}
	if !img.Full {
		panic(fmt.Sprintf("rank %d: restore from unmaterialised delta image (seq %d, base %d) — Overlay it first",
			r.id, img.Seq, img.Base))
	}
	// The dead process's address space is gone; restart begins from a
	// fresh one, exactly as the real bootstrap does. Rebuilding from
	// scratch also keeps the mmap allocation cursor bit-identical to an
	// uncheckpointed run, so replayed allocations land at the same
	// addresses. The dead space's buffers go back to the pool first —
	// nothing aliases them (images alias seals, never live Data).
	r.mem.Release()
	r.mem = memsim.NewAddressSpacePooled(r.pool)
	r.InitLowerHalf()
	r.mem.RestoreUpperHalf(img.Mem)
	// The virtualisation table is rebuilt from the image, exactly as MANA
	// repopulates it after the fresh lower half comes up: virtual ids live
	// at checkpoint time resolve again, ids minted in the abandoned
	// timeline do not, and the restored allocation counters make replayed
	// registrations bit-identical.
	r.vt = virtid.New(r.vimpl)
	r.vt.Restore(img.Virt)
	r.reqSeq = img.Virt.Next[virtid.Request]
	r.pending = make([]virtid.VID, len(img.PendingReqs))
	copy(r.pending, img.PendingReqs)
	r.comms = make([]virtid.VID, len(img.Comms))
	copy(r.comms, img.Comms)
	r.commIDs = make([]int, len(img.CommIDs))
	copy(r.commIDs, img.CommIDs)
	r.clock.Set(img.Clock)
	r.pc = img.PC
	r.state = Running
	r.inbox = make([]netsim.Message, len(img.Inbox))
	copy(r.inbox, img.Inbox)
	r.stats = img.Stats
}

// ReleaseMem returns the rank's address-space buffers to the pool it was
// built with (a no-op for unpooled ranks). The rank must not be used
// afterwards; a fleet engine calls this when its run retires.
func (r *Rank) ReleaseMem() {
	r.mem.Release()
}
