package rank

import (
	"runtime"
	"testing"

	"mana/internal/kernelsim"
	"mana/internal/scenario"
	"mana/internal/virtid"
	"mana/internal/vtime"
)

// benchCheckpointCapture measures steady-state checkpoint capture: one
// executed workload step (which dirties the state region) followed by one
// image capture. The reported image-bytes/op metric is what BENCH_sched.json
// tracks across PRs — the full-vs-incremental bytes-written trajectory —
// and the assertions pin the incremental mode's costs to O(dirty pages):
// a bounded allocation count and a payload orders of magnitude below the
// address-space size.
func benchCheckpointCapture(b *testing.B, incremental bool) {
	b.ReportAllocs()
	script := make([]scenario.Op, b.N+1)
	for i := range script {
		script[i] = scenario.Op{Kind: scenario.OpCompute, Dur: 10 * vtime.Microsecond}
	}
	net := testNet()
	r := New(0, kernelsim.Patched, virtid.ImplSharded, script)
	r.CaptureImage(incremental) // chain start (always full)
	var imageBytes, fullBytes uint64
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	startAllocs := ms.Mallocs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Execute(net) // one compute step: touches the state region
		img := r.CaptureImage(incremental)
		imageBytes += img.Bytes()
		fullBytes += img.FullBytes()
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms)
	allocsPerOp := float64(ms.Mallocs-startAllocs) / float64(b.N)
	b.ReportMetric(float64(imageBytes)/float64(b.N), "image-bytes/op")
	if incremental {
		if allocsPerOp > 48 {
			b.Errorf("incremental capture = %.1f allocs/op, want O(dirty pages), not O(address space)", allocsPerOp)
		}
		if imageBytes*10 > fullBytes {
			b.Errorf("incremental images %d bytes vs full-equivalent %d: want >=10x reduction",
				imageBytes, fullBytes)
		}
	}
}

func BenchmarkCheckpointCaptureFull(b *testing.B) { benchCheckpointCapture(b, false) }

func BenchmarkCheckpointCaptureIncremental(b *testing.B) { benchCheckpointCapture(b, true) }
