package rank

import (
	"testing"

	"mana/internal/kernelsim"
	"mana/internal/scenario"
	"mana/internal/virtid"
	"mana/internal/vtime"
)

// computeScript returns n compute phases of 1ms each.
func computeScript(n int) []scenario.Op {
	script := make([]scenario.Op, n)
	for i := range script {
		script[i] = scenario.Op{Kind: scenario.OpCompute, Dur: 1 * vtime.Millisecond}
	}
	return script
}

// TestIncrementalCaptureFallsBackToFull pins the chain-start rule: the
// first capture of a rank (no committed generation) is full even when
// incremental was requested, and so is the first capture after a restore.
func TestIncrementalCaptureFallsBackToFull(t *testing.T) {
	r := New(0, kernelsim.Patched, virtid.ImplSharded, computeScript(4))
	img := r.CaptureImage(true)
	if !img.Full {
		t.Fatal("first incremental capture must fall back to a full image")
	}
	r.Execute(testNet())
	delta := r.CaptureImage(true)
	if delta.Full {
		t.Fatal("second capture should have been incremental")
	}
	r.Restore(img)
	postRestore := r.CaptureImage(true)
	if !postRestore.Full {
		t.Error("first capture after restore must be full: restart starts a new chain")
	}
}

// TestIncrementalOverlayRestoresExactState is the rank-level tentpole
// property: restoring from base+delta chains reproduces exactly the state
// a full image would have restored — memory fingerprints included — and
// the delta is an order of magnitude smaller than the full image.
func TestIncrementalOverlayRestoresExactState(t *testing.T) {
	net := testNet()
	script := append(computeScript(6), scenario.Op{Kind: scenario.OpSbrk, Bytes: 128 << 10})
	script = append(script, computeScript(4)...)

	r := New(0, kernelsim.Unpatched, virtid.ImplSharded, script)
	for i := 0; i < 3; i++ {
		r.Execute(net)
	}
	base := r.CaptureImage(true) // full: chain start
	base.Seq = 1

	for i := 0; i < 4; i++ { // crosses the sbrk: layout changes mid-chain
		r.Execute(net)
	}
	d1 := r.CaptureImage(true)
	d1.Seq, d1.Base = 2, 1

	for i := 0; i < 2; i++ {
		r.Execute(net)
	}
	d2 := r.CaptureImage(true)
	d2.Seq, d2.Base = 3, 2

	// Reference: a rank driven identically but captured with full images.
	ref := New(0, kernelsim.Unpatched, virtid.ImplSharded, script)
	for i := 0; i < 9; i++ {
		ref.Execute(net)
	}
	want := ref.CaptureImage(false)

	got := Overlay(Overlay(base, d1), d2)
	if !got.Mem.Equal(want.Mem) {
		t.Fatal("overlaid memory differs from the full capture")
	}
	if got.Mem.Fingerprint() != want.Mem.Fingerprint() {
		t.Error("overlaid fingerprint differs from the full capture")
	}
	if got.PC != want.PC || got.Clock != want.Clock {
		t.Errorf("overlay pc/clock = %d/%v, want %d/%v", got.PC, got.Clock, want.PC, want.Clock)
	}

	// Restoring the materialised chain must resume bit-identically.
	r.Execute(net)
	r.Restore(got)
	if snap := r.Mem().SnapshotUpperHalf(); !snap.Equal(want.Mem) {
		t.Error("restored upper half differs from the reference image")
	}
	if r.PC() != want.PC || r.Clock().Now() != want.Clock {
		t.Errorf("restored pc/clock = %d/%v, want %d/%v", r.PC(), r.Clock().Now(), want.PC, want.Clock)
	}

	// The deltas only carry touched pages: an order of magnitude below
	// the full image even in this tiny script.
	if d2.Bytes()*10 > want.Bytes() {
		t.Errorf("delta image %d bytes, full image %d bytes; want >=10x reduction", d2.Bytes(), want.Bytes())
	}
}

// TestRestoreFromDeltaPanics pins the misuse guard: a delta image must be
// materialised before it can restore a rank.
func TestRestoreFromDeltaPanics(t *testing.T) {
	r := New(0, kernelsim.Patched, virtid.ImplSharded, computeScript(2))
	r.CaptureImage(true) // full
	r.Execute(testNet())
	delta := r.CaptureImage(true)
	defer func() {
		if recover() == nil {
			t.Error("Restore from a delta image did not panic")
		}
	}()
	r.Restore(delta)
}

// TestOverlayChainValidation pins the chain bookkeeping panics.
func TestOverlayChainValidation(t *testing.T) {
	r := New(0, kernelsim.Patched, virtid.ImplSharded, computeScript(4))
	base := r.CaptureImage(true)
	base.Seq = 1
	r.Execute(testNet())
	d := r.CaptureImage(true)
	d.Seq, d.Base = 2, 1
	r.Execute(testNet())
	skipped := r.CaptureImage(true)
	skipped.Seq, skipped.Base = 3, 2
	defer func() {
		if recover() == nil {
			t.Error("Overlay skipping a chain link did not panic")
		}
	}()
	Overlay(base, skipped) // applies to seq 2, not the seq-1 base
}

// TestIncrementalImageCarriesSmallState verifies every delta image still
// carries the full small state (stats, virt table, pending requests), so
// the newest chain link alone decides the restored rank's bookkeeping.
func TestIncrementalImageCarriesSmallState(t *testing.T) {
	net := testNet()
	r := New(0, kernelsim.Patched, virtid.ImplSharded, []scenario.Op{
		{Kind: scenario.OpIsend, Peer: 1, Bytes: 64, Tag: 0},
		{Kind: scenario.OpCompute, Dur: 1 * vtime.Millisecond},
		{Kind: scenario.OpWait},
	})
	r.CaptureImage(true) // full base
	r.Execute(net)       // isend: request now live
	d := r.CaptureImage(true)
	if d.Full {
		t.Fatal("expected a delta image")
	}
	if len(d.PendingReqs) != 1 {
		t.Errorf("delta image pending requests = %d, want 1", len(d.PendingReqs))
	}
	if d.Virt.Live() != 3 { // comm + datatype + live request
		t.Errorf("delta image virt live entries = %d, want 3", d.Virt.Live())
	}
	if d.Stats.MsgsSent != 1 {
		t.Errorf("delta image stats MsgsSent = %d, want 1", d.Stats.MsgsSent)
	}
}
