package rank

import (
	"testing"

	"mana/internal/kernelsim"
	"mana/internal/memsim"
	"mana/internal/netsim"
	"mana/internal/scenario"
	"mana/internal/virtid"
	"mana/internal/vtime"
)

func testNet() *netsim.Network {
	return netsim.New(netsim.Params{Latency: 1000 * vtime.Nanosecond, BandwidthBytesPerSec: 1e9})
}

func TestMPICallChargesManaOverhead(t *testing.T) {
	script := []scenario.Op{{Kind: scenario.OpSend, Peer: 1, Bytes: 0, Tag: 0}}
	r := New(0, kernelsim.Unpatched, virtid.ImplSharded, script)
	k := kernelsim.NewForTable(kernelsim.Unpatched, virtid.ImplSharded)
	r.DoSend(testNet(), script[0])
	st := r.Stats()
	if st.MPICalls != 1 {
		t.Fatalf("MPICalls = %d, want 1", st.MPICalls)
	}
	// A blocking send translates the communicator and the datatype (no
	// request is surfaced): two lookups plus the drain-counter metadata
	// record.
	want := k.MANAPerCallOverhead(virtid.LookupCounts{Comm: 1, Datatype: 1}, true)
	if st.ManaOverhead != want {
		t.Errorf("ManaOverhead = %v, want %v (FS round trip + 2 lookups + record)", st.ManaOverhead, want)
	}
	if got := r.Clock().Now(); got != vtime.Time(want) {
		t.Errorf("clock = %v, want %v (zero-byte send costs only MANA overhead)", got, want)
	}
	if st.HandleLookups != 2 || st.CommLookups != 1 || st.DatatypeLookups != 1 || st.RequestLookups != 0 {
		t.Errorf("lookup stats = %d (comm=%d dtype=%d req=%d), want 2 (1/1/0)",
			st.HandleLookups, st.CommLookups, st.DatatypeLookups, st.RequestLookups)
	}
	if st.LookupTime != 2*virtid.ShardedLookupCost {
		t.Errorf("LookupTime = %v, want %v", st.LookupTime, 2*virtid.ShardedLookupCost)
	}
}

func TestPatchedKernelCheaperPerCall(t *testing.T) {
	script := []scenario.Op{{Kind: scenario.OpSend, Peer: 1, Bytes: 0}}
	unp := New(0, kernelsim.Unpatched, virtid.ImplSharded, script)
	pat := New(0, kernelsim.Patched, virtid.ImplSharded, script)
	unp.DoSend(testNet(), script[0])
	pat.DoSend(testNet(), script[0])
	if pat.Stats().ManaOverhead >= unp.Stats().ManaOverhead {
		t.Errorf("patched overhead %v should be below unpatched %v",
			pat.Stats().ManaOverhead, unp.Stats().ManaOverhead)
	}
}

func TestRecvObservesPiggybackedArrival(t *testing.T) {
	net := testNet()
	sender := New(0, kernelsim.Patched, virtid.ImplSharded, []scenario.Op{{Kind: scenario.OpCompute, Dur: 10 * vtime.Millisecond}, {Kind: scenario.OpSend, Peer: 1, Bytes: 1000}})
	receiver := New(1, kernelsim.Patched, virtid.ImplSharded, []scenario.Op{{Kind: scenario.OpRecv, Peer: 0}})

	// Receiver posts first: nothing in flight yet.
	if receiver.TryRecv(net, receiver.Op(), receiver.Clock().Now()) {
		t.Fatal("TryRecv succeeded with nothing in flight")
	}
	sender.DoCompute(sender.Op())
	m := sender.DoSend(net, sender.Op())
	// The message is in flight but has not arrived: the receiver (clock
	// near zero) cannot observe it yet.
	if receiver.TryRecv(net, receiver.Op(), receiver.Clock().Now()) {
		t.Fatal("TryRecv consumed a message before its arrival time")
	}
	if !receiver.TryRecv(net, receiver.Op(), m.Arrive) {
		t.Fatal("TryRecv failed with an arrived message in flight")
	}
	// The receiver (clock near zero) must advance to the arrival time.
	if got := receiver.Clock().Now(); got < m.Arrive {
		t.Errorf("receiver clock %v behind message arrival %v", got, m.Arrive)
	}
	if receiver.State() != Done {
		t.Errorf("receiver state = %v, want done", receiver.State())
	}
}

func TestCollectiveArriveFinish(t *testing.T) {
	r := New(0, kernelsim.Patched, virtid.ImplSharded, []scenario.Op{{Kind: scenario.OpBarrier}})
	stamp := r.ArriveAtCollective()
	if r.State() != InCollective {
		t.Fatalf("state after arrive = %v, want in-collective", r.State())
	}
	if stamp.Rank != 0 || stamp.When != r.Clock().Now() {
		t.Errorf("arrival stamp %+v inconsistent with clock %v", stamp, r.Clock().Now())
	}
	completion := stamp.When.Add(5 * vtime.Microsecond)
	r.FinishCollective(completion)
	if got := r.Clock().Now(); got != completion {
		t.Errorf("clock after finish = %v, want %v", got, completion)
	}
	if r.State() != Done {
		t.Errorf("state = %v, want done", r.State())
	}
	if r.Stats().Collectives != 1 {
		t.Errorf("Collectives = %d, want 1", r.Stats().Collectives)
	}
}

func TestImageRoundTripRestoresExactState(t *testing.T) {
	net := testNet()
	script := []scenario.Op{
		{Kind: scenario.OpCompute, Dur: 1 * vtime.Millisecond},
		{Kind: scenario.OpSbrk, Bytes: 128 << 10},
		{Kind: scenario.OpCompute, Dur: 2 * vtime.Millisecond},
	}
	r := New(0, kernelsim.Unpatched, virtid.ImplSharded, script)
	r.DoCompute(script[0])
	r.DoSbrk(script[1])
	img := r.CaptureImage(false)

	// Run past the checkpoint, then restore.
	r.DoCompute(script[2])
	if r.State() != Done {
		t.Fatalf("state = %v, want done before restore", r.State())
	}
	r.Restore(img)
	if r.PC() != 2 || r.Clock().Now() != img.Clock {
		t.Fatalf("restore pc/clock = %d/%v, want %d/%v", r.PC(), r.Clock().Now(), img.PC, img.Clock)
	}
	if !r.Mem().PostRestart() {
		t.Error("address space should be marked post-restart")
	}
	// Upper half must match the image bit for bit; replaying the rest of
	// the script must land in the same final state as the original run.
	if snap := r.Mem().SnapshotUpperHalf(); !snap.Equal(img.Mem) {
		t.Error("restored upper half differs from image")
	}
	if got := r.Mem().BytesOf(memsim.LowerHalf); got == 0 {
		t.Error("lower half empty after restore; restart must rebuild it")
	}
	r.DoCompute(script[2])
	if r.State() != Done {
		t.Errorf("replay did not complete the script")
	}
	_ = net
}

func TestDrainedInboxSurvivesCheckpointAndFeedsRecv(t *testing.T) {
	net := testNet()
	sender := New(0, kernelsim.Patched, virtid.ImplSharded, []scenario.Op{{Kind: scenario.OpSend, Peer: 1, Bytes: 500, Tag: 9}})
	receiver := New(1, kernelsim.Patched, virtid.ImplSharded, []scenario.Op{{Kind: scenario.OpRecv, Peer: 0, Tag: 9}})
	sender.DoSend(net, sender.Op())

	// Checkpoint-time drain: the in-flight message is buffered at the
	// receiver, the network quiesces, and the image carries the buffer.
	for _, m := range net.DrainTo(1) {
		receiver.BufferDrained(m)
	}
	if net.InFlight() != 0 {
		t.Fatalf("network not quiescent after drain: %d in flight", net.InFlight())
	}
	if receiver.InboxLen() != 1 {
		t.Fatalf("inbox = %d messages, want 1", receiver.InboxLen())
	}
	img := receiver.CaptureImage(false)
	if len(img.Inbox) != 1 {
		t.Fatalf("image inbox = %d messages, want 1", len(img.Inbox))
	}

	receiver.Restore(img)
	// The restored receiver consumes the buffered message with no network
	// traffic at all — and with no arrival gate: the drain already
	// received it off the network.
	if !receiver.TryRecv(net, receiver.Op(), receiver.Clock().Now()) {
		t.Fatal("recv after restore failed to consume drained message")
	}
	if receiver.InboxLen() != 0 {
		t.Errorf("inbox not consumed: %d left", receiver.InboxLen())
	}
	if receiver.Stats().MsgsRecvd != 1 {
		t.Errorf("MsgsRecvd = %d, want 1", receiver.Stats().MsgsRecvd)
	}
}

func TestStatsRestoredFromImage(t *testing.T) {
	net := testNet()
	script := []scenario.Op{
		{Kind: scenario.OpSend, Peer: 1, Bytes: 100},
		{Kind: scenario.OpSend, Peer: 1, Bytes: 100},
	}
	r := New(0, kernelsim.Unpatched, virtid.ImplSharded, script)
	r.DoSend(net, script[0])
	img := r.CaptureImage(false)
	r.DoSend(net, script[1])
	if r.Stats().MsgsSent != 2 {
		t.Fatalf("MsgsSent = %d, want 2", r.Stats().MsgsSent)
	}
	r.Restore(img)
	if r.Stats().MsgsSent != 1 {
		t.Errorf("restored MsgsSent = %d, want 1 (stats are part of the image)", r.Stats().MsgsSent)
	}
}

func TestExecuteTransitions(t *testing.T) {
	net := testNet()
	r := New(0, kernelsim.Patched, virtid.ImplSharded, []scenario.Op{
		{Kind: scenario.OpCompute, Dur: 1 * vtime.Millisecond},
		{Kind: scenario.OpRecv, Peer: 1},
		{Kind: scenario.OpBarrier},
	})

	if tm, ok := r.NextReady(); !ok || tm != 0 {
		t.Fatalf("NextReady = (%v, %v), want (0, true)", tm, ok)
	}
	tr := r.Execute(net)
	if tr.Kind != Advanced || tr.Op.Kind != scenario.OpCompute {
		t.Fatalf("compute transition = %+v, want Advanced/compute", tr)
	}
	if tm, ok := r.NextReady(); !ok || tm != r.Clock().Now() {
		t.Fatalf("NextReady after compute = (%v, %v), want clock time", tm, ok)
	}

	// Receive with nothing in flight: the rank blocks and reports the
	// peer it waits on; a blocked rank has no ready time.
	tr = r.Execute(net)
	if tr.Kind != BlockedOnRecv {
		t.Fatalf("recv transition = %+v, want BlockedOnRecv", tr)
	}
	if r.State() != BlockedRecv {
		t.Fatalf("state = %v, want blocked-recv", r.State())
	}
	if peer, ok := r.BlockedOn(); !ok || peer != 1 {
		t.Errorf("BlockedOn = (%d, %v), want (1, true)", peer, ok)
	}
	if _, ok := r.NextReady(); ok {
		t.Error("blocked rank reported a ready time")
	}

	// A wake with no matching message leaves the rank blocked.
	if r.Wake(net, r.Clock().Now()) {
		t.Fatal("Wake succeeded with nothing in flight")
	}
	if r.State() != BlockedRecv {
		t.Fatalf("state after failed wake = %v, want blocked-recv", r.State())
	}

	// A wake at the matching message's arrival time completes the receive.
	sender := New(1, kernelsim.Patched, virtid.ImplSharded, []scenario.Op{{Kind: scenario.OpSend, Peer: 0, Bytes: 100}})
	sm := sender.Execute(net)
	if !r.Wake(net, sm.Msg.Arrive) {
		t.Fatal("Wake failed with a matching message arrived")
	}
	if r.Stats().MsgsRecvd != 1 {
		t.Errorf("MsgsRecvd = %d, want 1", r.Stats().MsgsRecvd)
	}

	// The barrier transition hands back the arrival stamp.
	tr = r.Execute(net)
	if tr.Kind != JoinedCollective {
		t.Fatalf("barrier transition = %+v, want JoinedCollective", tr)
	}
	if tr.Stamp.Rank != 0 || tr.Stamp.When != r.Clock().Now() {
		t.Errorf("arrival stamp %+v inconsistent with clock %v", tr.Stamp, r.Clock().Now())
	}
	if _, ok := r.NextReady(); ok {
		t.Error("in-collective rank reported a ready time")
	}
	r.FinishCollective(r.Clock().Now().Add(1 * vtime.Microsecond))
	if r.State() != Done {
		t.Errorf("state = %v, want done after script exhausted", r.State())
	}
	if _, ok := r.NextReady(); ok {
		t.Error("done rank reported a ready time")
	}
}

func TestWakeConsumesInboxBeforeNetwork(t *testing.T) {
	net := testNet()
	r := New(1, kernelsim.Patched, virtid.ImplSharded, []scenario.Op{{Kind: scenario.OpRecv, Peer: 0}})
	if tr := r.Execute(net); tr.Kind != BlockedOnRecv {
		t.Fatalf("transition = %+v, want BlockedOnRecv", tr)
	}
	// A checkpoint drain buffers the message into the inbox while the
	// rank is blocked; the wake must find it there.
	sender := New(0, kernelsim.Patched, virtid.ImplSharded, []scenario.Op{{Kind: scenario.OpSend, Peer: 1, Bytes: 64}})
	sender.Execute(net)
	for _, m := range net.DrainTo(1) {
		r.BufferDrained(m)
	}
	if !r.Wake(net, r.Clock().Now()) {
		t.Fatal("Wake failed to consume the drain-buffered message")
	}
	if r.InboxLen() != 0 {
		t.Errorf("inbox not consumed: %d left", r.InboxLen())
	}
	if r.State() != Done {
		t.Errorf("state = %v, want done", r.State())
	}
}

// TestIsendWaitRequestLifecycle pins the nonblocking request handle
// lifecycle: Isend registers a live request in the virtualisation table,
// the matching Wait translates it once more and retires it for good.
func TestIsendWaitRequestLifecycle(t *testing.T) {
	net := testNet()
	r := New(0, kernelsim.Patched, virtid.ImplSharded, []scenario.Op{
		{Kind: scenario.OpIsend, Peer: 1, Bytes: 100, Tag: 1},
		{Kind: scenario.OpWait},
	})
	r.DoIsend(net, r.Op())
	pending := r.PendingRequests()
	if len(pending) != 1 {
		t.Fatalf("pending requests = %d, want 1", len(pending))
	}
	req := pending[0]
	if _, ok := r.Virtid().Lookup(virtid.Request, req); !ok {
		t.Fatal("posted request does not resolve in the table")
	}
	// The post is a write (the request is born, not translated): one
	// handle write, no request lookup yet.
	if st := r.Stats(); st.RequestLookups != 0 || st.HandleWrites != 1 {
		t.Errorf("after isend: RequestLookups=%d HandleWrites=%d, want 0/1", st.RequestLookups, st.HandleWrites)
	}
	r.DoWait()
	if len(r.PendingRequests()) != 0 {
		t.Error("pending requests not drained by wait")
	}
	if _, ok := r.Virtid().Lookup(virtid.Request, req); ok {
		t.Error("retired request still resolves")
	}
	// The wait translates the request once and retires it: one request
	// lookup, one more write.
	if st := r.Stats(); st.RequestLookups != 1 || st.HandleWrites != 2 {
		t.Errorf("after wait: RequestLookups=%d HandleWrites=%d, want 1/2", st.RequestLookups, st.HandleWrites)
	}
	if st := r.Stats(); st.WriteTime != 2*virtid.ShardedWriteCost {
		t.Errorf("WriteTime = %v, want %v", st.WriteTime, 2*virtid.ShardedWriteCost)
	}
	if r.State() != Done {
		t.Errorf("state = %v, want done", r.State())
	}
}

// TestWaitWithoutRequestPanics pins the detectability property for the
// wait side: waiting with nothing outstanding is a virtualisation bug,
// not a silent no-op.
func TestWaitWithoutRequestPanics(t *testing.T) {
	r := New(0, kernelsim.Patched, virtid.ImplSharded, []scenario.Op{{Kind: scenario.OpWait}})
	defer func() {
		if recover() == nil {
			t.Error("DoWait with no outstanding request did not panic")
		}
	}()
	r.DoWait()
}

// TestSendPanicsOnMissingHandle pins the other detectability property:
// the send path performs a real communicator lookup, so a handle missing
// from the table (here: maliciously deregistered) is a loud failure, not
// a silently wrong cost charge.
func TestSendPanicsOnMissingHandle(t *testing.T) {
	r := New(0, kernelsim.Patched, virtid.ImplSharded, []scenario.Op{{Kind: scenario.OpSend, Peer: 1, Bytes: 64}})
	snap := r.Virtid().Snapshot()
	if len(snap.Entries[virtid.Comm]) != 1 {
		t.Fatalf("expected exactly one registered communicator, got %d", len(snap.Entries[virtid.Comm]))
	}
	r.Virtid().Deregister(virtid.Comm, snap.Entries[virtid.Comm][0].VID)
	defer func() {
		if recover() == nil {
			t.Error("DoSend with a missing communicator handle did not panic")
		}
	}()
	r.DoSend(testNet(), r.Op())
}

// TestVirtidRebuiltFromImageAndStaleHandlesDie is the §3.2 restart
// property at the rank level: a checkpoint taken while a nonblocking
// request is outstanding carries that live handle (it must resolve after
// restore, and the pending wait must complete against it), while handles
// minted in the abandoned timeline must not resolve — and replay must
// re-mint exactly the ids the dead timeline used.
func TestVirtidRebuiltFromImageAndStaleHandlesDie(t *testing.T) {
	for _, impl := range []virtid.Impl{virtid.ImplMutex, virtid.ImplSharded} {
		t.Run(impl.String(), func(t *testing.T) {
			net := testNet()
			script := []scenario.Op{
				{Kind: scenario.OpIsend, Peer: 1, Bytes: 64, Tag: 0},
				{Kind: scenario.OpWait},
				{Kind: scenario.OpIsend, Peer: 1, Bytes: 64, Tag: 1},
				{Kind: scenario.OpWait},
			}
			r := New(0, kernelsim.Patched, impl, script)
			r.Execute(net) // first isend: request live across the checkpoint
			img := r.CaptureImage(false)
			live := img.PendingReqs
			if len(live) != 1 {
				t.Fatalf("image pending requests = %d, want 1", len(live))
			}
			if len(img.Virt.Entries[virtid.Request]) != 1 {
				t.Fatalf("image request table entries = %d, want 1", len(img.Virt.Entries[virtid.Request]))
			}

			// The timeline runs on past the checkpoint: the wait retires the
			// live request and a second isend mints a new one.
			r.Execute(net) // wait
			r.Execute(net) // second isend
			stale := r.PendingRequests()[0]
			if stale == live[0] {
				t.Fatalf("second isend reused VID %d", stale)
			}

			r.Restore(img)
			if _, ok := r.Virtid().Lookup(virtid.Request, live[0]); !ok {
				t.Error("request live at checkpoint time does not resolve after restore")
			}
			if _, ok := r.Virtid().Lookup(virtid.Request, stale); ok {
				t.Error("stale request from the dead timeline resolves after restore")
			}
			got := r.PendingRequests()
			if len(got) != 1 || got[0] != live[0] {
				t.Fatalf("restored pending requests = %v, want %v", got, live)
			}

			// Replay: the wait completes against the restored handle, and the
			// re-executed second isend mints exactly the dead timeline's id.
			r.Execute(net) // wait (replayed)
			r.Execute(net) // second isend (replayed)
			if remint := r.PendingRequests()[0]; remint != stale {
				t.Errorf("replayed isend minted VID %d, want %d (deterministic reallocation)", remint, stale)
			}
			r.Execute(net) // final wait
			if r.State() != Done {
				t.Errorf("state = %v, want done after replay", r.State())
			}
		})
	}
}

// TestImageVirtSnapshotMatchesTable verifies CaptureImage embeds the
// table state exactly as Snapshot reports it, for both implementations.
func TestImageVirtSnapshotMatchesTable(t *testing.T) {
	for _, impl := range []virtid.Impl{virtid.ImplMutex, virtid.ImplSharded} {
		r := New(0, kernelsim.Patched, impl, nil)
		img := r.CaptureImage(false)
		want := r.Virtid().Snapshot()
		if img.Virt.Next != want.Next {
			t.Errorf("%v: image Next = %v, want %v", impl, img.Virt.Next, want.Next)
		}
		if img.Virt.Live() != want.Live() || img.Virt.Live() != 2 {
			t.Errorf("%v: image live entries = %d, want 2 (comm + datatype)", impl, img.Virt.Live())
		}
	}
}

// TestCommSplitMintsSlotAndSurvivesImage walks one rank through an
// MPI_Comm_split: arrival charges the call, FinishCommSplit registers
// the new communicator handle (a priced table write), collectives can
// then target the new slot, and a checkpoint image round-trips the slot
// table so that a restored rank still resolves the sub-communicator —
// while a split minted after the image dies with its timeline.
func TestCommSplitMintsSlotAndSurvivesImage(t *testing.T) {
	script := []scenario.Op{
		{Kind: scenario.OpCommSplit, Comm: 0, Color: 3},
		{Kind: scenario.OpBarrier, Comm: 1},
		{Kind: scenario.OpCommSplit, Comm: 0, Color: 1},
	}
	r := New(0, kernelsim.Patched, virtid.ImplSharded, script)
	if got := r.CommCount(); got != 1 {
		t.Fatalf("initial comm slots = %d, want 1 (world)", got)
	}

	tr := r.Execute(testNet())
	if tr.Kind != JoinedCollective || tr.Op.Kind != scenario.OpCommSplit || tr.Op.Color != 3 {
		t.Fatalf("split arrival transition = %+v, want joined-collective comm-split colour 3", tr)
	}
	writesBefore := r.Stats().HandleWrites
	r.FinishCommSplit(r.Clock().Now().Add(2*vtime.Microsecond), 5, RealCommBase+5)
	if got := r.CommCount(); got != 2 {
		t.Fatalf("comm slots after split = %d, want 2", got)
	}
	if got := r.CommID(1); got != 5 {
		t.Errorf("slot 1 comm id = %d, want 5", got)
	}
	if got := r.Stats().CommSplits; got != 1 {
		t.Errorf("CommSplits = %d, want 1", got)
	}
	if got := r.Stats().HandleWrites; got != writesBefore+1 {
		t.Errorf("HandleWrites = %d, want %d (the registration is a priced table write)", got, writesBefore+1)
	}
	if got := r.Virtid().Len(virtid.Comm); got != 2 {
		t.Errorf("live comm handles = %d, want 2 (world + split)", got)
	}

	// The barrier on the new slot translates the sub-communicator handle.
	if tr := r.Execute(testNet()); tr.Kind != JoinedCollective {
		t.Fatalf("barrier on split comm: transition %+v", tr)
	}
	r.FinishCollective(r.Clock().Now().Add(vtime.Microsecond))

	img := r.CaptureImage(false)
	if len(img.Comms) != 2 || len(img.CommIDs) != 2 || img.CommIDs[1] != 5 {
		t.Fatalf("image comm table = %v/%v, want 2 slots with id 5 in slot 1", img.Comms, img.CommIDs)
	}

	// A second split past the checkpoint belongs to the dead timeline.
	r.Execute(testNet())
	r.FinishCommSplit(r.Clock().Now(), 9, RealCommBase+9)
	if got := r.CommCount(); got != 3 {
		t.Fatalf("comm slots after second split = %d, want 3", got)
	}
	r.Restore(img)
	if got := r.CommCount(); got != 2 {
		t.Errorf("restored comm slots = %d, want 2 (post-image split must die)", got)
	}
	if _, ok := r.Virtid().Lookup(virtid.Comm, img.Comms[1]); !ok {
		t.Error("restored sub-communicator handle does not resolve")
	}
	if got := r.Virtid().Len(virtid.Comm); got != 2 {
		t.Errorf("restored live comm handles = %d, want 2", got)
	}
}
