// Package storage models the two-tier checkpoint I/O pipeline of MANA's
// NERSC production deployment (arXiv:2103.08546): per-node burst buffers
// with a bounded capacity and a local bandwidth stage image payloads at
// commit time, and an asynchronous drain engine feeds them to a shared
// parallel filesystem whose aggregate bandwidth is contended across every
// concurrent writer. Writes queue on the PFS in virtual time, so commit
// stragglers emerge from contention instead of the retired dialled-in
// StragglerP/StragglerMax model. On top of the tiering sits optional
// per-page compression of the incremental delta payload: each 4 KiB dirty
// page is shrunk by a per-region-class compressibility ratio (all-zero
// pages collapse to a header), trading kernel CPU time per input byte
// against PFS bytes.
//
// Configuration arrives either as a `storage` block inside a scenario
// spec or as a standalone JSON document (or built-in profile name) via
// the -storage CLI flag. Validation follows the scenario engine's
// named-field error style: every error names the exact offending field,
// e.g. `storage: burst_buffer.capacity: must be positive, got 0`.
package storage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"mana/internal/memsim"
	"mana/internal/vtime"
)

// Default model parameters: a flat-fabric 8-node job sharing a 16 GB/s
// parallel filesystem (twice the retired per-rank 2 GB/s flat bandwidth in
// aggregate, so the default job is bandwidth-contended), 8 GB/s node-local
// burst buffers of 256 MiB, and an lz4-class compressor costing 0.3 ns of
// CPU per input byte (~3.3 GB/s).
const (
	DefaultPFSBandwidth = 16e9
	DefaultBBBandwidth  = 8e9
	DefaultBBCapacity   = 256 << 20
	DefaultCompressCost = 0.3
	// zeroPageStored is the stored size of an all-zero page: a run-length
	// header, independent of the configured ratios.
	zeroPageStored = 16
)

// BurstBufferSpec declares the per-node staging tier.
type BurstBufferSpec struct {
	// Bandwidth is the node-local staging bandwidth in bytes/second.
	// Zero models free (instantaneous) staging; negative is rejected.
	Bandwidth float64 `json:"bandwidth"`
	// Capacity bounds the staged-but-not-yet-drained bytes one node's
	// buffer holds; payload beyond the free capacity is written through
	// synchronously to the contended PFS.
	Capacity uint64 `json:"capacity"`
}

// PFSSpec declares the shared parallel-filesystem tier.
type PFSSpec struct {
	// AggregateBandwidth is the filesystem's total bandwidth in
	// bytes/second, shared by every concurrent writer: requests queue in
	// virtual time and stragglers emerge from the queueing. Zero models
	// free I/O; negative is rejected.
	AggregateBandwidth float64 `json:"aggregate_bandwidth"`
}

// CompressionSpec declares per-page delta-payload compression.
type CompressionSpec struct {
	Enabled bool `json:"enabled"`
	// CostNsPerByte is the kernel CPU cost per input byte fed to the
	// compressor (0 = DefaultCompressCost).
	CostNsPerByte float64 `json:"cost_ns_per_byte,omitempty"`
}

// Spec is the declarative storage configuration as it appears in JSON —
// a scenario spec's `storage` block or a standalone -storage document.
// Absent blocks take the model defaults: no staging, a contended PFS at
// DefaultPFSBandwidth, no compression.
type Spec struct {
	BurstBuffer *BurstBufferSpec `json:"burst_buffer,omitempty"`
	PFS         *PFSSpec         `json:"pfs,omitempty"`
	Compression *CompressionSpec `json:"compression,omitempty"`
	// Compressibility maps region-class names (memsim kind spellings:
	// "text", "data", "heap", "stack", ...) to post-compression size
	// ratios in (0, 1]. Classes not named take the model defaults.
	Compressibility map[string]float64 `json:"compressibility,omitempty"`
}

// Parse decodes a standalone storage document, rejecting unknown fields
// and trailing garbage, then validates it.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("storage: trailing data after storage document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec standalone; errors name the offending field as
// `storage: <field>: <problem>`.
func (s *Spec) Validate() error {
	return s.ValidateNamed(func(path, format string, args ...any) error {
		return fmt.Errorf("storage: %s: %s", path, fmt.Sprintf(format, args...))
	})
}

// ValidateNamed checks the spec, constructing errors through errf so an
// enclosing document (a scenario spec's `storage` block) can graft its
// own path prefix. errf receives the field path relative to the spec
// root.
func (s *Spec) ValidateNamed(errf func(path, format string, args ...any) error) error {
	if s.PFS != nil && s.PFS.AggregateBandwidth < 0 {
		return errf("pfs.aggregate_bandwidth", "must be non-negative (0 models free I/O), got %g", s.PFS.AggregateBandwidth)
	}
	if bb := s.BurstBuffer; bb != nil {
		if bb.Bandwidth < 0 {
			return errf("burst_buffer.bandwidth", "must be non-negative (0 models free staging), got %g", bb.Bandwidth)
		}
		if bb.Capacity == 0 {
			return errf("burst_buffer.capacity", "must be positive, got 0 (a zero-capacity buffer stages nothing)")
		}
	}
	if cp := s.Compression; cp != nil {
		if cp.CostNsPerByte < 0 {
			return errf("compression.cost_ns_per_byte", "must be non-negative, got %g", cp.CostNsPerByte)
		}
		if !cp.Enabled && cp.CostNsPerByte != 0 {
			return errf("compression.cost_ns_per_byte", "set, but compression.enabled is false")
		}
	}
	if len(s.Compressibility) > 0 {
		if s.Compression == nil || !s.Compression.Enabled {
			return errf("compressibility", "set, but compression is not enabled")
		}
		// Deterministic error selection: report the lexically first bad key.
		keys := make([]string, 0, len(s.Compressibility))
		for k := range s.Compressibility {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, ok := memsim.ParseKind(k); !ok {
				return errf(fmt.Sprintf("compressibility[%q]", k),
					"unknown region class (want one of %s)", strings.Join(memsim.KindNames(), ", "))
			}
			r := s.Compressibility[k]
			if r <= 0 || r > 1 {
				return errf(fmt.Sprintf("compressibility[%q]", k), "ratio must be in (0, 1], got %g", r)
			}
		}
	}
	return nil
}

// Config is the compiled runtime storage model the coordinator consumes.
type Config struct {
	// PFSBandwidth is the contended aggregate parallel-filesystem
	// bandwidth (<= 0 models free I/O).
	PFSBandwidth float64
	// Staging enables the burst-buffer tier; BBBandwidth and BBCapacity
	// parameterise it.
	Staging     bool
	BBBandwidth float64
	BBCapacity  uint64
	// Compression enables per-page delta-payload compression at
	// CompressCost ns of kernel CPU per input byte, shrinking each page
	// by the Ratios entry for its region class.
	Compression  bool
	CompressCost float64
	Ratios       map[memsim.Kind]float64
	// LegacyStraggler bypasses the whole pipeline and reinstates the
	// retired §3.4 flat-bandwidth write with the dialled-in
	// StragglerP/StragglerMax model, byte-identical to pre-pipeline
	// reports.
	LegacyStraggler bool
}

// defaultRatios is the per-region-class compressibility model: code and
// rarely-rewritten data compress well, hot heap state poorly.
var defaultRatios = map[memsim.Kind]float64{
	memsim.KindText:  0.10,
	memsim.KindData:  0.40,
	memsim.KindHeap:  0.85,
	memsim.KindStack: 0.50,
}

// fallbackRatio covers region classes neither the spec nor defaultRatios
// name.
const fallbackRatio = 0.70

// DefaultConfig returns the compiled default model: direct writes to a
// contended PFS at DefaultPFSBandwidth, no staging, no compression.
func DefaultConfig() Config {
	return Config{PFSBandwidth: DefaultPFSBandwidth}
}

// Compile resolves the spec (nil = all defaults) into a runtime Config.
func Compile(s *Spec) (Config, error) {
	cfg := DefaultConfig()
	if s == nil {
		return cfg, nil
	}
	if err := s.Validate(); err != nil {
		return Config{}, err
	}
	if s.PFS != nil {
		cfg.PFSBandwidth = s.PFS.AggregateBandwidth
	}
	if bb := s.BurstBuffer; bb != nil {
		cfg.Staging = true
		cfg.BBBandwidth = bb.Bandwidth
		cfg.BBCapacity = bb.Capacity
	}
	if cp := s.Compression; cp != nil && cp.Enabled {
		cfg.Compression = true
		cfg.CompressCost = cp.CostNsPerByte
		if cfg.CompressCost == 0 {
			cfg.CompressCost = DefaultCompressCost
		}
		cfg.Ratios = make(map[memsim.Kind]float64, len(s.Compressibility))
		for name, r := range s.Compressibility {
			k, _ := memsim.ParseKind(name)
			cfg.Ratios[k] = r
		}
	}
	return cfg, nil
}

// Ratio returns the compressed-size ratio for one region class.
func (c *Config) Ratio(kind memsim.Kind) float64 {
	if r, ok := c.Ratios[kind]; ok {
		return r
	}
	if r, ok := defaultRatios[kind]; ok {
		return r
	}
	return fallbackRatio
}

// PageStored returns the stored size of one delta page after compression:
// an all-zero page collapses to a run-length header, anything else shrinks
// by its region class's ratio (never below one byte, never above raw).
func (c *Config) PageStored(kind memsim.Kind, data []byte) uint64 {
	raw := uint64(len(data))
	if raw == 0 {
		return 0
	}
	zero := true
	for _, b := range data {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		if raw < zeroPageStored {
			return raw
		}
		return zeroPageStored
	}
	stored := uint64(float64(raw)*c.Ratio(kind) + 0.5)
	if stored < 1 {
		stored = 1
	}
	if stored > raw {
		stored = raw
	}
	return stored
}

// CompressDelta runs the page compressor over a delta payload, returning
// the stored (compressed) page bytes and the raw page bytes consumed.
// Iteration is regions by ascending address, pages by ascending index —
// the delta's construction order — so the result is deterministic.
func (c *Config) CompressDelta(d *memsim.Delta) (stored, raw uint64) {
	for _, rd := range d.Regions {
		for _, p := range rd.Pages {
			stored += c.PageStored(rd.Kind, p.Data)
			raw += uint64(len(p.Data))
		}
	}
	return stored, raw
}

// PFS is the contended shared-filesystem server: a single FIFO pipe of
// aggregate bandwidth. Requests are served in submission order; a request
// arriving while the pipe is busy waits for the in-flight transfers to
// finish, which is where checkpoint stragglers now come from.
type PFS struct {
	bandwidth float64
	busyUntil vtime.Time
}

// NewPFS returns a server of the given aggregate bandwidth (<= 0 models
// free I/O: every write completes at its arrival time).
func NewPFS(bandwidth float64) PFS {
	return PFS{bandwidth: bandwidth}
}

// Write queues one transfer arriving at arrive, returning its completion
// time and how long it waited behind earlier transfers.
func (p *PFS) Write(arrive vtime.Time, bytes uint64) (done vtime.Time, wait vtime.Duration) {
	if p.bandwidth <= 0 {
		return arrive, 0
	}
	start := arrive
	if p.busyUntil > start {
		start = p.busyUntil
		wait = start.Sub(arrive)
	}
	done = start.Add(vtime.DurationOf(float64(bytes) / p.bandwidth))
	p.busyUntil = done
	return done, wait
}

// Reset clears the queue state — the simulated filesystem is idle again.
// Restart uses it: transfers of the abandoned timeline die with it.
func (p *PFS) Reset() { p.busyUntil = 0 }

// profiles are the built-in named configurations for the -storage flag.
var profiles = map[string]Spec{
	"direct": {
		PFS: &PFSSpec{AggregateBandwidth: DefaultPFSBandwidth},
	},
	"staged": {
		PFS:         &PFSSpec{AggregateBandwidth: DefaultPFSBandwidth},
		BurstBuffer: &BurstBufferSpec{Bandwidth: DefaultBBBandwidth, Capacity: DefaultBBCapacity},
	},
	"staged-compressed": {
		PFS:         &PFSSpec{AggregateBandwidth: DefaultPFSBandwidth},
		BurstBuffer: &BurstBufferSpec{Bandwidth: DefaultBBBandwidth, Capacity: DefaultBBCapacity},
		Compression: &CompressionSpec{Enabled: true, CostNsPerByte: DefaultCompressCost},
	},
}

// Profile returns a deep copy of the named built-in spec, safe for the
// caller to overlay flag values onto.
func Profile(name string) (*Spec, bool) {
	p, ok := profiles[name]
	if !ok {
		return nil, false
	}
	s := &Spec{}
	if p.PFS != nil {
		v := *p.PFS
		s.PFS = &v
	}
	if p.BurstBuffer != nil {
		v := *p.BurstBuffer
		s.BurstBuffer = &v
	}
	if p.Compression != nil {
		v := *p.Compression
		s.Compression = &v
	}
	for k, r := range p.Compressibility {
		if s.Compressibility == nil {
			s.Compressibility = make(map[string]float64, len(p.Compressibility))
		}
		s.Compressibility[k] = r
	}
	return s, true
}

// Load resolves a -storage argument: a built-in profile name, or the
// path of a standalone JSON storage document.
func Load(name string) (*Spec, error) {
	if s, ok := Profile(name); ok {
		return s, nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("storage: %q is neither a built-in profile (%s) nor a readable file: %v",
			name, strings.Join(ProfileNames(), ", "), err)
	}
	return Parse(data)
}

// ProfileNames returns the built-in profile names, sorted, for error
// messages and usage text.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
