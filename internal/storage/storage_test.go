package storage

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mana/internal/memsim"
	"mana/internal/vtime"
)

// TestParseValidSpec round-trips a full storage document through
// Parse → Compile.
func TestParseValidSpec(t *testing.T) {
	doc := `{
		"burst_buffer": {"bandwidth": 8e9, "capacity": 1048576},
		"pfs": {"aggregate_bandwidth": 4e9},
		"compression": {"enabled": true, "cost_ns_per_byte": 0.5},
		"compressibility": {"heap": 0.9, "text": 0.05}
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cfg, err := Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !cfg.Staging || cfg.BBBandwidth != 8e9 || cfg.BBCapacity != 1<<20 {
		t.Errorf("burst buffer compiled wrong: %+v", cfg)
	}
	if cfg.PFSBandwidth != 4e9 {
		t.Errorf("PFSBandwidth = %g, want 4e9", cfg.PFSBandwidth)
	}
	if !cfg.Compression || cfg.CompressCost != 0.5 {
		t.Errorf("compression compiled wrong: %+v", cfg)
	}
	if cfg.Ratio(memsim.KindHeap) != 0.9 || cfg.Ratio(memsim.KindText) != 0.05 {
		t.Errorf("spec ratios not applied: heap=%g text=%g", cfg.Ratio(memsim.KindHeap), cfg.Ratio(memsim.KindText))
	}
	// Classes the spec does not name fall through to the model defaults,
	// then to the fallback ratio.
	if cfg.Ratio(memsim.KindData) != defaultRatios[memsim.KindData] {
		t.Errorf("data ratio = %g, want model default %g", cfg.Ratio(memsim.KindData), defaultRatios[memsim.KindData])
	}
	if cfg.Ratio(memsim.KindPinned) != fallbackRatio {
		t.Errorf("pinned ratio = %g, want fallback %g", cfg.Ratio(memsim.KindPinned), fallbackRatio)
	}
}

// TestValidateRejections pins the named-field error style: every bad
// document names the exact offending field.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"unknown field", `{"surprise": 1}`, "surprise"},
		{"trailing data", `{} {}`, "trailing data"},
		{"negative pfs bandwidth", `{"pfs": {"aggregate_bandwidth": -1}}`,
			"storage: pfs.aggregate_bandwidth: must be non-negative"},
		{"negative bb bandwidth", `{"burst_buffer": {"bandwidth": -2, "capacity": 1}}`,
			"storage: burst_buffer.bandwidth: must be non-negative"},
		{"zero bb capacity", `{"burst_buffer": {"bandwidth": 1e9, "capacity": 0}}`,
			"storage: burst_buffer.capacity: must be positive, got 0"},
		{"negative compress cost", `{"compression": {"enabled": true, "cost_ns_per_byte": -0.1}}`,
			"storage: compression.cost_ns_per_byte: must be non-negative"},
		{"cost without enabled", `{"compression": {"enabled": false, "cost_ns_per_byte": 0.3}}`,
			"storage: compression.cost_ns_per_byte: set, but compression.enabled is false"},
		{"compressibility without compression", `{"compressibility": {"heap": 0.5}}`,
			"storage: compressibility: set, but compression is not enabled"},
		{"unknown region class", `{"compression": {"enabled": true}, "compressibility": {"quantum-foam": 0.5}}`,
			`storage: compressibility["quantum-foam"]: unknown region class`},
		{"ratio out of range", `{"compression": {"enabled": true}, "compressibility": {"heap": 1.5}}`,
			`storage: compressibility["heap"]: ratio must be in (0, 1], got 1.5`},
		{"zero ratio", `{"compression": {"enabled": true}, "compressibility": {"heap": 0}}`,
			`storage: compressibility["heap"]: ratio must be in (0, 1], got 0`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

// TestValidateNamedGraftsPath checks the errf hook an enclosing scenario
// spec uses to prefix its own path.
func TestValidateNamedGraftsPath(t *testing.T) {
	s := Spec{BurstBuffer: &BurstBufferSpec{Capacity: 0}}
	var gotPath string
	err := s.ValidateNamed(func(path, format string, args ...any) error {
		gotPath = path
		return os.ErrInvalid
	})
	if err == nil || gotPath != "burst_buffer.capacity" {
		t.Errorf("path = %q (err %v), want burst_buffer.capacity", gotPath, err)
	}
}

// TestCompileNilIsDefault pins the default model: a nil spec compiles to
// direct writes against the default contended PFS.
func TestCompileNilIsDefault(t *testing.T) {
	cfg, err := Compile(nil)
	if err != nil {
		t.Fatalf("Compile(nil): %v", err)
	}
	if cfg.PFSBandwidth != DefaultPFSBandwidth || cfg.Staging || cfg.Compression || cfg.LegacyStraggler {
		t.Errorf("default config has unexpected shape: %+v", cfg)
	}
}

// TestCompileDefaultCompressCost checks that an enabled compression block
// with no cost takes the model default.
func TestCompileDefaultCompressCost(t *testing.T) {
	cfg, err := Compile(&Spec{Compression: &CompressionSpec{Enabled: true}})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if cfg.CompressCost != DefaultCompressCost {
		t.Errorf("CompressCost = %g, want default %g", cfg.CompressCost, DefaultCompressCost)
	}
}

// TestPageStored pins the per-page model: zero pages collapse to the
// run-length header, others shrink by ratio with [1, raw] clamping.
func TestPageStored(t *testing.T) {
	cfg, err := Compile(&Spec{
		Compression:     &CompressionSpec{Enabled: true},
		Compressibility: map[string]float64{"text": 0.001, "heap": 1},
	})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	page := make([]byte, 4096)
	if got := cfg.PageStored(memsim.KindHeap, page); got != zeroPageStored {
		t.Errorf("zero page stored %d bytes, want %d", got, zeroPageStored)
	}
	if got := cfg.PageStored(memsim.KindHeap, page[:8]); got != 8 {
		t.Errorf("tiny zero page stored %d bytes, want its raw 8", got)
	}
	page[100] = 1
	// Ratio 1 stores raw bytes; the clamp keeps stored <= raw.
	if got := cfg.PageStored(memsim.KindHeap, page); got != 4096 {
		t.Errorf("incompressible page stored %d bytes, want 4096", got)
	}
	// Ratio 0.001 rounds to 4 bytes for a 4 KiB page.
	if got := cfg.PageStored(memsim.KindText, page); got != 4 {
		t.Errorf("text page stored %d bytes, want 4", got)
	}
	if got := cfg.PageStored(memsim.KindText, page[100:101]); got != 1 {
		t.Errorf("one-byte page stored %d bytes, want the 1-byte floor", got)
	}
	if got := cfg.PageStored(memsim.KindText, nil); got != 0 {
		t.Errorf("empty page stored %d bytes, want 0", got)
	}
}

// TestPFSContention pins the FIFO queue model: back-to-back arrivals
// serialise, and the second writer's wait is exactly the first one's
// residual service time.
func TestPFSContention(t *testing.T) {
	p := NewPFS(1e9) // 1 GB/s => 1 byte/ns
	done, wait := p.Write(0, 1000)
	if wait != 0 || done != vtime.Time(1000) {
		t.Errorf("first write done@%v wait=%v, want done@1µs wait=0", done, wait)
	}
	done, wait = p.Write(0, 500)
	if wait != vtime.Duration(1000) || done != vtime.Time(1500) {
		t.Errorf("queued write done@%v wait=%v, want done@1.5µs wait=1µs", done, wait)
	}
	// An arrival after the queue clears sees no wait.
	done, wait = p.Write(vtime.Time(2000), 100)
	if wait != 0 || done != vtime.Time(2100) {
		t.Errorf("idle write done@%v wait=%v, want done@2.1µs wait=0", done, wait)
	}
	p.Reset()
	if _, wait = p.Write(0, 1); wait != 0 {
		t.Errorf("post-Reset write waited %v, want 0", wait)
	}
	free := NewPFS(0)
	if done, wait = free.Write(vtime.Time(7), 1<<30); done != vtime.Time(7) || wait != 0 {
		t.Errorf("free PFS done@%v wait=%v, want instantaneous", done, wait)
	}
}

// TestProfilesAreIsolated checks every built-in profile compiles and that
// Profile hands out deep copies — overlaying flags on one run must not
// leak into the next.
func TestProfilesAreIsolated(t *testing.T) {
	for _, name := range ProfileNames() {
		s, ok := Profile(name)
		if !ok {
			t.Fatalf("Profile(%q) missing", name)
		}
		if _, err := Compile(s); err != nil {
			t.Errorf("profile %q does not compile: %v", name, err)
		}
	}
	a, _ := Profile("staged")
	a.PFS.AggregateBandwidth = 1
	a.BurstBuffer.Capacity = 1
	b, _ := Profile("staged")
	if b.PFS.AggregateBandwidth == 1 || b.BurstBuffer.Capacity == 1 {
		t.Error("Profile returned a shared spec: mutations leaked between copies")
	}
	if _, ok := Profile("quantum"); ok {
		t.Error("Profile resolved an unknown name")
	}
}

// TestLoadResolvesProfileAndFile covers the -storage argument surface.
func TestLoadResolvesProfileAndFile(t *testing.T) {
	if s, err := Load("staged-compressed"); err != nil || s.Compression == nil || !s.Compression.Enabled {
		t.Errorf("Load(staged-compressed) = %+v, %v", s, err)
	}
	path := filepath.Join(t.TempDir(), "st.json")
	if err := os.WriteFile(path, []byte(`{"pfs": {"aggregate_bandwidth": 2e9}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil || s.PFS.AggregateBandwidth != 2e9 {
		t.Errorf("Load(file) = %+v, %v", s, err)
	}
	_, err = Load("no-such-profile")
	if err == nil || !strings.Contains(err.Error(), "neither a built-in profile") {
		t.Errorf("Load(bad) error = %v, want profile-listing error", err)
	}
}
