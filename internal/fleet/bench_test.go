package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mana/internal/coordinator"
	"mana/internal/scenario"
	"mana/internal/virtid"
	"mana/internal/vtime"
)

// benchJob is the fleet benchmark workload: the default spec at a size
// where one run is a few milliseconds of real scheduler work, no
// injected failure so iteration time stays uniform.
func benchJob(b *testing.B) (*Engine, coordinator.Config) {
	b.Helper()
	e := NewEngine()
	spec, err := e.LoadSpec("default")
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := e.Config(Job{
		Spec:   spec,
		Ranks:  256,
		Steps:  10,
		Seed:   42,
		Virtid: virtid.ImplSharded,
		CkptAt: vtime.Time(time.Millisecond),
	})
	if err != nil {
		b.Fatal(err)
	}
	return e, cfg
}

// BenchmarkFleetThroughput measures the fleet engine end to end:
// complete simulations per second at pool widths 1, 4 and 8 (runs/sec,
// higher is better — benchjson gates it that way), plus allocations per
// run warm (shared engine, recycled scratch) versus cold (fresh engine
// every run), which prices what the pooling buys.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e, cfg := benchJob(b)
			for i := 0; i < workers+1; i++ { // warm the scratch pool and compile cache
				if _, err := e.Run(cfg, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			idx := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range idx {
						if _, err := e.Run(cfg, nil); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			for i := 0; i < b.N; i++ {
				idx <- i
			}
			close(idx)
			wg.Wait()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "runs/sec")
		})
	}

	b.Run("allocs=warm", func(b *testing.B) {
		e, cfg := benchJob(b)
		if _, err := e.Run(cfg, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("allocs=cold", func(b *testing.B) {
		spec, err := scenario.Load("default")
		if err != nil {
			b.Fatal(err)
		}
		job := Job{
			Spec:   spec,
			Ranks:  256,
			Steps:  10,
			Seed:   42,
			Virtid: virtid.ImplSharded,
			CkptAt: vtime.Time(time.Millisecond),
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh engine per run: every allocation and the spec
			// compilation happen cold, the baseline the warm path beats.
			if _, err := NewEngine().RunJob(job, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
