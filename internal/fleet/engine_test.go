package fleet

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"mana/internal/coordinator"
	"mana/internal/scenario"
	"mana/internal/virtid"
	"mana/internal/vtime"
)

// testJob is the default-shaped job the fleet tests run: the same
// parameters cmd/manasim's defaults select, including the injected
// failure and restart, so the pooled paths cross the full protocol.
func testJob(spec *scenario.Spec, incremental bool) Job {
	return Job{
		Spec:        spec,
		Ranks:       8,
		Steps:       12,
		Seed:        42,
		Virtid:      virtid.ImplSharded,
		CkptAt:      vtime.Time(5 * time.Millisecond),
		FailAfter:   2,
		Incremental: incremental,
		FullEvery:   4,
	}
}

// standalone runs a job's config cold — fresh coordinator, no scratch,
// no engine — and returns the exact bytes a standalone manasim run
// prints. The spec is loaded and compiled independently of any engine
// so the reference shares nothing with the code under test.
func standalone(t *testing.T, name string, incremental bool) string {
	t.Helper()
	spec, err := scenario.Load(name)
	if err != nil {
		t.Fatalf("load %q: %v", name, err)
	}
	j := testJob(spec, incremental)
	progs, err := spec.Compile(scenario.Params{Ranks: j.Ranks, Steps: j.Steps, Seed: j.Seed, Group: j.Group})
	if err != nil {
		t.Fatalf("compile %q: %v", name, err)
	}
	cfg := coordinator.BaseConfig()
	cfg.Ranks = j.Ranks
	cfg.Seed = j.Seed
	cfg.Incremental = j.Incremental
	cfg.FullImageEvery = j.FullEvery
	cfg.Programs = progs
	cfg.Triggers = Triggers(spec.Checkpoints, j.CkptAt)
	cfg.FailAtCheckpoint = j.FailAfter
	if spec.Islands > 0 {
		cfg.Islands = spec.Islands
	}

	var out bytes.Buffer
	c := coordinator.New(cfg)
	outcome, err := c.Run()
	if err != nil {
		t.Fatalf("standalone %q: %v", name, err)
	}
	for outcome == coordinator.Failed {
		fmt.Fprintf(&out, "injected failure after checkpoint #%d; restarting from last image\n",
			len(c.Records()))
		if err := c.Restart(); err != nil {
			t.Fatalf("standalone %q restart: %v", name, err)
		}
		outcome, err = c.Run()
		if err != nil {
			t.Fatalf("standalone %q post-restart: %v", name, err)
		}
	}
	c.WriteReport(&out)
	return out.String()
}

// TestFleetConcurrentByteIdentical is the isolation statement for the
// whole spec library: every library spec — checkpoint, failure and
// restart cells included, plain and incremental — run concurrently on
// one shared engine must print byte for byte what a cold standalone
// run prints, across repeated rounds so warm-scratch runs are covered
// too. Run under -race this is also the data-race audit of the pooled
// state.
func TestFleetConcurrentByteIdentical(t *testing.T) {
	type cell struct {
		name        string
		incremental bool
		want        string
	}
	var cells []cell
	for _, name := range scenario.Names() {
		for _, incr := range []bool{false, true} {
			cells = append(cells, cell{name, incr, standalone(t, name, incr)})
		}
	}

	e := NewEngine()
	const rounds = 3 // round 1 exercises cold pools, later rounds warm ones
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make([]error, len(cells))
		for i := range cells {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c := cells[i]
				spec, err := e.LoadSpec(c.name)
				if err != nil {
					errs[i] = err
					return
				}
				var buf bytes.Buffer
				if _, err := e.RunJob(testJob(spec, c.incremental), &buf); err != nil {
					errs[i] = fmt.Errorf("%s/incr=%v: %w", c.name, c.incremental, err)
					return
				}
				if got := buf.String(); got != c.want {
					errs[i] = fmt.Errorf("%s/incr=%v (round %d): fleet output diverges from standalone\n--- fleet\n%s\n--- standalone\n%s",
						c.name, c.incremental, round, got, c.want)
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	// Every (spec, params) pair compiled exactly once across all rounds
	// and workers — the incremental variants share their spec's key.
	if got, want := e.Compiles(), uint64(len(scenario.Names())); got != want {
		t.Errorf("Compiles() = %d, want %d (one per library spec)", got, want)
	}
}

// TestFleetWarmPoolAllocsLess pins the perf claim behind the pooling: a
// warm run on a used engine must allocate measurably less than the cold
// first run — the recycled queues, slices, rendezvous instances and
// memsim buffers are real savings, not noise.
func TestFleetWarmPoolAllocsLess(t *testing.T) {
	spec, err := scenario.Load("default")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	job := testJob(spec, false)
	// TotalAlloc is monotonic, so no GC fencing is needed — and an
	// explicit GC here could evict the engine's sync.Pool scratch and
	// turn a warm run cold.
	measure := func() uint64 {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := e.RunJob(job, nil); err != nil {
			t.Fatalf("RunJob: %v", err)
		}
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}
	cold := measure()
	// Best of three guards against an automatic GC dropping the pooled
	// scratch between two particular runs.
	warm := measure()
	for i := 0; i < 2; i++ {
		if w := measure(); w < warm {
			warm = w
		}
	}
	t.Logf("cold run allocated %d bytes, warm run %d bytes (%.2fx)", cold, warm, float64(warm)/float64(cold))
	if warm >= cold*8/10 {
		t.Errorf("warm run allocated %d bytes, want < 80%% of the cold run's %d", warm, cold)
	}
}

// TestFleetThroughputScales mirrors the scheduler's TestParallelSpeedup
// at the run level: with 4 pool workers a batch of independent runs
// must finish at least twice as fast as serially, on hosts with the
// CPUs to show it.
func TestFleetThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet throughput batch skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful 4-worker speedup, have %d", runtime.NumCPU())
	}
	spec, err := scenario.Load("default")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	job := testJob(spec, false)
	job.Ranks = 512
	job.Steps = 10
	job.FailAfter = 0
	cfg, err := e.Config(job)
	if err != nil {
		t.Fatal(err)
	}
	batch := func(workers, runs int) time.Duration {
		idx := make(chan int)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range idx {
					if _, err := e.Run(cfg, nil); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		for i := 0; i < runs; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
		return time.Since(start)
	}
	batch(4, 8) // warm the compile cache and scratch pool before timing
	serial := batch(1, 16)
	parallel := batch(4, 16)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial=%v parallel(4 workers)=%v speedup=%.2fx", serial, parallel, speedup)
	if speedup < 2.0 {
		t.Errorf("4-worker fleet speedup = %.2fx, want >= 2x", speedup)
	}
}

// TestSweepAggregateStableAcrossPoolWidths runs one grid at pool widths
// 1 and 4: every cell — hashes, byte counts, metrics — and the
// deterministic totals must be identical; only wall-clock fields may
// differ.
func TestSweepAggregateStableAcrossPoolWidths(t *testing.T) {
	grid := Sweep{
		Specs:       []string{"default", "overlap"},
		Ranks:       []int{4, 8},
		CkptAt:      []time.Duration{time.Millisecond},
		Virtids:     []string{"sharded", "mutex"},
		Incremental: []bool{false, true},
		Base: Job{
			Steps:     10,
			Seed:      42,
			FailAfter: 2,
			FullEvery: 4,
			Workers:   1,
		},
	}
	run := func(pool int) *SweepResult {
		g := grid
		g.PoolWorkers = pool
		res, err := NewEngine().RunSweep(g)
		if err != nil {
			t.Fatalf("RunSweep(pool=%d): %v", pool, err)
		}
		return res
	}
	serial := run(1)
	concurrent := run(4)

	if len(serial.Cells) != 16 || len(concurrent.Cells) != 16 {
		t.Fatalf("grid sizes: serial=%d concurrent=%d, want 16", len(serial.Cells), len(concurrent.Cells))
	}
	for i := range serial.Cells {
		a, b := serial.Cells[i], concurrent.Cells[i]
		a.WallMs, b.WallMs = 0, 0
		if a != b {
			t.Errorf("cell %d differs across pool widths:\nserial:     %+v\nconcurrent: %+v", i, a, b)
		}
		if a.ReportBytes == 0 || a.ReportFNV64 == "" {
			t.Errorf("cell %d carries no report fingerprint: %+v", i, a)
		}
		if a.Restarts == 0 {
			t.Errorf("cell %d took no restart despite fail-after=2: %+v", i, a)
		}
	}
	// 2 specs x 2 rank counts = 4 compile keys, each compiled once no
	// matter how many cells or workers shared it.
	if serial.Totals.SpecCompiles != 4 || concurrent.Totals.SpecCompiles != 4 {
		t.Errorf("SpecCompiles: serial=%d concurrent=%d, want 4 each",
			serial.Totals.SpecCompiles, concurrent.Totals.SpecCompiles)
	}
	if serial.Totals.Runs != 16 || concurrent.Totals.Runs != 16 {
		t.Errorf("Totals.Runs: serial=%d concurrent=%d, want 16", serial.Totals.Runs, concurrent.Totals.Runs)
	}
	if concurrent.Totals.RunsPerSec <= 0 {
		t.Errorf("Totals.RunsPerSec = %v, want > 0", concurrent.Totals.RunsPerSec)
	}
}

// TestSweepRejectsEmptyDimensions names each missing dimension.
func TestSweepRejectsEmptyDimensions(t *testing.T) {
	full := Sweep{
		Specs:       []string{"default"},
		Ranks:       []int{4},
		CkptAt:      []time.Duration{time.Millisecond},
		Virtids:     []string{"sharded"},
		Incremental: []bool{false},
	}
	for name, mut := range map[string]func(*Sweep){
		"specs":       func(s *Sweep) { s.Specs = nil },
		"ranks":       func(s *Sweep) { s.Ranks = nil },
		"ckpt-at":     func(s *Sweep) { s.CkptAt = nil },
		"virtid":      func(s *Sweep) { s.Virtids = nil },
		"incremental": func(s *Sweep) { s.Incremental = nil },
	} {
		s := full
		mut(&s)
		if _, err := NewEngine().RunSweep(s); err == nil {
			t.Errorf("RunSweep accepted a sweep with no %s values", name)
		}
	}
	if _, err := NewEngine().RunSweep(Sweep{
		Specs:       []string{"no-such-spec"},
		Ranks:       []int{4},
		CkptAt:      []time.Duration{time.Millisecond},
		Virtids:     []string{"sharded"},
		Incremental: []bool{false},
	}); err == nil {
		t.Error("RunSweep accepted an unknown spec")
	}
}
