package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mana/internal/coordinator"
	"mana/internal/faultplan"
	"mana/internal/scenario"
	"mana/internal/vtime"
)

// randomFaultPlan draws a valid 1–3 fault plan: every anchor, kind and
// parameter range the schema allows, with N values small enough to have
// a chance of landing inside a short job's three-checkpoint window.
func randomFaultPlan(rng *rand.Rand) *faultplan.Plan {
	n := 1 + rng.Intn(3)
	specs := make([]faultplan.Spec, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			specs = append(specs, faultplan.Spec{
				At:    "checkpoint-commit",
				N:     1 + rng.Intn(3),
				Kind:  "rank-crash",
				Delay: fmt.Sprintf("%dus", rng.Intn(500)),
			})
		case 1:
			specs = append(specs, faultplan.Spec{
				At:    "drain-start",
				N:     1 + rng.Intn(3),
				Kind:  "rank-crash",
				Delay: fmt.Sprintf("%dus", rng.Intn(100)),
			})
		case 2:
			f := faultplan.Spec{At: "image-write", N: 1 + rng.Intn(3), Rank: rng.Intn(8)}
			if rng.Intn(2) == 0 {
				f.Kind = "torn-write"
				f.Pages = rng.Intn(3) * 16 // 0 = half the payload
			} else {
				f.Kind = "page-corruption"
				f.Pages = 1 + rng.Intn(8)
			}
			specs = append(specs, f)
		case 3:
			specs = append(specs, faultplan.Spec{
				At:   "virtual-time",
				Time: fmt.Sprintf("%dus", 1+rng.Intn(9000)),
				Kind: "rank-crash",
			})
		default:
			specs = append(specs, faultplan.Spec{
				At:   "restart",
				N:    1 + rng.Intn(2),
				Kind: "rank-crash",
			})
		}
	}
	return &faultplan.Plan{Faults: specs, MaxRestarts: 8}
}

// recoverableOrNamed reports whether err is one of the named
// unrecoverable outcomes a random plan may legitimately hit: restart
// budget exhausted, every retained generation unverifiable, or a crash
// before anything committed.
func recoverableOrNamed(err error) bool {
	return errors.Is(err, ErrRestartsExhausted) ||
		errors.Is(err, coordinator.ErrNoVerifiableGeneration) ||
		strings.Contains(err.Error(), "no committed checkpoint to restart from")
}

// TestRandomFaultPlansPreserveFinalState is the recovery contract as a
// property: for ~200 random valid fault plans over the whole spec
// library, every run that recovers must land on the exact final
// application fingerprint of the fault-free run — at islands=8,
// workers=4, so the parallel scheduler is under the same contract.
// Plans that are legitimately unrecoverable must fail with a named
// error, never a wrong answer.
func TestRandomFaultPlansPreserveFinalState(t *testing.T) {
	specs := scenario.Names()
	if len(specs) < 6 {
		t.Fatalf("spec library has %d specs, want at least 6", len(specs))
	}
	eng := NewEngine()
	job := func(name string) (Job, error) {
		spec, err := eng.LoadSpec(name)
		if err != nil {
			return Job{}, err
		}
		return Job{
			Spec:    spec,
			Ranks:   8,
			Steps:   10,
			Seed:    42,
			CkptAt:  vtime.Time(1 * vtime.Millisecond),
			Islands: 8,
			Workers: 4,
		}, nil
	}
	baseline := make(map[string]uint64, len(specs))
	for _, name := range specs {
		j, err := job(name)
		if err != nil {
			t.Fatalf("spec %s: %v", name, err)
		}
		res, err := eng.RunJob(j, nil)
		if err != nil {
			t.Fatalf("fault-free run of %s: %v", name, err)
		}
		baseline[name] = res.FinalFingerprint
	}

	rng := rand.New(rand.NewSource(1))
	const trials = 200
	var recovered, named int
	for i := 0; i < trials; i++ {
		name := specs[rng.Intn(len(specs))]
		plan := randomFaultPlan(rng)
		j, err := job(name)
		if err != nil {
			t.Fatalf("spec %s: %v", name, err)
		}
		j.Faults = plan
		res, err := eng.RunJob(j, nil)
		if err != nil {
			if !recoverableOrNamed(err) {
				t.Fatalf("trial %d (spec %s, plan %+v): unexpected error: %v", i, name, plan.Faults, err)
			}
			named++
			continue
		}
		recovered++
		if res.FinalFingerprint != baseline[name] {
			t.Errorf("trial %d (spec %s, plan %+v): final fingerprint %016x differs from fault-free %016x",
				i, name, plan.Faults, res.FinalFingerprint, baseline[name])
		}
	}
	// The property is vacuous if nothing recovers; with these N ranges
	// most plans land inside the checkpoint window and recover.
	if recovered < trials/2 {
		t.Errorf("only %d/%d trials recovered (%d failed with named errors) — fault generation drifted out of the useful range",
			recovered, trials, named)
	}
	t.Logf("%d/%d recovered bit-identically, %d unrecoverable with named errors", recovered, trials, named)
}
