package fleet

import (
	"bytes"
	"math/rand"
	"testing"

	"mana/internal/scenario"
	"mana/internal/storage"
	"mana/internal/vtime"
)

// randomStorageSpec draws a valid storage configuration from across the
// schema: direct or staged, free or contended tiers, tiny buffers that
// spill most of a checkpoint, and (on incremental jobs only, where it
// has an effect) compression with random cost and per-class ratios.
func randomStorageSpec(rng *rand.Rand, incremental bool) *storage.Spec {
	if rng.Intn(4) == 0 {
		return nil // the default direct-to-PFS model
	}
	s := &storage.Spec{}
	if rng.Intn(2) == 0 {
		bws := []float64{0, 1e9, 8e9, 16e9, 64e9}
		s.PFS = &storage.PFSSpec{AggregateBandwidth: bws[rng.Intn(len(bws))]}
	}
	if rng.Intn(3) > 0 {
		bws := []float64{0, 2e9, 8e9}
		caps := []uint64{1 << 20, 16 << 20, 256 << 20, 1 << 30}
		s.BurstBuffer = &storage.BurstBufferSpec{
			Bandwidth: bws[rng.Intn(len(bws))],
			Capacity:  caps[rng.Intn(len(caps))],
		}
	}
	if incremental && rng.Intn(2) == 0 {
		s.Compression = &storage.CompressionSpec{
			Enabled:       true,
			CostNsPerByte: float64(rng.Intn(10)) / 10,
		}
		if rng.Intn(2) == 0 {
			s.Compressibility = map[string]float64{
				"heap": 0.05 + 0.9*rng.Float64(),
				"data": 0.05 + 0.9*rng.Float64(),
			}
		}
	}
	return s
}

// TestRandomStorageConfigsAreWorkerCountInvariant is the pipeline's
// determinism contract as a property: for ~60 random storage
// configurations over the spec library, the full report — stage/drain
// accounting, PFS waits, durable times, compression savings — must be
// byte-identical between the serial scheduler and two parallel shapes.
// Drain completions ride the global lane, so no island partition or
// worker count may reorder them.
func TestRandomStorageConfigsAreWorkerCountInvariant(t *testing.T) {
	specs := scenario.Names()
	if len(specs) == 0 {
		t.Fatal("spec library is empty")
	}
	eng := NewEngine()
	rng := rand.New(rand.NewSource(7))
	const trials = 60
	for i := 0; i < trials; i++ {
		name := specs[rng.Intn(len(specs))]
		spec, err := eng.LoadSpec(name)
		if err != nil {
			t.Fatalf("trial %d: spec %s: %v", i, name, err)
		}
		incr := rng.Intn(2) == 0
		st := randomStorageSpec(rng, incr)
		if st != nil {
			if err := st.Validate(); err != nil {
				t.Fatalf("trial %d: generated an invalid storage spec %+v: %v", i, st, err)
			}
		}
		base := Job{
			Spec:        spec,
			Ranks:       8,
			Steps:       10,
			Seed:        42,
			CkptAt:      vtime.Time(1 * vtime.Millisecond),
			Incremental: incr,
			Storage:     st,
		}
		var want string
		for _, shape := range []struct{ islands, workers int }{{0, 1}, {3, 2}, {8, 4}} {
			j := base
			j.Islands = shape.islands
			j.Workers = shape.workers
			var buf bytes.Buffer
			if _, err := eng.RunJob(j, &buf); err != nil {
				t.Fatalf("trial %d (spec %s, storage %+v, islands %d): %v", i, name, st, shape.islands, err)
			}
			if shape.islands == 0 {
				want = buf.String()
				continue
			}
			if buf.String() != want {
				t.Errorf("trial %d (spec %s, storage %+v): islands=%d workers=%d report differs from serial:\n--- parallel\n%s\n--- serial\n%s",
					i, name, st, shape.islands, shape.workers, buf.String(), want)
			}
		}
	}
}
