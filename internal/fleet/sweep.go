package fleet

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"mana/internal/coordinator"
	"mana/internal/storage"
	"mana/internal/virtid"
	"mana/internal/vtime"
)

// Sweep describes a grid of runs: the cross product of the dimension
// slices, each cell a full simulation. Base supplies every parameter
// the grid does not vary (steps, seed, kernel, failure policy, islands,
// workers-per-run); its Spec, Ranks, Virtid, Incremental and CkptAt
// fields are ignored — the grid sets them per cell.
type Sweep struct {
	// Specs are library names or JSON file paths, resolved through the
	// engine's spec cache.
	Specs []string
	Ranks []int
	// CkptAt values anchor each cell's checkpoint policy.
	CkptAt []time.Duration
	// Virtids are implementation names for virtid.ParseImpl
	// ("sharded", "mutex").
	Virtids     []string
	Incremental []bool
	// Storage values are built-in profile names or JSON file paths
	// (storage.Load); empty runs one storage point per cell taken from
	// Base (Base.Storage / Base.LegacyStraggler).
	Storage []string
	Base    Job
	// PoolWorkers bounds how many cells run concurrently
	// (<= 0: GOMAXPROCS). Distinct from Base.Workers, which parallelises
	// within one run.
	PoolWorkers int
}

// Cell is one completed grid cell: its coordinates, the fingerprint of
// its full deterministic output (restart notices + report, hashed with
// FNV-64a exactly as the bytes a standalone manasim run would print),
// and its headline metrics. The hash makes cross-mode byte-identity
// checkable from the aggregate alone.
type Cell struct {
	Spec        string `json:"spec"`
	Ranks       int    `json:"ranks"`
	CkptAt      string `json:"ckpt_at"`
	Virtid      string `json:"virtid"`
	Incremental bool   `json:"incremental"`
	// Storage is the cell's storage coordinate ("" when the sweep does
	// not vary storage and the base job's pipeline applies).
	Storage string `json:"storage,omitempty"`

	ReportFNV64 string `json:"report_fnv64"`
	ReportBytes int    `json:"report_bytes"`

	MakespanNs  int64  `json:"makespan_ns"`
	Events      uint64 `json:"events"`
	Checkpoints int    `json:"checkpoints"`
	Restarts    int    `json:"restarts"`
	ImageBytes  uint64 `json:"image_bytes"`
	// FallbackDepth and LostWorkNs summarise recovery cost: the deepest
	// generation fallback any restart in the cell took, and the virtual
	// time re-executed across all of its restarts.
	FallbackDepth int   `json:"fallback_depth"`
	LostWorkNs    int64 `json:"lost_work_ns"`
	// StoredBytes and PFSWaitNs summarise the storage pipeline: bytes
	// shipped to storage after compression, and the virtual time
	// checkpoint writes spent queued behind the contended PFS.
	StoredBytes uint64  `json:"stored_bytes"`
	PFSWaitNs   int64   `json:"pfs_wait_ns"`
	WallMs      float64 `json:"wall_ms"`
}

// Totals aggregates the sweep: how much work ran, how fast, and how
// well the cross-run caches did.
type Totals struct {
	Runs        int     `json:"runs"`
	PoolWorkers int     `json:"pool_workers"`
	WallMs      float64 `json:"wall_ms"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	// SpecCompiles is the compile cache's miss count over the whole
	// sweep — deterministic: one per distinct (spec, ranks, steps, seed,
	// group) the grid touches.
	SpecCompiles uint64 `json:"spec_compiles"`
}

// SweepResult is the machine-readable aggregate: one entry per cell in
// deterministic grid order (spec, ranks, ckpt-at, virtid, incremental —
// slowest to fastest varying), plus fleet totals.
type SweepResult struct {
	Cells  []Cell `json:"cells"`
	Totals Totals `json:"totals"`
}

// cellJob pairs a grid cell's coordinates with its ready-to-run config.
type cellJob struct {
	cell Cell
	job  Job
}

// enumerate expands the grid into cells in deterministic nested order
// and resolves each cell's spec and virtid, failing fast on an invalid
// dimension value before anything runs.
func (e *Engine) enumerate(s Sweep) ([]cellJob, error) {
	switch {
	case len(s.Specs) == 0:
		return nil, fmt.Errorf("fleet: sweep has no specs")
	case len(s.Ranks) == 0:
		return nil, fmt.Errorf("fleet: sweep has no ranks")
	case len(s.CkptAt) == 0:
		return nil, fmt.Errorf("fleet: sweep has no ckpt-at values")
	case len(s.Virtids) == 0:
		return nil, fmt.Errorf("fleet: sweep has no virtid values")
	case len(s.Incremental) == 0:
		return nil, fmt.Errorf("fleet: sweep has no incremental values")
	}
	// The storage dimension is optional: absent, every cell runs the base
	// job's pipeline. Named points resolve once each (profile or file).
	storageNames := s.Storage
	if len(storageNames) == 0 {
		storageNames = []string{""}
	}
	storageSpecs := make(map[string]*storage.Spec, len(storageNames))
	for _, name := range storageNames {
		if name == "" {
			continue
		}
		if _, ok := storageSpecs[name]; ok {
			continue
		}
		sp, err := storage.Load(name)
		if err != nil {
			return nil, fmt.Errorf("fleet: sweep storage %q: %w", name, err)
		}
		storageSpecs[name] = sp
	}
	cells := make([]cellJob, 0, len(s.Specs)*len(s.Ranks)*len(s.CkptAt)*len(s.Virtids)*len(s.Incremental)*len(storageNames))
	for _, name := range s.Specs {
		spec, err := e.LoadSpec(name)
		if err != nil {
			return nil, fmt.Errorf("fleet: sweep spec %q: %w", name, err)
		}
		for _, ranks := range s.Ranks {
			for _, at := range s.CkptAt {
				for _, vname := range s.Virtids {
					impl, err := virtid.ParseImpl(vname)
					if err != nil {
						return nil, fmt.Errorf("fleet: sweep virtid: %w", err)
					}
					for _, incr := range s.Incremental {
						for _, sname := range storageNames {
							j := s.Base
							j.Spec = spec
							j.Ranks = ranks
							j.CkptAt = vtime.Time(at)
							j.Virtid = impl
							j.Incremental = incr
							if sname != "" {
								j.Storage = storageSpecs[sname]
								j.LegacyStraggler = false
							}
							cells = append(cells, cellJob{
								cell: Cell{
									Spec:        name,
									Ranks:       ranks,
									CkptAt:      at.String(),
									Virtid:      vname,
									Incremental: incr,
									Storage:     sname,
								},
								job: j,
							})
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// RunSweep executes every cell of the grid over a bounded worker pool
// and returns the aggregate. Cell order in the result is the grid's
// enumeration order regardless of scheduling; each cell's report hash
// is computed from exactly the bytes the equivalent standalone run
// prints, so the aggregate is byte-identical across pool widths except
// for the wall-clock fields.
func (e *Engine) RunSweep(s Sweep) (*SweepResult, error) {
	cells, err := e.enumerate(s)
	if err != nil {
		return nil, err
	}
	// Compile every cell's config upfront, serially: errors surface
	// before any run starts, and the compile-cache miss count stays
	// deterministic whatever the pool does.
	cfgs := make([]coordinator.Config, len(cells))
	for i := range cells {
		cfg, err := e.Config(cells[i].job)
		if err != nil {
			return nil, fmt.Errorf("fleet: sweep cell %s/%d: %w", cells[i].cell.Spec, cells[i].cell.Ranks, err)
		}
		cfgs[i] = cfg
	}

	workers := s.PoolWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	start := time.Now()
	idx := make(chan int)
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				h := fnv.New64a()
				cw := &countingWriter{w: h}
				cellStart := time.Now()
				res, err := e.Run(cfgs[i], cw)
				if err != nil {
					errs[i] = err
					continue
				}
				c := &cells[i].cell
				c.ReportFNV64 = fmt.Sprintf("%016x", h.Sum64())
				c.ReportBytes = cw.n
				c.MakespanNs = int64(res.Makespan)
				c.Events = res.Events
				c.Checkpoints = res.Checkpoints
				c.Restarts = res.Restarts
				c.ImageBytes = res.ImageBytes
				c.FallbackDepth = res.FallbackDepth
				c.LostWorkNs = int64(res.LostWork)
				c.StoredBytes = res.StoredBytes
				c.PFSWaitNs = int64(res.PFSWait)
				c.WallMs = float64(time.Since(cellStart)) / float64(time.Millisecond)
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fleet: sweep cell %s/ranks=%d/virtid=%s: %w",
				cells[i].cell.Spec, cells[i].cell.Ranks, cells[i].cell.Virtid, err)
		}
	}

	wall := time.Since(start)
	out := &SweepResult{
		Cells: make([]Cell, len(cells)),
		Totals: Totals{
			Runs:         len(cells),
			PoolWorkers:  workers,
			WallMs:       float64(wall) / float64(time.Millisecond),
			SpecCompiles: e.Compiles(),
		},
	}
	if wall > 0 {
		out.Totals.RunsPerSec = float64(len(cells)) / wall.Seconds()
	}
	for i := range cells {
		out.Cells[i] = cells[i].cell
	}
	return out, nil
}

// countingWriter tees byte counts off a writer (the report hash).
type countingWriter struct {
	w interface{ Write([]byte) (int, error) }
	n int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}
