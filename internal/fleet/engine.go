// Package fleet executes many independent manasim simulations in one
// process — the simulator as an experiment service rather than a
// one-run CLI.
//
// The Engine is the multi-run core. Each run is fully isolated: a
// coordinator, its ranks, network and queues share no mutable state
// with any other run (the isolation lint in cmd/isolint keeps the
// audit honest — no package-level mutable state exists under
// internal/). What runs DO share is recycled storage and compiled
// inputs, the two costs that dominate cold runs:
//
//   - a sync.Pool of coordinator.Scratch instances lends each run the
//     previous run's event-queue lanes, per-rank bookkeeping slices,
//     collective rendezvous instances and memsim region buffers, all
//     handed over reset so a warm run is byte-identical to a cold one;
//   - a keyed compile cache shares scenario programs: a spec compiled
//     for a given (spec, ranks, steps, seed, group) is compiled once
//     and the resulting programs are read-only thereafter — ranks only
//     ever index their script — so any number of concurrent runs can
//     execute the same compiled workload.
//
// Spec compilation itself is serialised under the engine lock:
// scenario.Spec.Compile re-validates its receiver in place (parsed
// durations are cached on the spec), so two goroutines compiling one
// *Spec concurrently would race. The cache makes the serialisation
// cheap — each key compiles exactly once.
package fleet

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"mana/internal/coordinator"
	"mana/internal/faultplan"
	"mana/internal/kernelsim"
	"mana/internal/scenario"
	"mana/internal/storage"
	"mana/internal/virtid"
	"mana/internal/vtime"
)

// ErrRestartsExhausted reports that a run kept failing past its restart
// budget (coordinator.Config.MaxRestarts): every c.Restart() call —
// including attempts that themselves crashed mid-restore — counts
// against the budget, and exhausting it means the fault plan was not
// recoverable within the configured bound.
var ErrRestartsExhausted = errors.New("fleet: restart budget exhausted")

// Job names one simulation the engine can run: the workload spec plus
// the knobs cmd/manasim exposes as flags, mapped verbatim. Note the
// zero Virtid is virtid.ImplMutex (the MANA baseline), not the sharded
// table the CLI defaults to.
type Job struct {
	Spec  *scenario.Spec
	Ranks int
	Steps int
	Seed  uint64
	// Group is the sub-communicator width for specs that split
	// communicators; 0 uses the spec's own default.
	Group  int
	Kernel kernelsim.Personality
	Virtid virtid.Impl
	// CkptAt anchors the spec's checkpoint policy in virtual time.
	CkptAt vtime.Time
	// FailAfter injects a failure after this checkpoint commits
	// (0 = never); the engine's Run restarts and completes the job.
	FailAfter int
	// FailDelay overrides how long after the commit the legacy failure
	// fires (0 keeps the coordinator default).
	FailDelay vtime.Duration
	// Faults, when non-nil, is a declarative fault plan that replaces
	// the legacy FailAfter knob (and any plan the spec itself declares).
	// It is compiled per job because rank counts vary across sweep
	// cells.
	Faults      *faultplan.Plan
	Incremental bool
	FullEvery   int
	// Storage, when non-nil, declares the checkpoint I/O pipeline for
	// this job (burst-buffer staging, PFS contention, compression) and
	// replaces any storage block the spec itself declares. Nil uses the
	// spec's block, or the direct-to-PFS default when the spec has none.
	Storage *storage.Spec
	// LegacyStraggler restores the pre-storage flat-bandwidth write model
	// with RNG-drawn stragglers. Mutually exclusive with Storage.
	LegacyStraggler bool
	// Islands <= 0 applies the spec's lane-count hint (or serial);
	// Workers <= 1 drains serially. Both are pure performance knobs.
	Islands int
	Workers int
}

// Result carries one completed run's headline metrics — everything the
// sweep aggregate reports besides the report hash, which the caller
// computes from the bytes Run streams into its writer.
type Result struct {
	Makespan    vtime.Time
	Events      uint64
	RankVisits  uint64
	Checkpoints int
	Restarts    int
	// ImageBytes totals what every committed checkpoint wrote.
	ImageBytes uint64
	// FinalFingerprint hashes the surviving application state after the
	// run completes; a recoverable fault plan must reproduce the
	// fault-free run's value bit for bit.
	FinalFingerprint uint64
	// FallbackDepth is the deepest generation fallback any restart took
	// (0 = every restart restored the newest committed checkpoint).
	FallbackDepth int
	// LostWork totals the virtual time re-executed across all restarts.
	LostWork vtime.Duration
	// StoredBytes totals what every committed checkpoint shipped to
	// storage after compression (ImageBytes when compression is off).
	StoredBytes uint64
	// PFSWait totals the contention delay checkpoint writes and drains
	// spent queued behind the shared parallel file system.
	PFSWait vtime.Duration
}

// compileKey identifies one compiled program set. The spec is keyed by
// pointer identity: the engine's LoadSpec caches specs by name, so one
// sweep resolves each spec once and every cell over it shares the key.
type compileKey struct {
	spec         *scenario.Spec
	ranks, steps int
	group        int
	seed         uint64
}

// Engine runs simulations with cross-run reuse of scratch storage and
// compiled specs. The zero Engine is not usable; call NewEngine. An
// Engine is safe for concurrent use; specs handed to it (via Job.Spec
// or LoadSpec) must not be compiled or mutated outside the engine while
// it runs.
type Engine struct {
	mu       sync.Mutex
	specs    map[string]*scenario.Spec
	compiled map[compileKey][]scenario.Program
	compiles uint64

	// scratch recycles coordinator storage across runs. sync.Pool gives
	// each concurrent run its own Scratch — the one-live-run-per-Scratch
	// discipline coordinator.Scratch requires — and drops extras under
	// memory pressure.
	scratch sync.Pool
}

// NewEngine returns an empty engine: the first run on it allocates and
// compiles cold, later runs reuse.
func NewEngine() *Engine {
	return &Engine{
		specs:    make(map[string]*scenario.Spec),
		compiled: make(map[compileKey][]scenario.Program),
		scratch: sync.Pool{
			New: func() any { return coordinator.NewScratch() },
		},
	}
}

// LoadSpec resolves a spec by library name or JSON file path, cached so
// every job over the same name shares one *Spec (and therefore one
// compile-cache key per parameter set).
func (e *Engine) LoadSpec(name string) (*scenario.Spec, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.specs[name]; ok {
		return s, nil
	}
	var (
		s   *scenario.Spec
		err error
	)
	if scenario.IsLibrary(name) {
		s, err = scenario.Load(name)
	} else {
		s, err = scenario.LoadFile(name)
	}
	if err != nil {
		return nil, err
	}
	e.specs[name] = s
	return s, nil
}

// Programs returns the compiled per-rank programs for (spec, p),
// compiling at most once per key. The returned slice and everything it
// references are shared and read-only: callers hand them to
// coordinator.Config verbatim and never mutate them.
func (e *Engine) Programs(spec *scenario.Spec, p scenario.Params) ([]scenario.Program, error) {
	key := compileKey{spec: spec, ranks: p.Ranks, steps: p.Steps, group: p.Group, seed: p.Seed}
	e.mu.Lock()
	defer e.mu.Unlock()
	if progs, ok := e.compiled[key]; ok {
		return progs, nil
	}
	progs, err := spec.Compile(p)
	if err != nil {
		return nil, err
	}
	e.compiles++
	e.compiled[key] = progs
	return progs, nil
}

// Compiles returns how many spec compilations the engine has performed —
// the compile cache's miss count. Deterministic for a given job set:
// one per distinct compile key.
func (e *Engine) Compiles() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.compiles
}

// Triggers translates a spec's checkpoint policy into coordinator
// triggers, all anchored at the given virtual time. A spec (or a trace,
// which carries no policy) without one gets the classic
// three-checkpoint sequence.
func Triggers(cks []scenario.CheckpointSpec, at vtime.Time) []coordinator.Trigger {
	if len(cks) == 0 {
		return []coordinator.Trigger{
			{At: at},
			{At: at, InFlight: true},
			{At: at, MidCollective: true},
		}
	}
	trig := make([]coordinator.Trigger, 0, len(cks))
	for _, ck := range cks {
		tr := coordinator.Trigger{At: at}
		switch ck.Kind {
		case "in-flight":
			tr.InFlight = true
		case "mid-collective":
			tr.MidCollective = true
		case "forming-colls":
			tr.FormingColls = ck.Colls
		}
		trig = append(trig, tr)
	}
	return trig
}

// Config compiles the job (through the cache) and translates it into a
// coordinator configuration — field for field what cmd/manasim's
// buildConfig produces for the same parameters, so a fleet run's report
// is byte-identical to the standalone run's.
func (e *Engine) Config(j Job) (coordinator.Config, error) {
	if j.Spec == nil {
		return coordinator.Config{}, fmt.Errorf("fleet: job has no spec")
	}
	progs, err := e.Programs(j.Spec, scenario.Params{Ranks: j.Ranks, Steps: j.Steps, Seed: j.Seed, Group: j.Group})
	if err != nil {
		return coordinator.Config{}, err
	}
	cfg := coordinator.BaseConfig()
	cfg.Ranks = j.Ranks
	cfg.Personality = j.Kernel
	cfg.Virtid = j.Virtid
	cfg.Seed = j.Seed
	cfg.Incremental = j.Incremental
	cfg.FullImageEvery = j.FullEvery
	cfg.Programs = progs
	cfg.Triggers = Triggers(j.Spec.Checkpoints, j.CkptAt)
	cfg.FailAtCheckpoint = j.FailAfter
	if j.FailDelay > 0 {
		cfg.FailDelay = j.FailDelay
	}
	plan := j.Faults
	if plan == nil {
		plan = j.Spec.Faults
	}
	if plan != nil {
		faults, err := plan.Compile(j.Ranks)
		if err != nil {
			return coordinator.Config{}, err
		}
		cfg.Faults = faults
		// A declarative plan owns failure injection outright; the
		// legacy knob is suppressed rather than layered on top.
		cfg.FailAtCheckpoint = 0
		if plan.MaxRestarts > 0 {
			cfg.MaxRestarts = plan.MaxRestarts
		}
	}
	spec := j.Storage
	if spec == nil {
		spec = j.Spec.Storage
	}
	if j.LegacyStraggler {
		if spec != nil {
			return coordinator.Config{}, fmt.Errorf("fleet: job sets LegacyStraggler alongside a storage spec; the legacy write model has no storage pipeline")
		}
		cfg.Storage.LegacyStraggler = true
	} else {
		st, err := storage.Compile(spec)
		if err != nil {
			return coordinator.Config{}, err
		}
		cfg.Storage = st
	}
	if faultplan.AnyDrainHop(cfg.Faults) && !cfg.Storage.Staging {
		return coordinator.Config{}, fmt.Errorf("fleet: fault plan anchors on \"image-write/drain\" but the job's storage has no burst buffer; drain faults need staging")
	}
	cfg.Islands = j.Islands
	if cfg.Islands <= 0 && j.Spec.Islands > 0 {
		cfg.Islands = j.Spec.Islands
	}
	cfg.Workers = j.Workers
	return cfg, nil
}

// Run executes one configuration to completion — including any injected
// failure and the restarts that recover from it — streaming the full
// deterministic output (restart notices followed by the report) into w.
// A nil w discards the output. The run borrows a recycled Scratch from
// the engine and returns it when the run retires; concurrent Runs are
// safe and each borrows its own.
func (e *Engine) Run(cfg coordinator.Config, w io.Writer) (Result, error) {
	if w == nil {
		w = io.Discard
	}
	sc := e.scratch.Get().(*coordinator.Scratch)
	cfg.Scratch = sc
	c := coordinator.New(cfg)
	outcome, err := c.Run()
	if err != nil {
		// An errored run's storage is mid-flight (queued events, open
		// rendezvous); drop the scratch rather than recycle it.
		return Result{}, fmt.Errorf("run failed: %w", err)
	}
	attempts := 0
	for outcome == coordinator.Failed {
		fmt.Fprintf(w, "injected failure after checkpoint #%d; restarting from last image\n",
			len(c.Records()))
		for {
			attempts++
			if cfg.MaxRestarts > 0 && attempts > cfg.MaxRestarts {
				return Result{}, fmt.Errorf("fleet: run still failing after %d restart attempts: %w",
					attempts-1, ErrRestartsExhausted)
			}
			err := c.Restart()
			if err == nil {
				break
			}
			if errors.Is(err, coordinator.ErrRestartFault) {
				// The restore itself crashed; the poisoned image is
				// skipped and the next attempt falls back further.
				fmt.Fprintf(w, "restart failed (injected restart fault); falling back to an older image\n")
				continue
			}
			return Result{}, fmt.Errorf("restart failed: %w", err)
		}
		outcome, err = c.Run()
		if err != nil {
			return Result{}, fmt.Errorf("post-restart run failed: %w", err)
		}
	}
	c.WriteReport(w)
	res := Result{
		Makespan:         c.MaxClock(),
		Events:           c.EventsDispatched(),
		RankVisits:       c.RankVisits(),
		Checkpoints:      len(c.Records()),
		Restarts:         len(c.Restarts()),
		FinalFingerprint: c.FinalFingerprint(),
	}
	for _, rec := range c.Records() {
		res.ImageBytes += rec.ImageBytes
		res.StoredBytes += rec.StoredBytes
		res.PFSWait += rec.PFSWait
	}
	for _, rr := range c.Restarts() {
		if rr.FallbackDepth > res.FallbackDepth {
			res.FallbackDepth = rr.FallbackDepth
		}
		res.LostWork += rr.LostWork
	}
	c.Release()
	e.scratch.Put(sc)
	return res, nil
}

// RunJob is Config followed by Run.
func (e *Engine) RunJob(j Job, w io.Writer) (Result, error) {
	cfg, err := e.Config(j)
	if err != nil {
		return Result{}, err
	}
	return e.Run(cfg, w)
}
