package virtid

import (
	"sort"
	"sync"
)

// MutexTable is the baseline implementation, matching MANA's original
// virtualisation layer (DMTCP's VirtualIdTable): an *ordered* map —
// std::map in the original C++, a sorted slice with binary search here —
// protected by one global mutex. Every operation, including the hot-path
// Lookup, serialises on the same lock and pays an O(log n) ordered
// search, which is what the NERSC production study measured as the
// dominant per-call cost at scale: the lock is contended by every
// application thread and the checkpoint helper, and the ordered probe
// chases len-dependent comparisons instead of one hash bucket.
type MutexTable struct {
	mu   sync.Mutex
	next [NumKinds]uint64
	// entries is kept sorted by VID. VIDs are allocated monotonically, so
	// Register is an append; Deregister pays an O(n) shift, as the
	// original's tree rebalancing did.
	entries [NumKinds][]Entry
}

// NewMutexTable returns an empty baseline table.
func NewMutexTable() *MutexTable {
	return &MutexTable{}
}

// find returns the index of v in the kind's sorted entries, or (i, false)
// with i the insertion point. Caller holds mu.
func (t *MutexTable) find(k Kind, v VID) (int, bool) {
	es := t.entries[k]
	i := sort.Search(len(es), func(i int) bool { return es[i].VID >= v })
	return i, i < len(es) && es[i].VID == v
}

// Register allocates the next virtual id under the global lock.
func (t *MutexTable) Register(k Kind, real Real) VID {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next[k]++
	v := VID(t.next[k])
	if _, dup := t.find(k, v); dup {
		panic("virtid: duplicate registration of " + k.String() + " handle")
	}
	// Monotonic allocation means v sorts after every live entry.
	t.entries[k] = append(t.entries[k], Entry{VID: v, Real: real})
	return v
}

// Lookup translates a virtual id: an ordered search under the global
// lock, exactly the per-call work the baseline design charges. The
// unlock is explicit rather than deferred to keep the hot path lean —
// the comparison against the sharded table should measure the design,
// not Go defer overhead.
func (t *MutexTable) Lookup(k Kind, v VID) (Real, bool) {
	t.mu.Lock()
	if i, ok := t.find(k, v); ok {
		real := t.entries[k][i].Real
		t.mu.Unlock()
		return real, true
	}
	t.mu.Unlock()
	return 0, false
}

// Deregister removes a mapping under the global lock.
func (t *MutexTable) Deregister(k Kind, v VID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.find(k, v)
	if !ok {
		return false
	}
	t.entries[k] = append(t.entries[k][:i], t.entries[k][i+1:]...)
	return true
}

// Len reports the number of live mappings of one kind.
func (t *MutexTable) Len(k Kind) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries[k])
}

// Impl identifies the implementation.
func (t *MutexTable) Impl() Impl { return ImplMutex }

// Snapshot captures the table state; the internal representation is
// already sorted by virtual id.
func (t *MutexTable) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s Snapshot
	s.Next = t.next
	for k := 0; k < NumKinds; k++ {
		s.Entries[k] = append([]Entry(nil), t.entries[k]...)
	}
	return s
}

// Restore replaces the table's contents with the snapshot's.
func (t *MutexTable) Restore(s Snapshot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next = s.Next
	for k := 0; k < NumKinds; k++ {
		t.entries[k] = append([]Entry(nil), s.Entries[k]...)
	}
}

// sortedEntries flattens a mapping into entries sorted by virtual id, so
// that Go map iteration order never escapes the table.
func sortedEntries(m map[VID]Real) []Entry {
	entries := make([]Entry, 0, len(m))
	for v, r := range m {
		entries = append(entries, Entry{VID: v, Real: r})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].VID < entries[j].VID })
	return entries
}
