// Package virtid implements MANA's handle-virtualisation table: the
// virtual-to-real translation layer that sits on every MPI call's hot
// path (paper §3.3).
//
// MANA cannot hand the application real MPI handles, because the lower
// half — the MPI library that owns them — is discarded at checkpoint and
// rebuilt from scratch at restart, at which point every real handle value
// changes. The upper half therefore only ever sees *virtual* handles, and
// each call that passes a communicator, datatype or request translates it
// through this table on the way down. That translation is per-call work:
// the NERSC production study of MANA (arXiv:2103.08546) identified
// exactly this bookkeeping, a hash-table lookup behind a lock, as the
// dominant steady-state overhead at scale.
//
// The package provides two interchangeable implementations so the lookup
// cost can be measured and optimised under contention:
//
//   - MutexTable: a single global sync.Mutex around per-kind maps —
//     MANA's original design, and the calibrated baseline
//     (MutexLookupCost).
//   - ShardedTable: per-kind shard arrays selected by an FNV-1a hash of
//     the virtual id. Each shard publishes a read-only copy-on-write map
//     through sync/atomic, so steady-state lookups take no lock and
//     perform zero allocations; only registration and deregistration
//     (rare: communicator/datatype creation, request churn) pay the
//     shard-local copy under a shard mutex.
//
// Determinism rule: virtual ids are allocated from per-kind counters in
// registration order, and Snapshot returns entries sorted by virtual id —
// table iteration order (Go map order) never reaches a checkpoint image,
// a fingerprint or a report.
package virtid

import (
	"fmt"

	"mana/internal/vtime"
)

// Kind identifies which handle namespace a virtual id lives in. MPI
// handle spaces are disjoint (a communicator and a datatype may share a
// numeric value), so the table keeps one namespace per kind.
type Kind int

const (
	// Comm is the communicator namespace (MPI_Comm).
	Comm Kind = iota
	// Datatype is the datatype namespace (MPI_Datatype).
	Datatype
	// Request is the request namespace (MPI_Request) — the churn-heavy
	// kind: nonblocking operations register a request at post time and
	// deregister it when the matching wait completes.
	Request
	// NumKinds is the number of handle namespaces.
	NumKinds = iota
)

// String returns the MPI-style name of the handle kind.
func (k Kind) String() string {
	switch k {
	case Comm:
		return "comm"
	case Datatype:
		return "datatype"
	case Request:
		return "request"
	default:
		return "unknown"
	}
}

// VID is a virtual handle id — the only handle form the upper half ever
// sees. The zero VID is never allocated and never resolves, so it can
// serve as a null handle.
type VID uint64

// Real is a real handle value as the live lower half knows it. Real
// values are opaque to the upper half and die with the lower half at
// checkpoint.
type Real uint64

// LookupCounts records how many translations of each kind one MPI call
// performs; kernelsim charges the per-call virtualisation cost from it.
type LookupCounts struct {
	Comm     uint64
	Datatype uint64
	Request  uint64
}

// Total returns the total number of lookups the counts describe.
func (c LookupCounts) Total() uint64 { return c.Comm + c.Datatype + c.Request }

// Calibrated per-operation virtual-time costs. MutexLookupCost is the
// figure that previously lived in kernelsim as virtualizationLookupCost:
// a table probe plus the acquisition of a (globally shared) mutex. The
// sharded table's lock-free read path drops the lock acquisition and the
// shared cache-line bounce, leaving little more than the hash probe
// itself; the ratio mirrors what BenchmarkVirtidLookup{Mutex,Sharded}
// measures under contention.
//
// Writes (Register/Deregister) price the opposite way: the baseline
// appends or shifts under the lock it already holds, while the sharded
// table pays a shard-local copy-on-write rebuild so that readers never
// block. The write figures are calibrated from the shapes
// BenchmarkVirtidRequestChurn measures — the design bet, as in MANA
// itself, is that lookups outnumber handle births by orders of
// magnitude, so the read saving dominates.
const (
	// MutexLookupCost is the calibrated cost of one translation through
	// the MutexTable baseline (ordered probe + global lock).
	MutexLookupCost = 35 * vtime.Nanosecond
	// ShardedLookupCost is the calibrated cost of one translation through
	// the ShardedTable's lock-free read path (FNV hash + atomic load +
	// open-addressed probe).
	ShardedLookupCost = 8 * vtime.Nanosecond
	// MutexWriteCost is the calibrated cost of one Register or Deregister
	// in the baseline: an append or shift under the same global lock.
	MutexWriteCost = 20 * vtime.Nanosecond
	// ShardedWriteCost is the calibrated cost of one Register or
	// Deregister in the sharded table: the shard-local copy-on-write
	// rebuild plus the atomic publication.
	ShardedWriteCost = 110 * vtime.Nanosecond
)

// Impl selects a table implementation.
type Impl int

const (
	// ImplMutex is the single-global-mutex baseline, matching MANA's
	// original design.
	ImplMutex Impl = iota
	// ImplSharded is the optimised table: FNV-sharded, lock-free reads.
	ImplSharded
)

// String returns the implementation's CLI name.
func (i Impl) String() string {
	switch i {
	case ImplMutex:
		return "mutex"
	case ImplSharded:
		return "sharded"
	default:
		return "unknown"
	}
}

// ParseImpl converts a CLI name into an Impl.
func ParseImpl(s string) (Impl, error) {
	switch s {
	case "mutex":
		return ImplMutex, nil
	case "sharded":
		return ImplSharded, nil
	default:
		return 0, fmt.Errorf("unknown virtid implementation %q (want mutex or sharded)", s)
	}
}

// LookupCost returns the implementation's calibrated per-lookup cost.
func (i Impl) LookupCost() vtime.Duration {
	if i == ImplSharded {
		return ShardedLookupCost
	}
	return MutexLookupCost
}

// WriteCost returns the implementation's calibrated cost of one Register
// or Deregister.
func (i Impl) WriteCost() vtime.Duration {
	if i == ImplSharded {
		return ShardedWriteCost
	}
	return MutexWriteCost
}

// Table is the virtual-to-real translation table. Lookup is the hot
// path — every MPI call that passes a handle performs at least one — and
// must be safe for concurrent use with Register/Deregister (the
// checkpoint helper thread resolves handles while the application runs).
type Table interface {
	// Register allocates the next virtual id in the kind's namespace and
	// maps it to the given real handle.
	Register(k Kind, real Real) VID
	// Lookup translates a virtual id; ok is false for ids that were never
	// registered or have been deregistered (a miss is a virtualisation
	// bug in the caller, or a stale handle from a dead timeline).
	Lookup(k Kind, v VID) (Real, bool)
	// Deregister removes a mapping, reporting whether it existed. Virtual
	// ids are never reused: the allocation counter only moves forward.
	Deregister(k Kind, v VID) bool
	// Len reports the number of live mappings of one kind.
	Len(k Kind) int
	// Impl identifies the implementation (and thereby its LookupCost).
	Impl() Impl
	// Snapshot captures the full table state deterministically (entries
	// sorted by virtual id) for inclusion in a checkpoint image.
	Snapshot() Snapshot
	// Restore replaces the table's contents with a snapshot's. Mappings
	// registered after the snapshot was taken — handles of the dead
	// timeline — no longer resolve afterwards.
	Restore(Snapshot)
}

// New returns an empty table of the selected implementation.
func New(i Impl) Table {
	if i == ImplSharded {
		return NewShardedTable()
	}
	return NewMutexTable()
}

// Entry is one virtual-to-real mapping in a snapshot.
type Entry struct {
	VID  VID
	Real Real
}

// Snapshot is a deterministic capture of a table: per-kind entries sorted
// by virtual id, plus the per-kind allocation counters so that replayed
// registrations after restart reproduce the same virtual ids.
type Snapshot struct {
	Next    [NumKinds]uint64
	Entries [NumKinds][]Entry
}

// Live returns the total number of mappings in the snapshot.
func (s Snapshot) Live() int {
	n := 0
	for k := 0; k < NumKinds; k++ {
		n += len(s.Entries[k])
	}
	return n
}
