package virtid

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// benchSink defeats dead-code elimination of the lookup results.
var benchSink atomic.Uint64

// benchLookup measures the hot-path Lookup under a fixed goroutine count,
// splitting b.N operations across the goroutines so ns/op stays the
// per-lookup figure regardless of fan-out. GOMAXPROCS is raised to the
// goroutine count for the duration of the benchmark: each goroutine
// models one thread of a multi-threaded MPI rank, and capping them to a
// single P would let the cooperative scheduler hide the lock contention
// the benchmark exists to measure. The handle population mirrors a real
// rank: a few communicators and datatypes plus the in-flight request
// window of a nonblocking-heavy application (hundreds to thousands of
// live requests is routine for the NERSC workloads that exposed this
// bottleneck), all registered before the clock starts. Lookups hit the
// request namespace, the population that actually grows at scale.
//
// The helper is generic over the concrete table type so each
// implementation's Lookup is devirtualised and inlined: the benchmark
// measures the table design, not interface-dispatch overhead.
func benchLookup[T Table](b *testing.B, tab T, goroutines int) {
	prev := runtime.GOMAXPROCS(max(goroutines, runtime.GOMAXPROCS(0)))
	defer runtime.GOMAXPROCS(prev)
	for i := 0; i < 4; i++ {
		tab.Register(Comm, Real(0x44000000+i))
		tab.Register(Datatype, Real(0x4c000000+i))
	}
	const handles = 2048 // power of two for cheap masking
	vids := make([]VID, handles)
	for i := range vids {
		vids[i] = tab.Register(Request, Real(0x98000000+i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		n := b.N / goroutines
		if g == 0 {
			n += b.N % goroutines
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			var local uint64
			idx := g * 7
			for i := 0; i < n; i++ {
				real, ok := tab.Lookup(Request, vids[idx&(handles-1)])
				if !ok {
					panic("virtid bench: lookup miss on a registered handle")
				}
				local += uint64(real)
				idx++
			}
			benchSink.Add(local)
		}(g, n)
	}
	wg.Wait()
}

// BenchmarkVirtidLookupMutex/goroutines=N is the baseline: every lookup
// serialises on one global mutex, so adding goroutines adds contention
// without adding throughput.
func BenchmarkVirtidLookupMutex(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			benchLookup(b, NewMutexTable(), g)
		})
	}
}

// BenchmarkVirtidLookupSharded/goroutines=N is the optimised table: the
// read path is an atomic load plus a map probe, so per-op cost stays flat
// (and allocation-free) as goroutines are added.
func BenchmarkVirtidLookupSharded(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			benchLookup(b, NewShardedTable(), g)
		})
	}
}

// BenchmarkVirtidRequestChurn measures the write path both tables pay on
// every nonblocking operation: register a request, resolve it once (the
// wait), deregister it.
func BenchmarkVirtidRequestChurn(b *testing.B) {
	for _, impl := range []Impl{ImplMutex, ImplSharded} {
		b.Run(impl.String(), func(b *testing.B) {
			tab := New(impl)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := tab.Register(Request, Real(i))
				if _, ok := tab.Lookup(Request, v); !ok {
					b.Fatal("request did not resolve")
				}
				tab.Deregister(Request, v)
			}
		})
	}
}
