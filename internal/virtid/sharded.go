package virtid

import (
	"sync"
	"sync/atomic"
)

const (
	// numShards is the per-kind shard count. A power of two so the FNV
	// hash can be masked instead of divided; 16 shards is enough to
	// spread the hot handles (MPI_COMM_WORLD, the basic datatypes, the
	// in-flight request window) across distinct cache lines.
	numShards = 16
	// shardBits is log2(numShards): the low hash bits select the shard,
	// the remaining bits index into the shard's slot array, so one FNV
	// computation serves both.
	shardBits = 4
)

// lut is one shard's published lookup table: an immutable open-addressed
// slot array (linear probing, power-of-two size, load factor <= 1/2, VID
// zero marking an empty slot). Readers probe it without any
// synchronisation beyond the atomic pointer load that fetched it;
// writers never mutate a published lut, they build a replacement and
// publish that.
type lut struct {
	mask  uint64
	slots []Entry
	live  int
}

// emptyLUT is the pre-published table of a fresh shard.
var emptyLUT = &lut{mask: 3, slots: make([]Entry, 4)}

// shard is one slot of a kind's shard array. Readers never take the
// mutex: they atomically load the published lut and probe it. Writers
// serialise on mu, build a private replacement, and publish it with a
// single atomic store (copy-on-write). A reader holding a just-replaced
// lut simply observes the table as of its load — exactly the memory-model
// guarantee a real lock-free MANA lookup path needs.
type shard struct {
	mu  sync.Mutex
	lut atomic.Pointer[lut]
}

// ShardedTable is the optimised implementation: per-kind shard arrays
// selected by an FNV-1a hash of the virtual id, each shard publishing an
// immutable open-addressed table through sync/atomic, so steady-state
// lookups take no lock, touch one cache line of slot data in the common
// case, and allocate nothing. Registration and deregistration pay a
// shard-local rebuild — cheap, because MPI handle populations per shard
// are small (a few communicators and datatypes; requests are
// deregistered as soon as their wait completes).
type ShardedTable struct {
	next   [NumKinds]atomic.Uint64
	shards [NumKinds][numShards]shard
}

// NewShardedTable returns an empty sharded table with every shard's
// empty lut pre-published, so the read path never needs a nil check
// beyond the pointer load.
func NewShardedTable() *ShardedTable {
	t := &ShardedTable{}
	for k := 0; k < NumKinds; k++ {
		for i := range t.shards[k] {
			t.shards[k][i].lut.Store(emptyLUT)
		}
	}
	return t
}

// fnvOf is FNV-1a over the virtual id's eight bytes, unrolled and
// open-coded rather than using hash/fnv so the hot path performs no loop
// branches, no interface calls and no allocations.
func fnvOf(v VID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	x := uint64(v)
	h := uint64(offset64)
	h = (h ^ (x & 0xff)) * prime64
	h = (h ^ ((x >> 8) & 0xff)) * prime64
	h = (h ^ ((x >> 16) & 0xff)) * prime64
	h = (h ^ ((x >> 24) & 0xff)) * prime64
	h = (h ^ ((x >> 32) & 0xff)) * prime64
	h = (h ^ ((x >> 40) & 0xff)) * prime64
	h = (h ^ ((x >> 48) & 0xff)) * prime64
	h = (h ^ (x >> 56)) * prime64
	return h
}

// shardOf selects a shard from the low FNV bits.
func shardOf(v VID) int { return int(fnvOf(v) & (numShards - 1)) }

// rebuild constructs a new lut holding the given entries. Size is chosen
// so the load factor stays at or below 1/2, which bounds linear-probe
// runs and guarantees an empty slot terminates every miss probe.
func rebuild(entries []Entry) *lut {
	size := uint64(4)
	for size < uint64(len(entries))*2 {
		size <<= 1
	}
	n := &lut{mask: size - 1, slots: make([]Entry, size), live: len(entries)}
	for _, e := range entries {
		i := (fnvOf(e.VID) >> shardBits) & n.mask
		for n.slots[i].VID != 0 {
			i = (i + 1) & n.mask
		}
		n.slots[i] = e
	}
	return n
}

// liveEntries collects a lut's entries. Caller holds the shard mutex, so
// the result reflects the latest published state.
func (l *lut) liveEntries() []Entry {
	out := make([]Entry, 0, l.live)
	for _, e := range l.slots {
		if e.VID != 0 {
			out = append(out, e)
		}
	}
	return out
}

// Register allocates the next virtual id and publishes the new mapping
// with a shard-local copy-on-write rebuild.
func (t *ShardedTable) Register(k Kind, real Real) VID {
	v := VID(t.next[k].Add(1))
	s := &t.shards[k][shardOf(v)]
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.lut.Load().liveEntries()
	for _, e := range entries {
		if e.VID == v {
			panic("virtid: duplicate registration of " + k.String() + " handle")
		}
	}
	s.lut.Store(rebuild(append(entries, Entry{VID: v, Real: real})))
	return v
}

// Lookup is the lock-free read path: one FNV hash, one atomic pointer
// load, and a short linear probe of an immutable slot array — no lock,
// no allocation.
func (t *ShardedTable) Lookup(k Kind, v VID) (Real, bool) {
	if v == 0 {
		return 0, false // the null handle; also keeps empty slots unmatchable
	}
	h := fnvOf(v)
	l := t.shards[k][h&(numShards-1)].lut.Load()
	i := (h >> shardBits) & l.mask
	for {
		e := l.slots[i]
		if e.VID == v {
			return e.Real, true
		}
		if e.VID == 0 {
			return 0, false
		}
		i = (i + 1) & l.mask
	}
}

// Deregister removes a mapping with a shard-local copy-on-write rebuild.
func (t *ShardedTable) Deregister(k Kind, v VID) bool {
	s := &t.shards[k][shardOf(v)]
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.lut.Load().liveEntries()
	for i, e := range entries {
		if e.VID == v {
			s.lut.Store(rebuild(append(entries[:i], entries[i+1:]...)))
			return true
		}
	}
	return false
}

// Len reports the number of live mappings of one kind.
func (t *ShardedTable) Len(k Kind) int {
	n := 0
	for i := range t.shards[k] {
		n += t.shards[k][i].lut.Load().live
	}
	return n
}

// Impl identifies the implementation.
func (t *ShardedTable) Impl() Impl { return ImplSharded }

// Snapshot captures the table state with entries sorted by virtual id.
// The caller must quiesce writers first (the checkpoint protocol does:
// images are captured only after every rank has stopped at a call
// boundary), as a snapshot concurrent with a Register could otherwise
// straddle the allocation counter and the published tables.
func (t *ShardedTable) Snapshot() Snapshot {
	var s Snapshot
	for k := 0; k < NumKinds; k++ {
		s.Next[k] = t.next[k].Load()
		merged := make(map[VID]Real)
		for i := range t.shards[k] {
			for _, e := range t.shards[k][i].lut.Load().slots {
				if e.VID != 0 {
					merged[e.VID] = e.Real
				}
			}
		}
		s.Entries[k] = sortedEntries(merged)
	}
	return s
}

// Restore replaces the table's contents with the snapshot's, rebuilding
// and republishing every shard.
func (t *ShardedTable) Restore(s Snapshot) {
	for k := 0; k < NumKinds; k++ {
		t.next[k].Store(s.Next[k])
		var fresh [numShards][]Entry
		for _, e := range s.Entries[k] {
			sh := shardOf(e.VID)
			fresh[sh] = append(fresh[sh], e)
		}
		for i := range t.shards[k] {
			sh := &t.shards[k][i]
			sh.mu.Lock()
			sh.lut.Store(rebuild(fresh[i]))
			sh.mu.Unlock()
		}
	}
}
