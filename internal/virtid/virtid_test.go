package virtid

import (
	"sync"
	"testing"
)

// tables runs a subtest against both implementations, so every behaviour
// below is pinned for the baseline and the optimised table alike.
func tables(t *testing.T, f func(t *testing.T, tab Table)) {
	t.Helper()
	for _, impl := range []Impl{ImplMutex, ImplSharded} {
		t.Run(impl.String(), func(t *testing.T) { f(t, New(impl)) })
	}
}

func TestRegisterLookupDeregister(t *testing.T) {
	tables(t, func(t *testing.T, tab Table) {
		v := tab.Register(Comm, 0x44000000)
		if v == 0 {
			t.Fatal("Register returned the null VID")
		}
		if real, ok := tab.Lookup(Comm, v); !ok || real != 0x44000000 {
			t.Fatalf("Lookup = (%#x, %v), want (0x44000000, true)", real, ok)
		}
		// Kinds are disjoint namespaces: the same numeric VID must not
		// resolve in another kind.
		if _, ok := tab.Lookup(Datatype, v); ok {
			t.Error("comm VID resolved in the datatype namespace")
		}
		if !tab.Deregister(Comm, v) {
			t.Fatal("Deregister of a live mapping returned false")
		}
		if _, ok := tab.Lookup(Comm, v); ok {
			t.Error("deregistered VID still resolves")
		}
		if tab.Deregister(Comm, v) {
			t.Error("second Deregister of the same VID returned true")
		}
	})
}

func TestNullVIDNeverResolves(t *testing.T) {
	tables(t, func(t *testing.T, tab Table) {
		tab.Register(Request, 1)
		if _, ok := tab.Lookup(Request, 0); ok {
			t.Error("the null VID resolved")
		}
	})
}

func TestVIDsAllocatedInDeterministicOrder(t *testing.T) {
	tables(t, func(t *testing.T, tab Table) {
		for i := 1; i <= 100; i++ {
			if v := tab.Register(Request, Real(i)); v != VID(i) {
				t.Fatalf("registration %d allocated VID %d", i, v)
			}
		}
	})
}

func TestVIDsNeverReused(t *testing.T) {
	tables(t, func(t *testing.T, tab Table) {
		a := tab.Register(Request, 10)
		tab.Deregister(Request, a)
		b := tab.Register(Request, 20)
		if b == a {
			t.Fatalf("VID %d was reused after deregistration", a)
		}
	})
}

func TestLenPerKind(t *testing.T) {
	tables(t, func(t *testing.T, tab Table) {
		tab.Register(Comm, 1)
		tab.Register(Comm, 2)
		d := tab.Register(Datatype, 3)
		if tab.Len(Comm) != 2 || tab.Len(Datatype) != 1 || tab.Len(Request) != 0 {
			t.Fatalf("Len = (%d, %d, %d), want (2, 1, 0)",
				tab.Len(Comm), tab.Len(Datatype), tab.Len(Request))
		}
		tab.Deregister(Datatype, d)
		if tab.Len(Datatype) != 0 {
			t.Errorf("Len(Datatype) = %d after deregister, want 0", tab.Len(Datatype))
		}
	})
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	tables(t, func(t *testing.T, tab Table) {
		// Enough entries to make unsorted map iteration order visible.
		for i := 1; i <= 64; i++ {
			tab.Register(Request, Real(1000+i))
		}
		s := tab.Snapshot()
		if got := len(s.Entries[Request]); got != 64 {
			t.Fatalf("snapshot has %d request entries, want 64", got)
		}
		for i, e := range s.Entries[Request] {
			if e.VID != VID(i+1) {
				t.Fatalf("entry %d has VID %d; snapshot entries must be sorted by VID", i, e.VID)
			}
			if e.Real != Real(1000+i+1) {
				t.Fatalf("entry %d has real %#x, want %#x", i, e.Real, 1000+i+1)
			}
		}
		if s.Next[Request] != 64 {
			t.Errorf("snapshot Next[Request] = %d, want 64", s.Next[Request])
		}
		if s.Live() != 64 {
			t.Errorf("snapshot Live() = %d, want 64", s.Live())
		}
	})
}

// TestRestoreRebuildsDeterministicallyAndKillsStaleHandles is the core
// restart property: restoring a snapshot reproduces the captured state
// exactly (including the allocation counters, so replayed registrations
// reallocate the same VIDs), and handles registered after the snapshot —
// the dead timeline's — no longer resolve.
func TestRestoreRebuildsDeterministicallyAndKillsStaleHandles(t *testing.T) {
	tables(t, func(t *testing.T, tab Table) {
		comm := tab.Register(Comm, 0x44000000)
		dtype := tab.Register(Datatype, 0x4c000101)
		live := tab.Register(Request, 0x98000001)
		snap := tab.Snapshot()

		// The timeline continues past the checkpoint: a request completes
		// and new ones are posted.
		tab.Deregister(Request, live)
		stale1 := tab.Register(Request, 0x98000002)
		stale2 := tab.Register(Request, 0x98000003)

		tab.Restore(snap)
		if real, ok := tab.Lookup(Comm, comm); !ok || real != 0x44000000 {
			t.Fatalf("comm lookup after restore = (%#x, %v)", real, ok)
		}
		if _, ok := tab.Lookup(Datatype, dtype); !ok {
			t.Fatal("datatype did not survive restore")
		}
		if _, ok := tab.Lookup(Request, live); !ok {
			t.Fatal("request live at snapshot time does not resolve after restore")
		}
		for _, stale := range []VID{stale1, stale2} {
			if _, ok := tab.Lookup(Request, stale); ok {
				t.Fatalf("stale request VID %d from the dead timeline resolves after restore", stale)
			}
		}
		// Replay: the registrations re-executed after restart must
		// reallocate exactly the VIDs the dead timeline used.
		if v := tab.Register(Request, 0x98000002); v != stale1 {
			t.Fatalf("replayed registration allocated VID %d, want %d", v, stale1)
		}
		// And the restored table must snapshot back to the same bytes.
		again := tab.Snapshot()
		again.Next[Request] = snap.Next[Request] // undo the replay registration
		again.Entries[Request] = snap.Entries[Request]
		if again.Next != snap.Next {
			t.Errorf("restored Next counters %v != snapshot %v", again.Next, snap.Next)
		}
	})
}

func TestSnapshotOfRestoredTableIsIdentical(t *testing.T) {
	tables(t, func(t *testing.T, tab Table) {
		for i := 0; i < 20; i++ {
			tab.Register(Comm, Real(0x100+i))
			tab.Register(Request, Real(0x200+i))
		}
		tab.Deregister(Request, 3)
		tab.Deregister(Request, 17)
		snap := tab.Snapshot()
		tab.Register(Request, 0xdead) // dead-timeline noise
		tab.Restore(snap)
		got := tab.Snapshot()
		if got.Next != snap.Next {
			t.Fatalf("Next = %v, want %v", got.Next, snap.Next)
		}
		for k := 0; k < NumKinds; k++ {
			if len(got.Entries[k]) != len(snap.Entries[k]) {
				t.Fatalf("kind %v has %d entries, want %d", Kind(k), len(got.Entries[k]), len(snap.Entries[k]))
			}
			for i := range got.Entries[k] {
				if got.Entries[k][i] != snap.Entries[k][i] {
					t.Fatalf("kind %v entry %d = %+v, want %+v", Kind(k), i, got.Entries[k][i], snap.Entries[k][i])
				}
			}
		}
	})
}

func TestParseImpl(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Impl
	}{{"mutex", ImplMutex}, {"sharded", ImplSharded}} {
		got, err := ParseImpl(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseImpl(%q) = (%v, %v), want (%v, nil)", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseImpl("lockfree-wait-what"); err == nil {
		t.Error("ParseImpl accepted an unknown implementation name")
	}
}

func TestImplMetadata(t *testing.T) {
	if New(ImplMutex).Impl() != ImplMutex || New(ImplSharded).Impl() != ImplSharded {
		t.Error("Impl() does not round-trip through New")
	}
	if ImplMutex.LookupCost() != MutexLookupCost || ImplSharded.LookupCost() != ShardedLookupCost {
		t.Error("LookupCost does not match the calibrated constants")
	}
	if ShardedLookupCost >= MutexLookupCost {
		t.Error("the sharded lookup must be calibrated cheaper than the mutex baseline")
	}
	if ImplMutex.String() != "mutex" || ImplSharded.String() != "sharded" {
		t.Error("Impl.String() names do not match the CLI vocabulary")
	}
	for k, want := range map[Kind]string{Comm: "comm", Datatype: "datatype", Request: "request", Kind(99): "unknown"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

// TestShardedLookupZeroAllocs pins the acceptance property directly: the
// steady-state read path of the sharded table performs zero allocations.
func TestShardedLookupZeroAllocs(t *testing.T) {
	tab := NewShardedTable()
	vids := make([]VID, 64)
	for i := range vids {
		vids[i] = tab.Register(Comm, Real(i))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, v := range vids {
			if _, ok := tab.Lookup(Comm, v); !ok {
				t.Fatal("lookup miss")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("sharded Lookup allocates %.1f objects per 64 lookups, want 0", allocs)
	}
}

// TestConcurrentReadersWithWriterChurn drives both tables with concurrent
// readers and a churning writer; under -race this pins the memory-safety
// claim of the copy-on-write publication scheme.
func TestConcurrentReadersWithWriterChurn(t *testing.T) {
	tables(t, func(t *testing.T, tab Table) {
		stable := make([]VID, 8)
		for i := range stable {
			stable[i] = tab.Register(Comm, Real(i+1))
		}
		done := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					for _, v := range stable {
						if _, ok := tab.Lookup(Comm, v); !ok {
							t.Error("stable comm handle failed to resolve during churn")
							return
						}
					}
				}
			}()
		}
		for i := 0; i < 2000; i++ {
			v := tab.Register(Request, Real(i))
			if _, ok := tab.Lookup(Request, v); !ok {
				t.Fatal("freshly registered request did not resolve")
			}
			if !tab.Deregister(Request, v) {
				t.Fatal("deregister of live request failed")
			}
		}
		close(done)
		wg.Wait()
		if tab.Len(Request) != 0 {
			t.Errorf("request namespace not empty after churn: %d live", tab.Len(Request))
		}
	})
}
