package memsim

import (
	"bytes"
	"testing"
)

// TestPoolRecyclesZeroed pins the pool's core contract: a recycled
// buffer comes back zeroed, so a pooled allocation is indistinguishable
// from a fresh make([]byte, n).
func TestPoolRecyclesZeroed(t *testing.T) {
	p := NewPool()
	b := p.get(64)
	for i := range b {
		b[i] = 0xAB
	}
	p.put(b)
	b2 := p.get(64)
	if !bytes.Equal(b2, make([]byte, 64)) {
		t.Fatal("recycled buffer is not zeroed")
	}
	gets, hits := p.Stats()
	if gets != 2 || hits != 1 {
		t.Fatalf("Stats() = (%d gets, %d hits), want (2, 1)", gets, hits)
	}
}

// TestPoolSizeClasses checks that buffers only satisfy requests of
// their exact capacity class — a smaller request never aliases into a
// larger recycled buffer's tail.
func TestPoolSizeClasses(t *testing.T) {
	p := NewPool()
	p.put(make([]byte, 128))
	if b := p.get(64); cap(b) == 128 {
		t.Fatal("64-byte request satisfied from the 128-byte class")
	}
	if b := p.get(128); cap(b) != 128 {
		t.Fatalf("128-byte request missed its class: cap = %d", cap(b))
	}
}

// TestAddressSpaceReleaseRecycles checks the full round trip: regions
// materialised in one address space feed the next one built on the same
// pool, and the replayed writes see zeroed backing first.
func TestAddressSpaceReleaseRecycles(t *testing.T) {
	p := NewPool()
	build := func() (*AddressSpace, *Region) {
		a := NewAddressSpacePooled(p)
		data := make([]byte, 4*PageSize)
		for i := range data {
			data[i] = 0xCD
		}
		return a, a.MmapWithData("app.heap", UpperHalf, KindHeap, data)
	}
	a, _ := build()
	a.Release()
	_, hitsBefore := p.Stats()
	b, r := build()
	_, hitsAfter := p.Stats()
	if hitsAfter <= hitsBefore {
		t.Fatalf("second address space did not reuse released buffers: hits %d -> %d", hitsBefore, hitsAfter)
	}
	// The recycled region must read back exactly what was written.
	got, err := b.Read(r.Addr, 0, r.Size)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0xCD {
			t.Fatalf("recycled region corrupt at %d: %#x", i, v)
		}
	}
}
