package memsim

import "sync"

// Pool recycles region backing buffers across address-space lifetimes,
// so a fleet of simulations does not re-allocate the same page-aligned
// data slices for every run.
//
// Only live-region Data buffers ever enter the pool. They are safe to
// recycle because the address space keeps them uniquely owned for the
// whole region lifetime: MmapWithData and RestoreUpperHalf copy into
// fresh storage, Write materialises fresh storage, and every snapshot,
// seal or delta payload is either a fresh copy or an alias of the
// immutable sealed slice — never of Data. Seals and snapshot payloads
// are deliberately NOT recycled: committed checkpoint images alias
// them, so reusing that storage would corrupt retained images.
//
// Buffers are zeroed on the way out, so a pooled allocation is
// indistinguishable from make([]byte, n) — the property the
// byte-identical-report tests rely on.
type Pool struct {
	mu sync.Mutex
	// free holds recycled buffers keyed by capacity. Region sizes are
	// mmap-aligned and repeat across runs (the simulated memory layout
	// is fixed per workload), so exact-capacity matching hits in the
	// steady state.
	free map[int][][]byte
	// gets counts allocations served, hits the subset served from the
	// freelist — the warm-vs-cold observable the fleet tests pin.
	gets uint64
	hits uint64
}

// NewPool returns an empty buffer pool. A Pool is safe for concurrent
// use: within one run, island workers write regions concurrently, and a
// fleet engine may share one pool across sequential runs.
func NewPool() *Pool {
	return &Pool{free: make(map[int][][]byte)}
}

// get returns a zeroed slice of length n, recycled when a buffer of
// exactly that capacity is free.
func (p *Pool) get(n int) []byte {
	p.mu.Lock()
	p.gets++
	list := p.free[n]
	if len(list) == 0 {
		p.mu.Unlock()
		return make([]byte, n)
	}
	b := list[len(list)-1]
	list[len(list)-1] = nil
	p.free[n] = list[:len(list)-1]
	p.hits++
	p.mu.Unlock()
	clear(b)
	return b[:n]
}

// put returns a buffer to the pool. The caller must not retain any
// reference to it (or any alias of it) afterwards.
func (p *Pool) put(b []byte) {
	c := cap(b)
	if c == 0 {
		return
	}
	b = b[:c]
	p.mu.Lock()
	p.free[c] = append(p.free[c], b)
	p.mu.Unlock()
}

// Stats returns the allocations served and the subset that came from
// the freelist instead of make.
func (p *Pool) Stats() (gets, hits uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.hits
}
