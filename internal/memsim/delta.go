package memsim

import (
	"bytes"
	"fmt"
	"hash/fnv"
)

// PageDelta is one dirty page carried by an incremental snapshot.
type PageDelta struct {
	// Index is the page's index within its region (offset Index*PageSize).
	Index int
	// Hash is the FNV-1a digest of the page's contents, used for the
	// checkpoint fingerprint and for cross-generation dedup accounting.
	Hash uint64
	// Data is the page's contents, clipped to the region's recorded data
	// length (the last page of a partially materialised region is short).
	Data []byte
}

// RegionDelta describes one live upper-half region in an incremental
// snapshot: full layout metadata (so the overlay can create, resize and
// drop regions) plus only the dirty, non-deduplicated pages.
type RegionDelta struct {
	Name string
	Half Half
	Kind Kind
	Addr uint64
	Size uint64
	// DataLen is the region's materialised content length (len(Data) on
	// the live region). It is part of the checkpointable state: Equal and
	// Fingerprint distinguish a zero-filled region from a materialised
	// one, so the overlay must reproduce it exactly.
	DataLen uint64
	// Pages holds the dirty pages whose content changed since the base
	// generation, sorted by ascending Index.
	Pages []PageDelta
}

// Delta is an incremental snapshot: everything needed to reconstruct a
// full Snapshot by overlaying it onto the base generation it was captured
// against. Regions absent from the delta were unmapped since the base and
// are dropped by the overlay; regions present but without a matching base
// region were created since and are rebuilt from metadata plus pages.
type Delta struct {
	// BaseGen is the committed generation this delta is relative to;
	// applying it to any other generation is unsound.
	BaseGen uint64
	Brk     uint64
	Regions []RegionDelta

	// ScannedPages counts every upper-half page whose dirty bit was
	// inspected — the page-table-scan cost of the capture.
	ScannedPages int
	// DirtyPages / DirtyBytes count the pages (and their content bytes)
	// marked dirty since the base, before dedup.
	DirtyPages int
	DirtyBytes uint64
	// DedupBytes counts dirty page bytes dropped because their contents
	// were bit-identical to the base generation (pages rewritten with the
	// same values). The pipeline reports DedupBytes/DirtyBytes as the
	// dedup ratio.
	DedupBytes uint64
}

// PayloadBytes returns the page content bytes the delta carries — the
// quantity an incremental image write is charged for.
func (d Delta) PayloadBytes() uint64 {
	var total uint64
	for _, rd := range d.Regions {
		for _, p := range rd.Pages {
			total += uint64(len(p.Data))
		}
	}
	return total
}

// FullBytes returns what a full snapshot of the same layout would have
// carried (the sum of region sizes), for full-vs-incremental reporting.
func (d Delta) FullBytes() uint64 {
	var total uint64
	for _, rd := range d.Regions {
		total += rd.Size
	}
	return total
}

// pageHash digests one page's contents.
func pageHash(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// pageExtent returns the [start, end) byte range of page idx clipped to
// dataLen; start >= end means the page has no materialised content.
func pageExtent(idx int, dataLen uint64) (uint64, uint64) {
	start := uint64(idx) * PageSize
	end := start + PageSize
	if end > dataLen {
		end = dataLen
	}
	return start, end
}

// CommitUpperHalfDelta captures an incremental snapshot — only the pages
// dirtied since the last committed generation, plus layout metadata for
// every live upper-half region — and seals the current contents as the
// new committed generation, exactly as CommitUpperHalf does. Dirty pages
// whose contents are bit-identical to the base (rewritten with the same
// values) are deduplicated: the overlay falls back to the base content
// for any page the delta does not carry, so dropping them is lossless (up
// to the 64-bit comparison being an exact bytes.Equal, not a hash check).
//
// Determinism rules: regions are ordered by ascending address, pages by
// ascending index; map iteration order never reaches the payload.
//
// The call panics if no generation has been committed yet: the first
// capture of a space must be a full CommitUpperHalf.
func (a *AddressSpace) CommitUpperHalfDelta() Delta {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.gen == 0 {
		panic("memsim: incremental capture with no committed base generation")
	}
	d := Delta{BaseGen: a.gen, Brk: a.brk}
	for _, r := range a.sortedUpperLocked() {
		rd := RegionDelta{
			Name: r.Name, Half: r.Half, Kind: r.Kind,
			Addr: r.Addr, Size: r.Size, DataLen: uint64(len(r.Data)),
		}
		d.ScannedPages += pageCount(r.Size)
		dirty := r.dirtyPages()
		for _, idx := range dirty {
			start, end := pageExtent(idx, rd.DataLen)
			if start >= end {
				continue
			}
			cur := r.Data[start:end]
			d.DirtyPages++
			d.DirtyBytes += end - start
			if r.hasSeal && end <= uint64(len(r.sealed)) && bytes.Equal(cur, r.sealed[start:end]) {
				d.DedupBytes += end - start
				continue
			}
			page := PageDelta{Index: idx, Hash: pageHash(cur), Data: make([]byte, len(cur))}
			copy(page.Data, cur)
			rd.Pages = append(rd.Pages, page)
		}
		d.Regions = append(d.Regions, rd)
		// Seal the region at its current contents: the next delta is
		// relative to this generation. Clean regions keep their seal
		// (and their memoised hash) untouched. A seal no snapshot aliases
		// is patched in place — only the dirty extents are copied — so
		// steady-state delta commits copy O(dirty bytes), not O(region).
		if !r.isClean() {
			switch {
			case r.hasSeal && !r.sealShared && len(r.sealed) == len(r.Data):
				for _, idx := range dirty {
					start, end := pageExtent(idx, rd.DataLen)
					if start < end {
						copy(r.sealed[start:end], r.Data[start:end])
					}
				}
			case r.Data != nil:
				sealed := make([]byte, len(r.Data))
				copy(sealed, r.Data)
				r.sealed = sealed
				r.sealShared = false
			default:
				r.sealed = nil
				r.sealShared = false
			}
			r.hasSeal = true
			r.clearDirty()
			// The content-hash memo stays invalidated: deltas never need
			// the region digest, and recomputing it here would put an
			// O(region) hash back on the O(dirty) capture path. The next
			// Fingerprint refreshes it lazily.
		}
	}
	a.gen++
	return d
}

// ApplyDelta overlays an incremental snapshot onto the base generation it
// was captured against and returns the materialised full snapshot,
// bit-identical (layout, contents, data lengths, fingerprint) to the full
// CommitUpperHalf that would have been taken at the same instant. Regions
// the delta does not mention are dropped; regions without a matching base
// region are rebuilt from zero-filled content plus carried pages.
func ApplyDelta(base Snapshot, d Delta) Snapshot {
	baseIdx := make(map[uint64]int, len(base.Regions))
	for i := range base.Regions {
		baseIdx[base.Regions[i].Addr] = i
	}
	baseHashes := len(base.RegionHashes) == len(base.Regions)
	out := Snapshot{
		Brk:          d.Brk,
		Regions:      make([]Region, 0, len(d.Regions)),
		RegionHashes: make([]uint64, 0, len(d.Regions)),
	}
	for _, rd := range d.Regions {
		var data []byte
		var hash uint64
		hashKnown := false
		if i, ok := baseIdx[rd.Addr]; ok {
			b := &base.Regions[i]
			if b.Name != rd.Name || b.Size != rd.Size || b.Half != rd.Half || b.Kind != rd.Kind {
				// The address was reused by a structurally different
				// region; the capture marked it all-dirty, so rebuilding
				// from pages alone is lossless.
				data = zeroFilled(rd.DataLen)
			} else if uint64(len(b.Data)) == rd.DataLen && len(rd.Pages) == 0 {
				// Untouched region: alias the base backing slice (both are
				// immutable image payloads) and reuse its digest.
				data = b.Data
				if baseHashes {
					hash, hashKnown = base.RegionHashes[i], true
				}
			} else {
				data = zeroFilled(rd.DataLen)
				copy(data, b.Data)
			}
		} else {
			data = zeroFilled(rd.DataLen)
		}
		for _, p := range rd.Pages {
			start, end := pageExtent(p.Index, rd.DataLen)
			if uint64(len(p.Data)) != end-start {
				panic(fmt.Sprintf("memsim: delta page %d of region %q carries %d bytes, extent is %d",
					p.Index, rd.Name, len(p.Data), end-start))
			}
			copy(data[start:end], p.Data)
		}
		r := Region{Name: rd.Name, Half: rd.Half, Kind: rd.Kind, Addr: rd.Addr, Size: rd.Size, Data: data}
		if !hashKnown {
			hash = contentHash(r.Name, r.Half, r.Kind, r.Addr, r.Size, r.Data)
		}
		out.Regions = append(out.Regions, r)
		out.RegionHashes = append(out.RegionHashes, hash)
	}
	return out
}

// zeroFilled returns a zero slice of length n, preserving nil for n == 0
// so materialised and never-materialised regions stay distinguishable.
func zeroFilled(n uint64) []byte {
	if n == 0 {
		return nil
	}
	return make([]byte, n)
}
