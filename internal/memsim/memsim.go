// Package memsim simulates the single-process address space that MANA's
// split-process technique manages.
//
// A real MANA process contains two programs: the upper half (the MPI
// application, its libc, heap and stack) and the lower half (a small
// bootstrap program that loads the MPI library and the network libraries).
// MANA's central trick is bookkeeping: it tags every memory region as
// belonging to one half so that, at checkpoint time, only upper-half
// regions are written to the image and the entire lower half is discarded.
//
// This package reproduces that bookkeeping. An AddressSpace holds Regions,
// each tagged with a Half and a Kind; it supports Mmap/Munmap/Sbrk with the
// same hazards the paper describes (sbrk after restart would grow the wrong
// program's data segment unless interposed, §2.1); and it produces
// Snapshots containing exactly the regions a checkpoint image must carry.
package memsim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Half identifies which program of the split process owns a region.
type Half int

const (
	// UpperHalf is the MPI application: code, data, heap, stack,
	// environment, and its own copies of libc and (an uninitialised) MPI
	// library as link-time dependencies.
	UpperHalf Half = iota
	// LowerHalf is the ephemeral program: the bootstrap loader, the active
	// MPI library, network/driver libraries and any memory they map
	// (pinned buffers, driver shared memory).
	LowerHalf
)

// String returns the conventional name of the half.
func (h Half) String() string {
	switch h {
	case UpperHalf:
		return "upper"
	case LowerHalf:
		return "lower"
	default:
		return "invalid"
	}
}

// Kind classifies a region by its role. Kinds matter for the memory
// overhead accounting of §3.2.2 (duplicated text segments, driver shared
// memory growth) and for deciding how a region is restored.
type Kind int

const (
	KindText Kind = iota // program or library code
	KindData             // initialised/uninitialised data segments
	KindHeap             // sbrk- or mmap-grown heap
	KindStack
	KindSharedMem  // System V / driver shared memory
	KindPinned     // NIC-registered (pinned) buffers
	KindDriver     // memory-mapped device regions
	KindAnonymous  // other anonymous mappings
	KindEnviron    // environment and auxiliary vectors
	KindThreadLoc  // thread-local storage blocks
	KindCheckpoint // scratch regions used by the checkpoint helper itself
)

var kindNames = map[Kind]string{
	KindText:       "text",
	KindData:       "data",
	KindHeap:       "heap",
	KindStack:      "stack",
	KindSharedMem:  "shm",
	KindPinned:     "pinned",
	KindDriver:     "driver",
	KindAnonymous:  "anon",
	KindEnviron:    "environ",
	KindThreadLoc:  "tls",
	KindCheckpoint: "ckpt-scratch",
}

// String returns a short name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Region is one contiguous mapping in the simulated address space.
type Region struct {
	// Name is a human-readable label, e.g. "libmpich.so.text" or
	// "[heap]".
	Name string
	// Half records which program of the split process owns the region.
	Half Half
	// Kind records the region's role.
	Kind Kind
	// Addr is the simulated start address.
	Addr uint64
	// Size is the region length in bytes.
	Size uint64
	// Data optionally carries the region's contents. Regions without
	// explicit contents (e.g. library text modelled only for size
	// accounting) checkpoint as zero-filled pages of length Size.
	Data []byte
}

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Addr + r.Size }

// clone returns a deep copy of the region (including contents).
func (r *Region) clone() Region {
	c := *r
	if r.Data != nil {
		c.Data = make([]byte, len(r.Data))
		copy(c.Data, r.Data)
	}
	return c
}

// Layout constants for the simulated address space. The exact values are
// arbitrary; they only need to keep the halves disjoint, mirroring how the
// real MANA reserves distinct address ranges for the lower half.
const (
	upperBase     = 0x0000_4000_0000_0000
	lowerBase     = 0x0000_7000_0000_0000
	mmapAlignment = 4096
)

// AddressSpace is the simulated process memory map. It is safe for
// concurrent use; the checkpoint helper thread reads it while the
// application allocates.
type AddressSpace struct {
	mu          sync.RWMutex
	regions     map[uint64]*Region // keyed by start address
	nextUpper   uint64
	nextLower   uint64
	brk         uint64 // simulated program break (upper-half data segment end)
	brkBase     uint64
	sbrkInter   bool // MANA's sbrk interposition active
	postRestart bool // true once the space has been rebuilt from an image
}

// NewAddressSpace returns an empty address space with MANA's sbrk
// interposition enabled (the default when running under MANA).
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{
		regions:   make(map[uint64]*Region),
		nextUpper: upperBase,
		nextLower: lowerBase,
		brkBase:   upperBase,
		brk:       upperBase,
		sbrkInter: true,
	}
}

// SetSbrkInterposition enables or disables MANA's interposition on sbrk.
// Disabling it exposes the §2.1 hazard, which the tests exercise.
func (a *AddressSpace) SetSbrkInterposition(on bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sbrkInter = on
}

// SbrkInterposed reports whether sbrk interposition is enabled.
func (a *AddressSpace) SbrkInterposed() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.sbrkInter
}

// MarkPostRestart records that the address space has been reconstructed
// from a checkpoint image, which changes sbrk behaviour (the kernel's brk
// now refers to the bootstrap program).
func (a *AddressSpace) MarkPostRestart() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.postRestart = true
}

// PostRestart reports whether the space was rebuilt from an image.
func (a *AddressSpace) PostRestart() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.postRestart
}

func align(n uint64) uint64 {
	if rem := n % mmapAlignment; rem != 0 {
		n += mmapAlignment - rem
	}
	return n
}

// Mmap creates a new region in the given half and returns it. Size is
// rounded up to the page size.
func (a *AddressSpace) Mmap(name string, half Half, kind Kind, size uint64) *Region {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mmapLocked(name, half, kind, size)
}

func (a *AddressSpace) mmapLocked(name string, half Half, kind Kind, size uint64) *Region {
	size = align(size)
	var addr uint64
	switch half {
	case UpperHalf:
		addr = a.nextUpper
		a.nextUpper += size + mmapAlignment
	case LowerHalf:
		addr = a.nextLower
		a.nextLower += size + mmapAlignment
	default:
		panic(fmt.Sprintf("memsim: invalid half %d", half))
	}
	r := &Region{Name: name, Half: half, Kind: kind, Addr: addr, Size: size}
	a.regions[addr] = r
	return r
}

// MmapWithData creates a region initialised with the given contents.
func (a *AddressSpace) MmapWithData(name string, half Half, kind Kind, data []byte) *Region {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.mmapLocked(name, half, kind, uint64(len(data)))
	r.Data = make([]byte, len(data))
	copy(r.Data, data)
	return r
}

// Munmap removes the region starting at addr. It reports whether a region
// was found.
func (a *AddressSpace) Munmap(addr uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.regions[addr]; !ok {
		return false
	}
	delete(a.regions, addr)
	return true
}

// UnmapHalf removes every region belonging to the given half and returns
// the number of bytes released. MANA uses this to discard the lower half
// before restoring a checkpoint image, and to model the "ephemeral" MPI
// library.
func (a *AddressSpace) UnmapHalf(half Half) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var released uint64
	for addr, r := range a.regions {
		if r.Half == half {
			released += r.Size
			delete(a.regions, addr)
		}
	}
	return released
}

// SbrkResult describes the outcome of a heap-growth request.
type SbrkResult struct {
	// Region is the upper-half region that satisfied the request (either
	// the grown data segment or a fresh mmap).
	Region *Region
	// UsedMmap reports whether the request was redirected to mmap by
	// MANA's interposition.
	UsedMmap bool
	// CorruptedLowerHalf reports that, without interposition and after
	// restart, the kernel grew the lower-half program's data segment —
	// the hazard §2.1 describes.
	CorruptedLowerHalf bool
}

// Sbrk grows the heap by delta bytes and reports how the request was
// satisfied.
func (a *AddressSpace) Sbrk(delta uint64) SbrkResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sbrkInter {
		r := a.mmapLocked("[heap-mmap]", UpperHalf, KindHeap, delta)
		return SbrkResult{Region: r, UsedMmap: true}
	}
	if a.postRestart {
		// The kernel's brk refers to the bootstrap (lower-half) program.
		r := a.mmapLocked("[lower-brk-growth]", LowerHalf, KindData, delta)
		return SbrkResult{Region: r, CorruptedLowerHalf: true}
	}
	// Pre-checkpoint, the brk belongs to the original upper-half program.
	r := a.mmapLocked("[heap]", UpperHalf, KindHeap, delta)
	a.brk += align(delta)
	return SbrkResult{Region: r}
}

// Regions returns a snapshot slice of all regions sorted by address.
func (a *AddressSpace) Regions() []Region {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]Region, 0, len(a.regions))
	for _, r := range a.regions {
		out = append(out, r.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// RegionsOf returns the regions belonging to one half, sorted by address.
func (a *AddressSpace) RegionsOf(half Half) []Region {
	all := a.Regions()
	out := all[:0]
	for _, r := range all {
		if r.Half == half {
			out = append(out, r)
		}
	}
	return out
}

// BytesOf returns the total size in bytes of all regions in one half.
func (a *AddressSpace) BytesOf(half Half) uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var total uint64
	for _, r := range a.regions {
		if r.Half == half {
			total += r.Size
		}
	}
	return total
}

// BytesOfKind returns the total size of regions of a given half and kind.
func (a *AddressSpace) BytesOfKind(half Half, kind Kind) uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var total uint64
	for _, r := range a.regions {
		if r.Half == half && r.Kind == kind {
			total += r.Size
		}
	}
	return total
}

// Lookup returns the region starting at addr, if any.
func (a *AddressSpace) Lookup(addr uint64) (Region, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	r, ok := a.regions[addr]
	if !ok {
		return Region{}, false
	}
	return r.clone(), true
}

// Write stores data into the region starting at addr at the given offset.
// It returns an error if the region does not exist or the write would
// overflow it.
func (a *AddressSpace) Write(addr uint64, offset uint64, data []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	r, ok := a.regions[addr]
	if !ok {
		return fmt.Errorf("memsim: write to unmapped region 0x%x", addr)
	}
	if offset+uint64(len(data)) > r.Size {
		return fmt.Errorf("memsim: write of %d bytes at offset %d overflows region %q (size %d)",
			len(data), offset, r.Name, r.Size)
	}
	if r.Data == nil {
		r.Data = make([]byte, r.Size)
	} else if uint64(len(r.Data)) < r.Size {
		grown := make([]byte, r.Size)
		copy(grown, r.Data)
		r.Data = grown
	}
	copy(r.Data[offset:], data)
	return nil
}

// Read copies length bytes from the region starting at addr at offset.
func (a *AddressSpace) Read(addr uint64, offset uint64, length uint64) ([]byte, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	r, ok := a.regions[addr]
	if !ok {
		return nil, fmt.Errorf("memsim: read from unmapped region 0x%x", addr)
	}
	if offset+length > r.Size {
		return nil, fmt.Errorf("memsim: read of %d bytes at offset %d overflows region %q (size %d)",
			length, offset, r.Name, r.Size)
	}
	out := make([]byte, length)
	if r.Data != nil {
		end := offset + length
		if end > uint64(len(r.Data)) {
			end = uint64(len(r.Data))
		}
		if offset < end {
			copy(out, r.Data[offset:end])
		}
	}
	return out, nil
}

// Snapshot is the set of regions a checkpoint image carries: exactly the
// upper-half regions (the lower half is discarded).
type Snapshot struct {
	Regions []Region
	// Brk is the saved program break so heap state can be restored.
	Brk uint64
}

// SnapshotUpperHalf captures all upper-half regions. This is what MANA's
// checkpoint helper writes to the image file.
func (a *AddressSpace) SnapshotUpperHalf() Snapshot {
	a.mu.RLock()
	defer a.mu.RUnlock()
	snap := Snapshot{Brk: a.brk}
	for _, r := range a.regions {
		if r.Half == UpperHalf {
			snap.Regions = append(snap.Regions, r.clone())
		}
	}
	sort.Slice(snap.Regions, func(i, j int) bool { return snap.Regions[i].Addr < snap.Regions[j].Addr })
	return snap
}

// TotalBytes returns the number of bytes of memory captured by the
// snapshot; this is the per-rank checkpoint image payload size.
func (s Snapshot) TotalBytes() uint64 {
	var total uint64
	for _, r := range s.Regions {
		total += r.Size
	}
	return total
}

// Fingerprint returns a deterministic 64-bit digest of the snapshot:
// region layout, tags and contents all contribute. Two snapshots are
// Equal iff their fingerprints match (up to hash collision), so restart
// determinism checks and simulation reports can compare images cheaply
// without carrying full region contents around.
func (s Snapshot) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(s.Brk)
	writeU64(uint64(len(s.Regions)))
	for _, r := range s.Regions {
		writeU64(uint64(len(r.Name)))
		h.Write([]byte(r.Name))
		writeU64(uint64(r.Half))
		writeU64(uint64(r.Kind))
		writeU64(r.Addr)
		writeU64(r.Size)
		writeU64(uint64(len(r.Data)))
		h.Write(r.Data)
	}
	return h.Sum64()
}

// RestoreUpperHalf rebuilds the upper half of the address space from a
// snapshot. Existing upper-half regions are discarded first (the restore
// happens into the bootstrap program's address space, whose upper half is
// empty apart from the restore stub). Lower-half regions are untouched:
// they belong to the freshly initialised MPI library.
func (a *AddressSpace) RestoreUpperHalf(s Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for addr, r := range a.regions {
		if r.Half == UpperHalf {
			delete(a.regions, addr)
		}
	}
	maxEnd := uint64(upperBase)
	for _, r := range s.Regions {
		c := r.clone()
		a.regions[c.Addr] = &c
		if c.End() > maxEnd {
			maxEnd = c.End()
		}
	}
	if a.nextUpper < maxEnd+mmapAlignment {
		a.nextUpper = maxEnd + mmapAlignment
	}
	a.brk = s.Brk
	a.postRestart = true
}

// Equal reports whether two snapshots describe identical upper-half memory
// (same regions, same contents). Used by tests to prove checkpoint/restore
// round-trips are lossless.
func (s Snapshot) Equal(o Snapshot) bool {
	if len(s.Regions) != len(o.Regions) || s.Brk != o.Brk {
		return false
	}
	for i := range s.Regions {
		a, b := s.Regions[i], o.Regions[i]
		if a.Addr != b.Addr || a.Size != b.Size || a.Half != b.Half || a.Kind != b.Kind || a.Name != b.Name {
			return false
		}
		if len(a.Data) != len(b.Data) {
			return false
		}
		for j := range a.Data {
			if a.Data[j] != b.Data[j] {
				return false
			}
		}
	}
	return true
}
