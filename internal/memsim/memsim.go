// Package memsim simulates the single-process address space that MANA's
// split-process technique manages.
//
// A real MANA process contains two programs: the upper half (the MPI
// application, its libc, heap and stack) and the lower half (a small
// bootstrap program that loads the MPI library and the network libraries).
// MANA's central trick is bookkeeping: it tags every memory region as
// belonging to one half so that, at checkpoint time, only upper-half
// regions are written to the image and the entire lower half is discarded.
//
// This package reproduces that bookkeeping. An AddressSpace holds Regions,
// each tagged with a Half and a Kind; it supports Mmap/Munmap/Sbrk with the
// same hazards the paper describes (sbrk after restart would grow the wrong
// program's data segment unless interposed, §2.1); and it produces
// Snapshots containing exactly the regions a checkpoint image must carry.
//
// Checkpoint cost is made proportional to touched memory, not address-space
// size, by page-granular (4 KiB) dirty tracking: every write path marks
// pages in a per-region dirty bitmap, CommitUpperHalf seals region contents
// copy-on-write (a clean region's snapshot aliases the last committed
// backing slice instead of being deep-copied), and CommitUpperHalfDelta
// (delta.go) emits only the dirty pages plus per-page content hashes.
package memsim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/bits"
	"sort"
	"sync"
)

// Half identifies which program of the split process owns a region.
type Half int

const (
	// UpperHalf is the MPI application: code, data, heap, stack,
	// environment, and its own copies of libc and (an uninitialised) MPI
	// library as link-time dependencies.
	UpperHalf Half = iota
	// LowerHalf is the ephemeral program: the bootstrap loader, the active
	// MPI library, network/driver libraries and any memory they map
	// (pinned buffers, driver shared memory).
	LowerHalf
)

// String returns the conventional name of the half.
func (h Half) String() string {
	switch h {
	case UpperHalf:
		return "upper"
	case LowerHalf:
		return "lower"
	default:
		return "invalid"
	}
}

// Kind classifies a region by its role. Kinds matter for the memory
// overhead accounting of §3.2.2 (duplicated text segments, driver shared
// memory growth) and for deciding how a region is restored.
type Kind int

const (
	KindText Kind = iota // program or library code
	KindData             // initialised/uninitialised data segments
	KindHeap             // sbrk- or mmap-grown heap
	KindStack
	KindSharedMem  // System V / driver shared memory
	KindPinned     // NIC-registered (pinned) buffers
	KindDriver     // memory-mapped device regions
	KindAnonymous  // other anonymous mappings
	KindEnviron    // environment and auxiliary vectors
	KindThreadLoc  // thread-local storage blocks
	KindCheckpoint // scratch regions used by the checkpoint helper itself
)

var kindNames = map[Kind]string{
	KindText:       "text",
	KindData:       "data",
	KindHeap:       "heap",
	KindStack:      "stack",
	KindSharedMem:  "shm",
	KindPinned:     "pinned",
	KindDriver:     "driver",
	KindAnonymous:  "anon",
	KindEnviron:    "environ",
	KindThreadLoc:  "tls",
	KindCheckpoint: "ckpt-scratch",
}

// String returns a short name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// ParseKind resolves a kind's short name ("text", "heap", ...) back to
// the Kind, for configuration surfaces keyed by region class.
func ParseKind(name string) (Kind, bool) {
	for k, s := range kindNames {
		if s == name {
			return k, true
		}
	}
	return 0, false
}

// KindNames returns every kind's short name in Kind order, for error
// messages listing the valid region classes.
func KindNames() []string {
	names := make([]string, 0, len(kindNames))
	for k := KindText; int(k) < len(kindNames); k++ {
		names = append(names, kindNames[k])
	}
	return names
}

// PageSize is the dirty-tracking granularity: the smallest unit of memory
// an incremental checkpoint copies, hashes and writes. It matches the
// x86-64 base page size the real MANA's mem-region scan operates on.
const PageSize = 4096

// Region is one contiguous mapping in the simulated address space.
type Region struct {
	// Name is a human-readable label, e.g. "libmpich.so.text" or
	// "[heap]".
	Name string
	// Half records which program of the split process owns the region.
	Half Half
	// Kind records the region's role.
	Kind Kind
	// Addr is the simulated start address.
	Addr uint64
	// Size is the region length in bytes.
	Size uint64
	// Data optionally carries the region's contents. Regions without
	// explicit contents (e.g. library text modelled only for size
	// accounting) checkpoint as zero-filled pages of length Size.
	Data []byte

	// dirty is the per-page dirty bitmap of the live region: bit i set
	// means page i has been written since the last committed snapshot.
	// Snapshot copies of a Region never carry a bitmap.
	dirty []uint64
	// sealed is the region's content at the last committed snapshot. It
	// is immutable once captured — committed snapshots alias it, writes
	// go to Data — so a clean region's next snapshot needs no copy.
	sealed []byte
	// hasSeal reports whether sealed is meaningful (a nil sealed slice is
	// a valid seal for a region whose contents were never materialised).
	hasSeal bool
	// sealShared reports whether some snapshot aliases sealed. A shared
	// seal is immutable (delta commits must replace it); an unshared one
	// can be patched in place, keeping delta commit copies O(dirty bytes).
	sealShared bool
	// hash memoises the region's content digest; hashOK is cleared by
	// every mutation so Fingerprint never re-hashes clean regions.
	hash   uint64
	hashOK bool
}

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Addr + r.Size }

// pageCount returns the number of PageSize pages covering n bytes.
func pageCount(n uint64) int { return int((n + PageSize - 1) / PageSize) }

// markDirty sets the dirty bits for the byte range [off, off+n).
func (r *Region) markDirty(off, n uint64) {
	if n == 0 {
		return
	}
	r.ensureBitmap()
	first := int(off / PageSize)
	last := int((off + n - 1) / PageSize)
	for p := first; p <= last; p++ {
		r.dirty[p/64] |= 1 << (uint(p) % 64)
	}
	r.hashOK = false
}

// markAllDirty sets every page's dirty bit (newborn or resized regions).
func (r *Region) markAllDirty() {
	r.dirty = nil
	r.ensureBitmap()
	for i := range r.dirty {
		r.dirty[i] = ^uint64(0)
	}
	// Mask the bits past the last page so popcounts stay exact.
	if extra := uint(pageCount(r.Size)) % 64; extra != 0 && len(r.dirty) > 0 {
		r.dirty[len(r.dirty)-1] = (1 << extra) - 1
	}
	r.hashOK = false
}

func (r *Region) ensureBitmap() {
	if words := (pageCount(r.Size) + 63) / 64; len(r.dirty) != words {
		grown := make([]uint64, words)
		copy(grown, r.dirty)
		r.dirty = grown
	}
}

func (r *Region) clearDirty() {
	for i := range r.dirty {
		r.dirty[i] = 0
	}
}

func (r *Region) anyDirty() bool {
	for _, w := range r.dirty {
		if w != 0 {
			return true
		}
	}
	return false
}

// dirtyPages returns the dirty page indices in ascending order — the
// deterministic iteration order every delta payload is built in.
func (r *Region) dirtyPages() []int {
	var out []int
	for w, word := range r.dirty {
		for ; word != 0; word &= word - 1 {
			out = append(out, w*64+bits.TrailingZeros64(word))
		}
	}
	return out
}

// isClean reports whether the region's contents are bit-identical to its
// last committed seal, so a snapshot may alias the sealed slice.
func (r *Region) isClean() bool { return r.hasSeal && !r.anyDirty() }

// invalidateSeal forgets the committed seal (used when the region is
// resized: page indices no longer line up with the sealed content, so the
// next delta must carry the region in full).
func (r *Region) invalidateSeal() {
	r.sealed = nil
	r.hasSeal = false
	r.sealShared = false
	r.markAllDirty()
}

// clone returns a deep copy of the region's checkpointable state
// (metadata and contents); the live-space tracking fields (dirty bitmap,
// seal, hash memo) deliberately do not travel with the copy.
func (r *Region) clone() Region {
	c := Region{Name: r.Name, Half: r.Half, Kind: r.Kind, Addr: r.Addr, Size: r.Size}
	if r.Data != nil {
		c.Data = make([]byte, len(r.Data))
		copy(c.Data, r.Data)
	}
	return c
}

// contentHash digests one region's checkpointable state: layout metadata
// and contents. Snapshot.Fingerprint combines these per-region digests, so
// memoising them per region (invalidated by the dirty bitmap) makes
// repeated fingerprints of a mostly-clean space cheap.
func contentHash(name string, half Half, kind Kind, addr, size uint64, data []byte) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(uint64(len(name)))
	h.Write([]byte(name))
	writeU64(uint64(half))
	writeU64(uint64(kind))
	writeU64(addr)
	writeU64(size)
	writeU64(uint64(len(data)))
	h.Write(data)
	return h.Sum64()
}

// contentHashNow returns the region's memoised content digest, refreshing
// it if a write invalidated the memo.
func (r *Region) contentHashNow() uint64 {
	if !r.hashOK {
		r.hash = contentHash(r.Name, r.Half, r.Kind, r.Addr, r.Size, r.Data)
		r.hashOK = true
	}
	return r.hash
}

// Layout constants for the simulated address space. The exact values are
// arbitrary; they only need to keep the halves disjoint, mirroring how the
// real MANA reserves distinct address ranges for the lower half.
const (
	upperBase     = 0x0000_4000_0000_0000
	lowerBase     = 0x0000_7000_0000_0000
	mmapAlignment = 4096
)

// AddressSpace is the simulated process memory map. It is safe for
// concurrent use; the checkpoint helper thread reads it while the
// application allocates.
type AddressSpace struct {
	mu          sync.RWMutex
	regions     map[uint64]*Region // keyed by start address
	nextUpper   uint64
	nextLower   uint64
	brk         uint64 // simulated program break (upper-half data segment end)
	brkBase     uint64
	sbrkInter   bool // MANA's sbrk interposition active
	postRestart bool // true once the space has been rebuilt from an image
	// gen counts committed snapshot generations (CommitUpperHalf and
	// CommitUpperHalfDelta); deltas are always relative to generation gen.
	gen uint64
	// pool optionally recycles live-region Data buffers across address-
	// space lifetimes (see Pool); nil means plain make allocation.
	pool *Pool
}

// NewAddressSpace returns an empty address space with MANA's sbrk
// interposition enabled (the default when running under MANA).
func NewAddressSpace() *AddressSpace {
	return NewAddressSpacePooled(nil)
}

// NewAddressSpacePooled returns an empty address space whose region
// backing buffers are drawn from (and returned to, via Release) the
// given pool. A nil pool is equivalent to NewAddressSpace.
func NewAddressSpacePooled(pool *Pool) *AddressSpace {
	return &AddressSpace{
		regions:   make(map[uint64]*Region),
		nextUpper: upperBase,
		nextLower: lowerBase,
		brkBase:   upperBase,
		brk:       upperBase,
		sbrkInter: true,
		pool:      pool,
	}
}

// allocData returns a zeroed n-byte buffer for live-region contents,
// recycled from the pool when one is attached.
func (a *AddressSpace) allocData(n int) []byte {
	if a.pool != nil {
		return a.pool.get(n)
	}
	return make([]byte, n)
}

// Release returns every live region's uniquely-owned Data buffer to the
// attached pool and empties the address space. Seals and snapshot
// payloads are never recycled — committed checkpoint images alias them
// and must stay immutable. The space must not be used after Release;
// callers that captured Regions()/Lookup() copies keep them (those are
// deep copies). Without an attached pool Release only empties the map.
func (a *AddressSpace) Release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.pool != nil {
		for _, r := range a.regions {
			if r.Data != nil {
				a.pool.put(r.Data)
				r.Data = nil
			}
		}
	}
	clear(a.regions)
}

// SetSbrkInterposition enables or disables MANA's interposition on sbrk.
// Disabling it exposes the §2.1 hazard, which the tests exercise.
func (a *AddressSpace) SetSbrkInterposition(on bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sbrkInter = on
}

// SbrkInterposed reports whether sbrk interposition is enabled.
func (a *AddressSpace) SbrkInterposed() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.sbrkInter
}

// MarkPostRestart records that the address space has been reconstructed
// from a checkpoint image, which changes sbrk behaviour (the kernel's brk
// now refers to the bootstrap program).
func (a *AddressSpace) MarkPostRestart() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.postRestart = true
}

// PostRestart reports whether the space was rebuilt from an image.
func (a *AddressSpace) PostRestart() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.postRestart
}

func align(n uint64) uint64 {
	if rem := n % mmapAlignment; rem != 0 {
		n += mmapAlignment - rem
	}
	return n
}

// Mmap creates a new region in the given half and returns it. Size is
// rounded up to the page size.
func (a *AddressSpace) Mmap(name string, half Half, kind Kind, size uint64) *Region {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mmapLocked(name, half, kind, size)
}

func (a *AddressSpace) mmapLocked(name string, half Half, kind Kind, size uint64) *Region {
	size = align(size)
	var addr uint64
	switch half {
	case UpperHalf:
		addr = a.nextUpper
		a.nextUpper += size + mmapAlignment
	case LowerHalf:
		addr = a.nextLower
		a.nextLower += size + mmapAlignment
	default:
		panic(fmt.Sprintf("memsim: invalid half %d", half))
	}
	r := &Region{Name: name, Half: half, Kind: kind, Addr: addr, Size: size}
	// A newborn region is entirely dirty: the next incremental snapshot
	// must carry it whole (there is no committed base to delta against).
	r.markAllDirty()
	a.regions[addr] = r
	return r
}

// MmapWithData creates a region initialised with the given contents.
func (a *AddressSpace) MmapWithData(name string, half Half, kind Kind, data []byte) *Region {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.mmapLocked(name, half, kind, uint64(len(data)))
	r.Data = a.allocData(len(data))
	copy(r.Data, data)
	return r
}

// Munmap removes the region starting at addr. It reports whether a region
// was found.
func (a *AddressSpace) Munmap(addr uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.regions[addr]; !ok {
		return false
	}
	delete(a.regions, addr)
	return true
}

// UnmapHalf removes every region belonging to the given half and returns
// the number of bytes released. MANA uses this to discard the lower half
// before restoring a checkpoint image, and to model the "ephemeral" MPI
// library.
func (a *AddressSpace) UnmapHalf(half Half) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var released uint64
	for addr, r := range a.regions {
		if r.Half == half {
			released += r.Size
			delete(a.regions, addr)
		}
	}
	return released
}

// SbrkResult describes the outcome of a heap-growth request.
type SbrkResult struct {
	// Region is the upper-half region that satisfied the request (either
	// the grown data segment or a fresh mmap).
	Region *Region
	// UsedMmap reports whether the request was redirected to mmap by
	// MANA's interposition.
	UsedMmap bool
	// CorruptedLowerHalf reports that, without interposition and after
	// restart, the kernel grew the lower-half program's data segment —
	// the hazard §2.1 describes.
	CorruptedLowerHalf bool
}

// Sbrk grows the heap by delta bytes and reports how the request was
// satisfied.
func (a *AddressSpace) Sbrk(delta uint64) SbrkResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sbrkInter {
		r := a.mmapLocked("[heap-mmap]", UpperHalf, KindHeap, delta)
		return SbrkResult{Region: r, UsedMmap: true}
	}
	if a.postRestart {
		// The kernel's brk refers to the bootstrap (lower-half) program.
		r := a.mmapLocked("[lower-brk-growth]", LowerHalf, KindData, delta)
		return SbrkResult{Region: r, CorruptedLowerHalf: true}
	}
	// Pre-checkpoint, the brk belongs to the original upper-half program.
	r := a.mmapLocked("[heap]", UpperHalf, KindHeap, delta)
	a.brk += align(delta)
	return SbrkResult{Region: r}
}

// SbrkShrink releases up to delta bytes from the top of the upper-half
// heap (most recently allocated heap regions first, mirroring how a real
// brk retreats) and returns the number of bytes actually released. A
// region shrunk partially keeps its address but loses its tail; its dirty
// bitmap and committed seal are reset so the next incremental snapshot
// carries the resized region in full — page indices no longer line up
// with the old seal, so deltas against it would be unsound.
func (a *AddressSpace) SbrkShrink(delta uint64) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	heaps := make([]*Region, 0, 4)
	for _, r := range a.regions {
		if r.Half == UpperHalf && r.Kind == KindHeap {
			heaps = append(heaps, r)
		}
	}
	sort.Slice(heaps, func(i, j int) bool { return heaps[i].Addr > heaps[j].Addr })
	var released uint64
	for _, r := range heaps {
		if delta == 0 {
			break
		}
		if delta >= r.Size {
			delta -= r.Size
			released += r.Size
			delete(a.regions, r.Addr)
			continue
		}
		r.Size -= delta
		if uint64(len(r.Data)) > r.Size {
			r.Data = r.Data[:r.Size]
		}
		r.invalidateSeal()
		released += delta
		delta = 0
	}
	if a.brk > a.brkBase+released {
		a.brk -= released
	} else if a.brk > a.brkBase {
		a.brk = a.brkBase
	}
	return released
}

// Regions returns a snapshot slice of all regions sorted by address.
func (a *AddressSpace) Regions() []Region {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]Region, 0, len(a.regions))
	for _, r := range a.regions {
		out = append(out, r.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// RegionsOf returns the regions belonging to one half, sorted by address.
func (a *AddressSpace) RegionsOf(half Half) []Region {
	all := a.Regions()
	out := all[:0]
	for _, r := range all {
		if r.Half == half {
			out = append(out, r)
		}
	}
	return out
}

// BytesOf returns the total size in bytes of all regions in one half.
func (a *AddressSpace) BytesOf(half Half) uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var total uint64
	for _, r := range a.regions {
		if r.Half == half {
			total += r.Size
		}
	}
	return total
}

// BytesOfKind returns the total size of regions of a given half and kind.
func (a *AddressSpace) BytesOfKind(half Half, kind Kind) uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var total uint64
	for _, r := range a.regions {
		if r.Half == half && r.Kind == kind {
			total += r.Size
		}
	}
	return total
}

// Lookup returns the region starting at addr, if any.
func (a *AddressSpace) Lookup(addr uint64) (Region, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	r, ok := a.regions[addr]
	if !ok {
		return Region{}, false
	}
	return r.clone(), true
}

// Write stores data into the region starting at addr at the given offset.
// It returns an error if the region does not exist or the write would
// overflow it.
func (a *AddressSpace) Write(addr uint64, offset uint64, data []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	r, ok := a.regions[addr]
	if !ok {
		return fmt.Errorf("memsim: write to unmapped region 0x%x", addr)
	}
	if offset+uint64(len(data)) > r.Size {
		return fmt.Errorf("memsim: write of %d bytes at offset %d overflows region %q (size %d)",
			len(data), offset, r.Name, r.Size)
	}
	if r.Data == nil {
		r.Data = a.allocData(int(r.Size))
		// Materialising the backing store changes the region's recorded
		// data length, which is part of the checkpointable state; the
		// whole region must reach the next incremental image.
		r.markAllDirty()
	} else if uint64(len(r.Data)) < r.Size {
		grown := a.allocData(int(r.Size))
		copy(grown, r.Data)
		if a.pool != nil {
			a.pool.put(r.Data)
		}
		r.Data = grown
		r.markAllDirty()
	}
	copy(r.Data[offset:], data)
	r.markDirty(offset, uint64(len(data)))
	return nil
}

// Read copies length bytes from the region starting at addr at offset.
func (a *AddressSpace) Read(addr uint64, offset uint64, length uint64) ([]byte, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	r, ok := a.regions[addr]
	if !ok {
		return nil, fmt.Errorf("memsim: read from unmapped region 0x%x", addr)
	}
	if offset+length > r.Size {
		return nil, fmt.Errorf("memsim: read of %d bytes at offset %d overflows region %q (size %d)",
			length, offset, r.Name, r.Size)
	}
	out := make([]byte, length)
	if r.Data != nil {
		end := offset + length
		if end > uint64(len(r.Data)) {
			end = uint64(len(r.Data))
		}
		if offset < end {
			copy(out, r.Data[offset:end])
		}
	}
	return out, nil
}

// Snapshot is the set of regions a checkpoint image carries: exactly the
// upper-half regions (the lower half is discarded).
type Snapshot struct {
	Regions []Region
	// Brk is the saved program break so heap state can be restored.
	Brk uint64
	// RegionHashes optionally memoises the per-region content digests
	// (parallel to Regions) captured from the address space's hash cache.
	// Fingerprint uses them when present and recomputes when absent; the
	// digest of a snapshot is identical either way. Equal ignores them.
	RegionHashes []uint64
}

// sortedUpperLocked returns the live upper-half regions in ascending
// address order — the only iteration order capture paths ever use, so map
// order never leaks into images, deltas or fingerprints.
func (a *AddressSpace) sortedUpperLocked() []*Region {
	out := make([]*Region, 0, len(a.regions))
	for _, r := range a.regions {
		if r.Half == UpperHalf {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// captureLocked builds a full snapshot. Clean regions — unchanged since
// the last commit — alias the immutable sealed slice instead of being
// deep-copied, so steady-state capture cost is proportional to dirty
// bytes. When commit is set, freshly copied contents become the new seal
// and the dirty bitmaps are cleared: the snapshot is the new base every
// later delta is relative to.
func (a *AddressSpace) captureLocked(commit bool) Snapshot {
	upper := a.sortedUpperLocked()
	snap := Snapshot{
		Brk:          a.brk,
		Regions:      make([]Region, 0, len(upper)),
		RegionHashes: make([]uint64, 0, len(upper)),
	}
	for _, r := range upper {
		var data []byte
		if r.isClean() {
			data = r.sealed
			r.sealShared = true
		} else {
			if r.Data != nil {
				data = make([]byte, len(r.Data))
				copy(data, r.Data)
			}
			if commit {
				r.sealed = data
				r.hasSeal = true
				r.sealShared = true
				r.clearDirty()
			}
		}
		c := Region{Name: r.Name, Half: r.Half, Kind: r.Kind, Addr: r.Addr, Size: r.Size, Data: data}
		snap.Regions = append(snap.Regions, c)
		snap.RegionHashes = append(snap.RegionHashes, r.contentHashNow())
	}
	if commit {
		a.gen++
	}
	return snap
}

// SnapshotUpperHalf captures all upper-half regions without committing:
// the dirty bitmaps and seals are left untouched, so observing the space
// (reports, final fingerprints) never perturbs incremental checkpointing.
// Regions clean against the last commit alias the sealed contents.
func (a *AddressSpace) SnapshotUpperHalf() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.captureLocked(false)
}

// CommitUpperHalf captures all upper-half regions and seals the result as
// the new committed generation: dirty bitmaps are cleared and the next
// delta (CommitUpperHalfDelta) is relative to this snapshot. This is what
// MANA's checkpoint helper writes to a full image file.
func (a *AddressSpace) CommitUpperHalf() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.captureLocked(true)
}

// Generation returns the number of committed snapshots (full or delta)
// taken of this space. Zero means no base exists yet, so an incremental
// capture must fall back to a full one.
func (a *AddressSpace) Generation() uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.gen
}

// DirtyPages returns the dirty page indices of the region at addr, in
// ascending order, and whether the region exists. Tests and diagnostics
// use it to observe the bitmap without capturing.
func (a *AddressSpace) DirtyPages(addr uint64) ([]int, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	r, ok := a.regions[addr]
	if !ok {
		return nil, false
	}
	return r.dirtyPages(), true
}

// TotalBytes returns the number of bytes of memory captured by the
// snapshot; this is the per-rank checkpoint image payload size.
func (s Snapshot) TotalBytes() uint64 {
	var total uint64
	for _, r := range s.Regions {
		total += r.Size
	}
	return total
}

// Fingerprint returns a deterministic 64-bit digest of the snapshot:
// region layout, tags and contents all contribute. Two snapshots are
// Equal iff their fingerprints match (up to hash collision), so restart
// determinism checks and simulation reports can compare images cheaply
// without carrying full region contents around. It combines per-region
// content digests, reusing the memoised RegionHashes when the capture
// filled them in — the digest is identical whether or not the memo is
// present, because the per-region function is the same.
func (s Snapshot) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(s.Brk)
	writeU64(uint64(len(s.Regions)))
	memoised := len(s.RegionHashes) == len(s.Regions)
	for i := range s.Regions {
		if memoised {
			writeU64(s.RegionHashes[i])
			continue
		}
		r := &s.Regions[i]
		writeU64(contentHash(r.Name, r.Half, r.Kind, r.Addr, r.Size, r.Data))
	}
	return h.Sum64()
}

// RestoreUpperHalf rebuilds the upper half of the address space from a
// snapshot. Existing upper-half regions are discarded first (the restore
// happens into the bootstrap program's address space, whose upper half is
// empty apart from the restore stub). Lower-half regions are untouched:
// they belong to the freshly initialised MPI library.
func (a *AddressSpace) RestoreUpperHalf(s Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for addr, r := range a.regions {
		if r.Half == UpperHalf {
			delete(a.regions, addr)
		}
	}
	maxEnd := uint64(upperBase)
	for i := range s.Regions {
		// Restored regions deep-copy the image contents into fresh live
		// buffers (the image must stay immutable) and start entirely
		// dirty with no seal: restart begins a new incremental chain.
		src := &s.Regions[i]
		c := Region{Name: src.Name, Half: src.Half, Kind: src.Kind, Addr: src.Addr, Size: src.Size}
		if src.Data != nil {
			c.Data = a.allocData(len(src.Data))
			copy(c.Data, src.Data)
		}
		c.markAllDirty()
		if len(s.RegionHashes) == len(s.Regions) {
			c.hash, c.hashOK = s.RegionHashes[i], true
		}
		a.regions[c.Addr] = &c
		if c.End() > maxEnd {
			maxEnd = c.End()
		}
	}
	if a.nextUpper < maxEnd+mmapAlignment {
		a.nextUpper = maxEnd + mmapAlignment
	}
	a.brk = s.Brk
	a.postRestart = true
	// The restored space has no committed generation: the first capture
	// after restart is necessarily a full image.
	a.gen = 0
}

// Equal reports whether two snapshots describe identical upper-half memory
// (same regions, same contents). Used by tests to prove checkpoint/restore
// round-trips are lossless.
func (s Snapshot) Equal(o Snapshot) bool {
	if len(s.Regions) != len(o.Regions) || s.Brk != o.Brk {
		return false
	}
	for i := range s.Regions {
		a, b := s.Regions[i], o.Regions[i]
		if a.Addr != b.Addr || a.Size != b.Size || a.Half != b.Half || a.Kind != b.Kind || a.Name != b.Name {
			return false
		}
		if len(a.Data) != len(b.Data) {
			return false
		}
		for j := range a.Data {
			if a.Data[j] != b.Data[j] {
				return false
			}
		}
	}
	return true
}
