package memsim

import "fmt"

// Verify recomputes every region's content digest and compares it against
// the RegionHashes memo captured at commit time, returning the number of
// pages rehashed and an error naming the first mismatching region. A
// snapshot without a hash memo cannot be verified — full images always
// carry one, so a missing memo is itself reported as unverifiable.
func (s Snapshot) Verify() (pages int, err error) {
	if len(s.RegionHashes) != len(s.Regions) {
		return 0, fmt.Errorf("memsim: snapshot carries no region hash memo (%d hashes for %d regions)",
			len(s.RegionHashes), len(s.Regions))
	}
	for i, r := range s.Regions {
		pages += pageCount(uint64(len(r.Data)))
		got := contentHash(r.Name, r.Half, r.Kind, r.Addr, r.Size, r.Data)
		if got != s.RegionHashes[i] {
			return pages, fmt.Errorf("memsim: region %q content hash %016x does not match recorded %016x",
				r.Name, got, s.RegionHashes[i])
		}
	}
	return pages, nil
}

// Verify recomputes every carried page's FNV-1a hash and compares it
// against the hash recorded at capture time, returning the number of pages
// rehashed and an error naming the first mismatching region and page.
func (d Delta) Verify() (pages int, err error) {
	for _, rd := range d.Regions {
		for _, p := range rd.Pages {
			pages++
			if got := pageHash(p.Data); got != p.Hash {
				return pages, fmt.Errorf("memsim: region %q page %d hash %016x does not match recorded %016x",
					rd.Name, p.Index, got, p.Hash)
			}
		}
	}
	return pages, nil
}

// CorruptSnapshot flips one byte at the start of each of the first n
// materialised pages of the snapshot, walking regions in order, and
// returns how many pages were actually damaged. Touched regions have their
// payload deep-copied first: snapshot payloads alias the live space's
// sealed slices, and corrupting those in place would damage the running
// ranks rather than the on-disk image. The RegionHashes memo is left
// untouched — the stale digests are exactly what Verify later trips over.
func CorruptSnapshot(s *Snapshot, n int) int {
	done := 0
	for i := range s.Regions {
		if done >= n {
			break
		}
		r := &s.Regions[i]
		if len(r.Data) == 0 {
			continue
		}
		data := make([]byte, len(r.Data))
		copy(data, r.Data)
		for off := 0; off < len(data) && done < n; off += PageSize {
			data[off] ^= 0xFF
			done++
		}
		r.Data = data
	}
	return done
}

// CorruptDelta flips one byte at the start of each of the first n carried
// pages of the delta, walking regions and pages in order, and returns how
// many pages were actually damaged. Page payloads are private copies made
// at capture time, so they can be damaged in place; the recorded page
// hashes are left stale for Verify to detect.
func CorruptDelta(d *Delta, n int) int {
	done := 0
	for ri := range d.Regions {
		rd := &d.Regions[ri]
		for pi := range rd.Pages {
			if done >= n {
				return done
			}
			p := &rd.Pages[pi]
			if len(p.Data) == 0 {
				continue
			}
			p.Data[0] ^= 0xFF
			done++
		}
	}
	return done
}
