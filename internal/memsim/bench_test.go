package memsim

import (
	"encoding/binary"
	"runtime"
	"testing"
)

// rankLikeSpace builds an address space shaped like one simulated rank's
// upper half: several contentless text/stack mappings plus one 64 KiB
// materialised state region — the layout whose snapshot cost the
// checkpoint path pays per rank per checkpoint.
func rankLikeSpace() (*AddressSpace, uint64) {
	a := NewAddressSpace()
	a.Mmap("app.text", UpperHalf, KindText, 2<<20)
	a.Mmap("app.data", UpperHalf, KindData, 512<<10)
	a.Mmap("libc.text", UpperHalf, KindText, 1800<<10)
	a.Mmap("libmpi.text(link)", UpperHalf, KindText, 4<<20)
	a.Mmap("[stack]", UpperHalf, KindStack, 256<<10)
	state := a.MmapWithData("app.state", UpperHalf, KindData, make([]byte, 64<<10))
	a.Mmap("libmpi.so(active)", LowerHalf, KindText, 4<<20)
	return a, state.Addr
}

// benchCapture measures the steady-state capture loop — one small write,
// one capture — and asserts an allocation ceiling per op. With the
// copy-on-write seal the only per-op copies are the dirtied region (full
// mode) or its dirty pages (delta mode) plus a handful of snapshot
// slices; a regression that re-deep-copies clean regions fails the
// assertion instead of silently shifting the numbers.
func benchCapture(b *testing.B, maxAllocsPerOp float64, capture func(a *AddressSpace) uint64) {
	a, state := rankLikeSpace()
	a.CommitUpperHalf() // seal the initial generation
	payload := make([]byte, 16)
	var sink uint64
	b.ReportAllocs()
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	startAllocs := ms.Mallocs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the contents per iteration so dedup cannot drop the page:
		// the benchmark models a page whose value genuinely changed.
		binary.LittleEndian.PutUint64(payload, uint64(i)+1)
		off := uint64(i%8) * PageSize
		if err := a.Write(state, off, payload); err != nil {
			b.Fatal(err)
		}
		sink += capture(a)
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms)
	if perOp := float64(ms.Mallocs-startAllocs) / float64(b.N); perOp > maxAllocsPerOp {
		b.Errorf("capture allocations = %.1f/op, want <= %.1f/op (clean regions must not be re-copied)",
			perOp, maxAllocsPerOp)
	}
	if sink == 0 {
		b.Fatal("captures carried no bytes")
	}
	b.ReportMetric(float64(sink)/float64(b.N), "image-bytes/op")
}

// BenchmarkSnapshotUpperHalf pins the full-capture path: only the one
// dirtied region is copied per op, the clean regions alias their seals.
func BenchmarkSnapshotUpperHalf(b *testing.B) {
	benchCapture(b, 12, func(a *AddressSpace) uint64 {
		return a.CommitUpperHalf().TotalBytes()
	})
}

// BenchmarkSnapshotUpperHalfDelta pins the incremental path: per-op work
// is one dirty page copied and hashed, independent of address-space size.
func BenchmarkSnapshotUpperHalfDelta(b *testing.B) {
	benchCapture(b, 12, func(a *AddressSpace) uint64 {
		return a.CommitUpperHalfDelta().PayloadBytes()
	})
}
