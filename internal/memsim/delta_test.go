package memsim

import (
	"bytes"
	"testing"
)

// mustWrite is a test helper; it fails the test on write errors.
func mustWrite(t *testing.T, a *AddressSpace, addr, off uint64, data []byte) {
	t.Helper()
	if err := a.Write(addr, off, data); err != nil {
		t.Fatalf("Write(0x%x, %d, %d bytes): %v", addr, off, len(data), err)
	}
}

// deltaFor finds the RegionDelta for addr, failing if absent.
func deltaFor(t *testing.T, d Delta, addr uint64) RegionDelta {
	t.Helper()
	for _, rd := range d.Regions {
		if rd.Addr == addr {
			return rd
		}
	}
	t.Fatalf("delta has no region at 0x%x", addr)
	return RegionDelta{}
}

func TestWriteStraddlingTwoPagesMarksBoth(t *testing.T) {
	a := NewAddressSpace()
	r := a.MmapWithData("state", UpperHalf, KindData, make([]byte, 4*PageSize))
	a.CommitUpperHalf() // clear the newborn all-dirty bitmap
	if pages, _ := a.DirtyPages(r.Addr); len(pages) != 0 {
		t.Fatalf("dirty pages after commit = %v, want none", pages)
	}
	// 8 bytes across the page-1/page-2 boundary.
	mustWrite(t, a, r.Addr, 2*PageSize-4, []byte("12345678"))
	pages, ok := a.DirtyPages(r.Addr)
	if !ok {
		t.Fatal("region vanished")
	}
	if len(pages) != 2 || pages[0] != 1 || pages[1] != 2 {
		t.Errorf("dirty pages = %v, want [1 2] (write straddles the boundary)", pages)
	}
	d := a.CommitUpperHalfDelta()
	rd := deltaFor(t, d, r.Addr)
	if len(rd.Pages) != 2 || rd.Pages[0].Index != 1 || rd.Pages[1].Index != 2 {
		t.Errorf("delta pages = %+v, want indices 1 and 2", rd.Pages)
	}
	if d.DirtyPages != 2 || d.DirtyBytes != 2*PageSize {
		t.Errorf("dirty accounting = %d pages / %d bytes, want 2 / %d", d.DirtyPages, d.DirtyBytes, 2*PageSize)
	}
}

// TestDeltaOverlayBitIdenticalToFull is the core incremental-image
// property: materialising base+delta must reproduce, bit for bit, the
// full snapshot that would have been captured at the same instant —
// including data lengths and the fingerprint, whether or not the hash
// memo is used.
func TestDeltaOverlayBitIdenticalToFull(t *testing.T) {
	a := NewAddressSpace()
	state := a.MmapWithData("app.state", UpperHalf, KindData, make([]byte, 8*PageSize))
	a.Mmap("app.text", UpperHalf, KindText, 2<<20) // contentless region
	a.Mmap("libmpi.text", LowerHalf, KindText, 4<<20)
	base := a.CommitUpperHalf()

	mustWrite(t, a, state.Addr, 3*PageSize+17, []byte("incremental"))
	a.Sbrk(64 << 10) // newborn region since the base
	d := a.CommitUpperHalfDelta()

	got := ApplyDelta(base, d)
	want := a.SnapshotUpperHalf() // read-only: all regions clean post-commit
	if !got.Equal(want) {
		t.Fatalf("overlay differs from full snapshot:\n got %d regions\nwant %d regions", len(got.Regions), len(want.Regions))
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Errorf("overlay fingerprint %016x != full fingerprint %016x", got.Fingerprint(), want.Fingerprint())
	}
	// Cross-check the memoised fingerprint path against a recomputation.
	bare := got
	bare.RegionHashes = nil
	if bare.Fingerprint() != got.Fingerprint() {
		t.Errorf("memoised fingerprint %016x != recomputed %016x", got.Fingerprint(), bare.Fingerprint())
	}
	// The delta must be proportional to dirty bytes, not the space: one
	// touched page plus metadata, nothing for the contentless regions.
	if d.PayloadBytes() != PageSize {
		t.Errorf("delta payload = %d bytes, want %d (exactly one dirty page)", d.PayloadBytes(), PageSize)
	}
	if d.FullBytes() <= 10*d.PayloadBytes() {
		t.Errorf("full equivalent %d bytes not >=10x delta payload %d", d.FullBytes(), d.PayloadBytes())
	}
}

func TestDeltaDedupsRewrittenIdenticalPages(t *testing.T) {
	a := NewAddressSpace()
	r := a.MmapWithData("state", UpperHalf, KindData, bytes.Repeat([]byte{7}, 2*PageSize))
	base := a.CommitUpperHalf()
	// Rewrite page 0 with its existing contents and page 1 with new ones.
	mustWrite(t, a, r.Addr, 0, bytes.Repeat([]byte{7}, PageSize))
	mustWrite(t, a, r.Addr, PageSize, bytes.Repeat([]byte{9}, PageSize))
	d := a.CommitUpperHalfDelta()
	rd := deltaFor(t, d, r.Addr)
	if len(rd.Pages) != 1 || rd.Pages[0].Index != 1 {
		t.Fatalf("delta pages = %+v, want only index 1 (page 0 dedups against the base)", rd.Pages)
	}
	if d.DirtyPages != 2 || d.DedupBytes != PageSize {
		t.Errorf("accounting = %d dirty pages, %d dedup bytes; want 2 and %d", d.DirtyPages, d.DedupBytes, PageSize)
	}
	// The deduped page must still restore correctly from the base.
	got := ApplyDelta(base, d)
	if got.Regions[0].Data[0] != 7 || got.Regions[0].Data[PageSize] != 9 {
		t.Errorf("overlay contents wrong: page0[0]=%d page1[0]=%d, want 7 and 9",
			got.Regions[0].Data[0], got.Regions[0].Data[PageSize])
	}
}

func TestMunmapPartiallyDirtyRegionDroppedByOverlay(t *testing.T) {
	a := NewAddressSpace()
	keep := a.MmapWithData("keep", UpperHalf, KindData, make([]byte, 2*PageSize))
	gone := a.MmapWithData("gone", UpperHalf, KindData, make([]byte, 4*PageSize))
	base := a.CommitUpperHalf()

	// Dirty half the doomed region, then unmap it mid-epoch.
	mustWrite(t, a, gone.Addr, 0, []byte("doomed"))
	mustWrite(t, a, keep.Addr, PageSize, []byte("survivor"))
	if !a.Munmap(gone.Addr) {
		t.Fatal("Munmap failed")
	}
	d := a.CommitUpperHalfDelta()
	for _, rd := range d.Regions {
		if rd.Addr == gone.Addr {
			t.Fatal("unmapped region still present in the delta layout")
		}
	}
	got := ApplyDelta(base, d)
	if len(got.Regions) != 1 || got.Regions[0].Addr != keep.Addr {
		t.Fatalf("overlay regions = %d, want only the surviving region", len(got.Regions))
	}
	want := a.SnapshotUpperHalf()
	if !got.Equal(want) || got.Fingerprint() != want.Fingerprint() {
		t.Error("overlay after munmap differs from the live space")
	}
}

func TestSbrkShrinkThenRegrowAcrossPageBoundary(t *testing.T) {
	a := NewAddressSpace()
	a.MmapWithData("anchor", UpperHalf, KindData, make([]byte, PageSize))
	res := a.Sbrk(4 * PageSize)
	heap := res.Region
	mustWrite(t, a, heap.Addr, 0, []byte("heap-head"))
	base := a.CommitUpperHalf()

	// Shrink by a page and a half — a partial-page truncation — then
	// regrow across the boundary with fresh content.
	if released := a.SbrkShrink(PageSize + PageSize/2); released != PageSize+PageSize/2 {
		t.Fatalf("SbrkShrink released %d bytes, want %d", released, PageSize+PageSize/2)
	}
	if got, _ := a.Lookup(heap.Addr); got.Size != 4*PageSize-(PageSize+PageSize/2) {
		t.Fatalf("shrunk region size = %d", got.Size)
	}
	regrow := a.Sbrk(2 * PageSize)
	mustWrite(t, a, regrow.Region.Addr, PageSize-4, []byte("straddle"))

	d := a.CommitUpperHalfDelta()
	// The resized region's seal is invalid: its content must be carried
	// in full (no dedup against stale page offsets).
	rd := deltaFor(t, d, heap.Addr)
	if len(rd.Pages) == 0 {
		t.Error("resized region carried no pages; stale-seal deltas would corrupt the overlay")
	}
	got := ApplyDelta(base, d)
	want := a.SnapshotUpperHalf()
	if !got.Equal(want) {
		t.Fatal("overlay after shrink+regrow differs from the live space")
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("overlay fingerprint differs after shrink+regrow")
	}
}

func TestSbrkShrinkRemovesWholeRegions(t *testing.T) {
	a := NewAddressSpace()
	r1 := a.Sbrk(2 * PageSize).Region
	r2 := a.Sbrk(PageSize).Region
	if released := a.SbrkShrink(PageSize); released != PageSize {
		t.Fatalf("released %d, want %d", released, PageSize)
	}
	if _, ok := a.Lookup(r2.Addr); ok {
		t.Error("top heap region should have been removed entirely")
	}
	if _, ok := a.Lookup(r1.Addr); !ok {
		t.Error("lower heap region should have survived")
	}
}

func TestDeltaWithoutBasePanics(t *testing.T) {
	a := NewAddressSpace()
	a.Mmap("r", UpperHalf, KindData, PageSize)
	defer func() {
		if recover() == nil {
			t.Error("CommitUpperHalfDelta with no committed base did not panic")
		}
	}()
	a.CommitUpperHalfDelta()
}

// TestCommitAliasesCleanRegions pins the copy-on-write property: a
// committed region that has not been written since simply aliases the
// sealed backing slice — no copy — while a dirtied region gets a fresh
// one, and live writes never reach captured snapshots.
func TestCommitAliasesCleanRegions(t *testing.T) {
	a := NewAddressSpace()
	r := a.MmapWithData("state", UpperHalf, KindData, make([]byte, 2*PageSize))
	s1 := a.CommitUpperHalf()
	s2 := a.CommitUpperHalf()
	if &s1.Regions[0].Data[0] != &s2.Regions[0].Data[0] {
		t.Error("clean region was re-copied: consecutive commits should alias the seal")
	}
	mustWrite(t, a, r.Addr, 0, []byte{1})
	s3 := a.CommitUpperHalf()
	if &s3.Regions[0].Data[0] == &s2.Regions[0].Data[0] {
		t.Error("dirty region aliased the old seal: the stored image would see live writes")
	}
	if s2.Regions[0].Data[0] != 0 {
		t.Error("write leaked into the previously committed snapshot")
	}
	if s3.Regions[0].Data[0] != 1 {
		t.Error("new commit missed the write")
	}
}

func TestGenerationCounts(t *testing.T) {
	a := NewAddressSpace()
	a.Mmap("r", UpperHalf, KindData, PageSize)
	if a.Generation() != 0 {
		t.Fatalf("fresh space generation = %d, want 0", a.Generation())
	}
	snap := a.CommitUpperHalf()
	if a.Generation() != 1 {
		t.Fatalf("generation after commit = %d, want 1", a.Generation())
	}
	a.CommitUpperHalfDelta()
	if a.Generation() != 2 {
		t.Fatalf("generation after delta = %d, want 2", a.Generation())
	}
	// Read-only snapshots never commit.
	a.SnapshotUpperHalf()
	if a.Generation() != 2 {
		t.Errorf("SnapshotUpperHalf advanced the generation")
	}
	b := NewAddressSpace()
	b.CommitUpperHalf()
	b.RestoreUpperHalf(snap)
	if b.Generation() != 0 {
		t.Errorf("restored space generation = %d, want 0 (restart starts a new chain)", b.Generation())
	}
}
