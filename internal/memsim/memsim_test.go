package memsim

import (
	"testing"
	"testing/quick"
)

func TestHalfAndKindStrings(t *testing.T) {
	if UpperHalf.String() != "upper" || LowerHalf.String() != "lower" {
		t.Errorf("half names wrong: %q %q", UpperHalf, LowerHalf)
	}
	if Half(9).String() != "invalid" {
		t.Errorf("invalid half should stringify as invalid")
	}
	if KindText.String() != "text" || KindSharedMem.String() != "shm" {
		t.Errorf("kind names wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Errorf("unknown kind should stringify as unknown")
	}
}

func TestMmapAllocatesDisjointHalves(t *testing.T) {
	a := NewAddressSpace()
	up := a.Mmap("app.text", UpperHalf, KindText, 1<<20)
	low := a.Mmap("libmpi.text", LowerHalf, KindText, 1<<20)
	if up.Half != UpperHalf || low.Half != LowerHalf {
		t.Fatalf("halves not recorded")
	}
	if up.Addr == low.Addr {
		t.Errorf("upper and lower regions share an address")
	}
	if up.End() > low.Addr && low.End() > up.Addr {
		t.Errorf("upper and lower regions overlap: %+v %+v", up, low)
	}
}

func TestMmapAlignsSizes(t *testing.T) {
	a := NewAddressSpace()
	r := a.Mmap("odd", UpperHalf, KindAnonymous, 100)
	if r.Size%4096 != 0 {
		t.Errorf("size %d not page aligned", r.Size)
	}
	if r.Size < 100 {
		t.Errorf("size %d smaller than request", r.Size)
	}
}

func TestMmapInvalidHalfPanics(t *testing.T) {
	a := NewAddressSpace()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for invalid half")
		}
	}()
	a.Mmap("bad", Half(7), KindText, 10)
}

func TestMunmap(t *testing.T) {
	a := NewAddressSpace()
	r := a.Mmap("tmp", UpperHalf, KindAnonymous, 4096)
	if !a.Munmap(r.Addr) {
		t.Fatalf("Munmap failed for existing region")
	}
	if a.Munmap(r.Addr) {
		t.Errorf("Munmap succeeded for already-removed region")
	}
	if _, ok := a.Lookup(r.Addr); ok {
		t.Errorf("region still visible after Munmap")
	}
}

func TestUnmapHalfDiscardsOnlyThatHalf(t *testing.T) {
	a := NewAddressSpace()
	a.Mmap("app.data", UpperHalf, KindData, 8192)
	a.Mmap("libmpi.text", LowerHalf, KindText, 26<<20)
	a.Mmap("driver.shm", LowerHalf, KindSharedMem, 2<<20)
	released := a.UnmapHalf(LowerHalf)
	if released == 0 {
		t.Fatalf("UnmapHalf released nothing")
	}
	if got := a.BytesOf(LowerHalf); got != 0 {
		t.Errorf("lower half still has %d bytes", got)
	}
	if got := a.BytesOf(UpperHalf); got == 0 {
		t.Errorf("upper half was discarded too")
	}
}

func TestBytesOfKind(t *testing.T) {
	a := NewAddressSpace()
	a.Mmap("libmpi.text", LowerHalf, KindText, 26<<20)
	a.Mmap("driver.shm", LowerHalf, KindSharedMem, 40<<20)
	if got := a.BytesOfKind(LowerHalf, KindSharedMem); got != 40<<20 {
		t.Errorf("BytesOfKind shm = %d", got)
	}
	if got := a.BytesOfKind(LowerHalf, KindText); got != 26<<20 {
		t.Errorf("BytesOfKind text = %d", got)
	}
	if got := a.BytesOfKind(UpperHalf, KindText); got != 0 {
		t.Errorf("BytesOfKind upper text = %d, want 0", got)
	}
}

func TestSbrkInterposedUsesMmap(t *testing.T) {
	a := NewAddressSpace()
	res := a.Sbrk(64 << 10)
	if !res.UsedMmap {
		t.Errorf("interposed sbrk should use mmap")
	}
	if res.CorruptedLowerHalf {
		t.Errorf("interposed sbrk corrupted lower half")
	}
	if res.Region.Half != UpperHalf {
		t.Errorf("interposed sbrk allocated in %v", res.Region.Half)
	}
}

func TestSbrkHazardAfterRestartWithoutInterposition(t *testing.T) {
	a := NewAddressSpace()
	a.SetSbrkInterposition(false)
	a.MarkPostRestart()
	res := a.Sbrk(4096)
	if !res.CorruptedLowerHalf {
		t.Errorf("expected the §2.1 hazard: sbrk after restart without interposition must grow the lower half")
	}
	if res.Region.Half != LowerHalf {
		t.Errorf("hazardous sbrk allocated in %v", res.Region.Half)
	}
}

func TestSbrkBeforeCheckpointWithoutInterposition(t *testing.T) {
	a := NewAddressSpace()
	a.SetSbrkInterposition(false)
	res := a.Sbrk(4096)
	if res.CorruptedLowerHalf {
		t.Errorf("pre-checkpoint sbrk should be harmless")
	}
	if res.Region.Half != UpperHalf {
		t.Errorf("pre-checkpoint sbrk allocated in %v", res.Region.Half)
	}
}

func TestSbrkInterpositionFlag(t *testing.T) {
	a := NewAddressSpace()
	if !a.SbrkInterposed() {
		t.Errorf("interposition should default to on")
	}
	a.SetSbrkInterposition(false)
	if a.SbrkInterposed() {
		t.Errorf("SetSbrkInterposition(false) had no effect")
	}
}

func TestWriteAndRead(t *testing.T) {
	a := NewAddressSpace()
	r := a.Mmap("state", UpperHalf, KindHeap, 4096)
	payload := []byte("lattice energies")
	if err := a.Write(r.Addr, 100, payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := a.Read(r.Addr, 100, uint64(len(payload)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(got) != string(payload) {
		t.Errorf("Read = %q, want %q", got, payload)
	}
	// Unwritten parts read as zero.
	zeros, err := a.Read(r.Addr, 0, 10)
	if err != nil {
		t.Fatalf("Read zeros: %v", err)
	}
	for _, b := range zeros {
		if b != 0 {
			t.Errorf("unwritten bytes not zero: %v", zeros)
			break
		}
	}
}

func TestWriteReadErrors(t *testing.T) {
	a := NewAddressSpace()
	r := a.Mmap("small", UpperHalf, KindHeap, 4096)
	if err := a.Write(r.Addr, 4090, make([]byte, 100)); err == nil {
		t.Errorf("overflowing write did not error")
	}
	if err := a.Write(0xdead, 0, []byte("x")); err == nil {
		t.Errorf("write to unmapped region did not error")
	}
	if _, err := a.Read(r.Addr, 4095, 100); err == nil {
		t.Errorf("overflowing read did not error")
	}
	if _, err := a.Read(0xdead, 0, 1); err == nil {
		t.Errorf("read from unmapped region did not error")
	}
}

func TestSnapshotContainsOnlyUpperHalf(t *testing.T) {
	a := NewAddressSpace()
	a.MmapWithData("app.data", UpperHalf, KindData, []byte{1, 2, 3, 4})
	a.Mmap("app.heap", UpperHalf, KindHeap, 1<<20)
	a.Mmap("libmpi.text", LowerHalf, KindText, 26<<20)
	a.Mmap("aries.pinned", LowerHalf, KindPinned, 8<<20)
	snap := a.SnapshotUpperHalf()
	for _, r := range snap.Regions {
		if r.Half != UpperHalf {
			t.Errorf("snapshot contains lower-half region %q", r.Name)
		}
	}
	if snap.TotalBytes() >= a.BytesOf(UpperHalf)+a.BytesOf(LowerHalf) {
		t.Errorf("snapshot did not exclude the lower half")
	}
	if snap.TotalBytes() != a.BytesOf(UpperHalf) {
		t.Errorf("snapshot bytes %d != upper-half bytes %d", snap.TotalBytes(), a.BytesOf(UpperHalf))
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	a := NewAddressSpace()
	a.MmapWithData("app.data", UpperHalf, KindData, []byte("initial state vector"))
	heap := a.Mmap("app.heap", UpperHalf, KindHeap, 8192)
	if err := a.Write(heap.Addr, 0, []byte("heap contents")); err != nil {
		t.Fatal(err)
	}
	a.Mmap("libmpi.text", LowerHalf, KindText, 26<<20)
	snap := a.SnapshotUpperHalf()

	// Simulate restart: a fresh address space with a new lower half (new
	// MPI library), then restore the upper half.
	b := NewAddressSpace()
	b.Mmap("openmpi.text", LowerHalf, KindText, 30<<20)
	b.RestoreUpperHalf(snap)

	snap2 := b.SnapshotUpperHalf()
	if !snap.Equal(snap2) {
		t.Fatalf("restore round trip lost data")
	}
	if !b.PostRestart() {
		t.Errorf("restored space not marked post-restart")
	}
	// The new lower half must survive restore.
	if b.BytesOf(LowerHalf) != 30<<20 {
		t.Errorf("restore damaged the new lower half: %d bytes", b.BytesOf(LowerHalf))
	}
	// Subsequent allocations must not collide with restored regions.
	r := b.Mmap("post-restart-alloc", UpperHalf, KindHeap, 4096)
	for _, existing := range snap.Regions {
		if r.Addr < existing.End() && existing.Addr < r.End() {
			t.Errorf("post-restart allocation overlaps restored region %q", existing.Name)
		}
	}
}

func TestSnapshotEqualDetectsDifferences(t *testing.T) {
	a := NewAddressSpace()
	a.MmapWithData("d", UpperHalf, KindData, []byte{1, 2, 3})
	s1 := a.SnapshotUpperHalf()
	s2 := a.SnapshotUpperHalf()
	if !s1.Equal(s2) {
		t.Fatalf("identical snapshots compare unequal")
	}
	// Mutate and re-snapshot.
	r := s1.Regions[0]
	if err := a.Write(r.Addr, 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	s3 := a.SnapshotUpperHalf()
	if s1.Equal(s3) {
		t.Errorf("snapshots with different contents compare equal")
	}
}

func TestRegionsSorted(t *testing.T) {
	a := NewAddressSpace()
	for i := 0; i < 10; i++ {
		a.Mmap("r", UpperHalf, KindAnonymous, 4096)
	}
	regs := a.Regions()
	for i := 1; i < len(regs); i++ {
		if regs[i].Addr <= regs[i-1].Addr {
			t.Fatalf("regions not sorted by address")
		}
	}
}

func TestRegionsOfFiltersHalf(t *testing.T) {
	a := NewAddressSpace()
	a.Mmap("u1", UpperHalf, KindData, 4096)
	a.Mmap("l1", LowerHalf, KindText, 4096)
	a.Mmap("u2", UpperHalf, KindHeap, 4096)
	upper := a.RegionsOf(UpperHalf)
	if len(upper) != 2 {
		t.Errorf("RegionsOf(UpperHalf) = %d regions, want 2", len(upper))
	}
	lower := a.RegionsOf(LowerHalf)
	if len(lower) != 1 {
		t.Errorf("RegionsOf(LowerHalf) = %d regions, want 1", len(lower))
	}
}

// Property: for any set of allocations split across halves, snapshot size
// equals the sum of upper-half allocations (rounded to pages), and restoring
// into a fresh space reproduces an equal snapshot.
func TestPropertySnapshotRoundTrip(t *testing.T) {
	f := func(sizes []uint16, lowerMask uint8) bool {
		a := NewAddressSpace()
		for i, s := range sizes {
			if len(sizes) > 24 && i >= 24 {
				break
			}
			half := UpperHalf
			if (lowerMask>>(uint(i)%8))&1 == 1 {
				half = LowerHalf
			}
			a.Mmap("r", half, KindAnonymous, uint64(s)+1)
		}
		snap := a.SnapshotUpperHalf()
		if snap.TotalBytes() != a.BytesOf(UpperHalf) {
			return false
		}
		b := NewAddressSpace()
		b.RestoreUpperHalf(snap)
		return snap.Equal(b.SnapshotUpperHalf())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: data written into a region is returned intact by Read at the
// same offset.
func TestPropertyWriteReadRoundTrip(t *testing.T) {
	f := func(payload []byte, offsetRaw uint16) bool {
		if len(payload) == 0 {
			return true
		}
		a := NewAddressSpace()
		r := a.Mmap("buf", UpperHalf, KindHeap, 1<<17)
		offset := uint64(offsetRaw) % (r.Size - uint64(len(payload)))
		if err := a.Write(r.Addr, offset, payload); err != nil {
			return false
		}
		got, err := a.Read(r.Addr, offset, uint64(len(payload)))
		if err != nil {
			return false
		}
		for i := range payload {
			if got[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotFingerprintTracksEqual(t *testing.T) {
	a := NewAddressSpace()
	a.MmapWithData("app.state", UpperHalf, KindData, []byte{1, 2, 3})
	a.Mmap("libmpi.so", LowerHalf, KindText, 4096)
	s1 := a.SnapshotUpperHalf()
	s2 := a.SnapshotUpperHalf()
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Error("identical snapshots must fingerprint identically")
	}
	if err := a.Write(s1.Regions[0].Addr, 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	s3 := a.SnapshotUpperHalf()
	if s1.Fingerprint() == s3.Fingerprint() {
		t.Error("content change must change the fingerprint")
	}
	if s1.Equal(s3) {
		t.Error("Equal must agree with the fingerprint")
	}
}

func TestSnapshotIsolatedFromLiveSpace(t *testing.T) {
	a := NewAddressSpace()
	r := a.MmapWithData("app.state", UpperHalf, KindData, []byte{1, 2, 3, 4})
	snap := a.SnapshotUpperHalf()
	fp := snap.Fingerprint()
	// Snapshots are deep copies in both directions: mutating the live
	// space must not reach a stored image, and restoring must not alias
	// the image's buffers into the live space.
	if err := a.Write(r.Addr, 0, []byte{42}); err != nil {
		t.Fatal(err)
	}
	if snap.Regions[0].Data[0] == 42 || snap.Fingerprint() != fp {
		t.Error("mutating the live space leaked into a stored snapshot")
	}
	b := NewAddressSpace()
	b.RestoreUpperHalf(snap)
	if err := b.Write(snap.Regions[0].Addr, 0, []byte{99}); err != nil {
		t.Fatal(err)
	}
	if snap.Regions[0].Data[0] == 99 || snap.Fingerprint() != fp {
		t.Error("writing a restored space leaked into the image it came from")
	}
}
