module mana

go 1.24
